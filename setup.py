"""Legacy setup shim so `pip install -e .` works without the wheel package
(offline environments with older setuptools lack bdist_wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Towards a Web-scale Data Management Ecosystem "
        "Demonstrated by SAP HANA' (ICDE 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
