"""E25 — OLTP goodput under an OLAP burst (`repro.qos` admission control).

Claim under test: with class-aware admission control (bounded per-class
queues + smooth weighted round-robin, weights oltp=8 : olap=2), the OLTP
class keeps ≥90% of its no-burst goodput while a 3×-rate OLAP burst
saturates the landscape — the excess OLAP work is shed at the front
door. With QoS off (one arrival-order queue, no class isolation) the
same burst makes OLTP queries wait behind the analytical backlog and
goodput collapses below half of baseline.

Goodput = OLTP queries served within the wait SLO, on the simulated
clock. Deterministic: identical arrival schedule, no randomness. Run
directly (``python benchmarks/bench_overload.py``) or via pytest.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.errors import AdmissionRejectedError  # noqa: E402
from repro.qos import AdmissionConfig, AdmissionController  # noqa: E402
from repro.util.retry import SimulatedClock  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))  # shifts the burst phase
TICKS = 200
BURST_START, BURST_END = 20 + SEED % 7, 180 + SEED % 7
OLAP_PER_TICK = 3  # burst arrival rate (vs 1 oltp/tick)
SERVICE_SLOTS = 2  # landscape capacity per tick
SLO_WAIT = 4.0  # an oltp answer older than this is useless


def run_arm(burst: bool, fifo: bool) -> dict[str, float]:
    clock = SimulatedClock()
    admission = AdmissionController(
        AdmissionConfig(queue_depth=16, fifo=fifo), clock=clock
    )
    oltp_good = oltp_served = shed = 0
    for tick in range(TICKS):
        try:
            admission.submit("oltp")
        except AdmissionRejectedError:
            shed += 1
        if burst and BURST_START <= tick < BURST_END:
            for _ in range(OLAP_PER_TICK):
                try:
                    admission.submit("olap")
                except AdmissionRejectedError:
                    shed += 1
        for ticket in admission.run_all(limit=SERVICE_SLOTS):
            if ticket.query_class == "oltp":
                oltp_served += 1
                if ticket.wait_seconds <= SLO_WAIT:
                    oltp_good += 1
        clock.advance(1.0)
    for ticket in admission.run_all():  # drain the tail, SLO still applies
        if ticket.query_class == "oltp":
            oltp_served += 1
            if ticket.wait_seconds <= SLO_WAIT:
                oltp_good += 1
    assert admission.conserved()
    counts = admission.counts()
    return {
        "oltp_goodput": oltp_good,
        "oltp_served": oltp_served,
        "olap_served": counts["executed"] - oltp_served,
        "shed": counts["shed"],
        "submitted": counts["submitted"],
    }


def run_all_arms() -> dict[str, dict[str, float]]:
    return {
        "baseline": run_arm(burst=False, fifo=False),
        "qos_on": run_arm(burst=True, fifo=False),
        "qos_off": run_arm(burst=True, fifo=True),
    }


def test_qos_on_keeps_oltp_goodput():
    arms = run_all_arms()
    baseline = arms["baseline"]["oltp_goodput"]
    assert baseline >= 0.95 * TICKS, arms["baseline"]
    assert arms["qos_on"]["oltp_goodput"] >= 0.90 * baseline, arms
    # the burst was real: admission shed analytical overload
    assert arms["qos_on"]["shed"] > 0, arms["qos_on"]


def test_qos_off_collapses_under_the_same_burst():
    arms = run_all_arms()
    baseline = arms["baseline"]["oltp_goodput"]
    assert arms["qos_off"]["oltp_goodput"] < 0.5 * baseline, arms
    # identical load reached both arms — only scheduling differs
    assert arms["qos_off"]["submitted"] == arms["qos_on"]["submitted"]


def test_arms_are_deterministic():
    assert run_all_arms() == run_all_arms()


if __name__ == "__main__":
    arms = run_all_arms()
    baseline = arms["baseline"]["oltp_goodput"]
    for name, stats in arms.items():
        ratio = stats["oltp_goodput"] / baseline if baseline else 0.0
        print(
            f"[E25] {name:8s}  oltp_goodput={stats['oltp_goodput']:.0f} "
            f"({ratio:.1%} of baseline)  oltp_served={stats['oltp_served']:.0f}  "
            f"olap_served={stats['olap_served']:.0f}  shed={stats['shed']:.0f}  "
            f"submitted={stats['submitted']:.0f}"
        )
