"""E7 — §IV/Fig. 3 [13]: distributed plans and communication-aware joins.

Paper claims: distributed plans "can lead to strong speedup results
compared to single machine execution ... if the plans are specifically
tailored for a clustered execution in combination with efficient
communication algorithms".

Measured shape: (a) per-node work for a partitioned aggregation drops
near-linearly with the node count (the simulated-cluster equivalent of
speedup); (b) the communication volume ranking of the three join
strategies: co-located < broadcast < repartition for a large fact table
and small dimension table.
"""

from __future__ import annotations

import pytest

from repro.soe.engine import SoeEngine

FACT_ROWS = 30_000
DIM_ROWS = 64


def build(nodes: int, fact_key: str = "id") -> SoeEngine:
    soe = SoeEngine(node_count=nodes)
    soe.create_table("fact", ["id", "k", "v"], [fact_key], partition_count=2 * nodes)
    soe.create_table("dim", ["k", "grp"], ["k"], partition_count=2 * nodes)
    soe.load("fact", [[i, i % DIM_ROWS, 1.0] for i in range(FACT_ROWS)])
    soe.load("dim", [[i, f"g{i % 4}"] for i in range(DIM_ROWS)])
    return soe


@pytest.mark.benchmark(group="E7-scaleout-aggregate")
@pytest.mark.parametrize("nodes", [1, 2, 4, 8, 16])
def test_aggregate_scaleout(benchmark, reporter, nodes):
    soe = build(nodes)

    def run():
        rows, cost = soe.aggregate(
            "fact", group_by=["k"], aggregates=[("sum", "v")]
        )
        return rows, cost

    rows, cost = benchmark(run)
    # measure per-node load on one fresh landscape (the benchmark loop
    # accumulates rows_processed across iterations)
    fresh = build(nodes)
    fresh.aggregate("fact", group_by=["k"], aggregates=[("sum", "v")])
    loads = fresh.stats.node_load()
    reporter(
        "E7",
        nodes=nodes,
        max_rows_per_node=max(loads.values()),
        ideal=FACT_ROWS // nodes,
        bytes_shipped=cost.bytes_shipped,
    )
    assert len(rows) == DIM_ROWS


@pytest.mark.benchmark(group="E7-join-strategies")
@pytest.mark.parametrize("strategy", ["broadcast", "repartition"])
def test_join_strategy_costs(benchmark, reporter, strategy):
    soe = build(4)  # fact partitioned on id, join on k: genuine shuffle

    def run():
        soe.cluster.reset_stats()
        return soe.join(
            "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy=strategy
        )

    rows, cost = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter(
        "E7",
        strategy=strategy,
        bytes_shipped=cost.bytes_shipped,
        messages=cost.messages,
        simulated_network_seconds=round(cost.simulated_network_seconds, 6),
    )
    assert len(rows) == 4


@pytest.mark.benchmark(group="E7-join-strategies")
def test_join_colocated_cost(benchmark, reporter):
    soe = build(4, fact_key="k")  # co-partitioned on the join key

    def run():
        soe.cluster.reset_stats()
        return soe.join(
            "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy="colocated"
        )

    rows, cost = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter(
        "E7",
        strategy="colocated",
        bytes_shipped=cost.bytes_shipped,
        messages=cost.messages,
    )
    assert len(rows) == 4


def test_strategy_cost_ordering(benchmark, reporter):
    """The headline ordering the coordinator's auto mode relies on."""
    shuffle_soe = benchmark.pedantic(lambda: build(4), rounds=1, iterations=1)
    costs = {}
    for strategy in ("broadcast", "repartition"):
        shuffle_soe.cluster.reset_stats()
        _rows, cost = shuffle_soe.join(
            "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy=strategy
        )
        costs[strategy] = cost.bytes_shipped
    colocated_soe = build(4, fact_key="k")
    _rows, cost = colocated_soe.join(
        "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy="colocated"
    )
    costs["colocated"] = cost.bytes_shipped
    reporter("E7", metric="bytes-shipped-ordering", **costs)
    assert costs["colocated"] < costs["broadcast"] < costs["repartition"]
