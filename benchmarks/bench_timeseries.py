"""E12 — §II.F: time-series compression factors and in-engine operations.

Paper claims: time-series types "provide large compression factors"
(especially for sensor data) plus in-engine resolution adaptation,
comparison, and correlation.

Measured shape: compression ratio is highest for regular, slowly-moving
sensor signals and degrades gracefully with timestamp jitter and noise;
in-engine resample/correlate run in milliseconds on 100k-point series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.timeseries.analytics import correlation, resample
from repro.engines.timeseries.compression import compression_ratio, decode, encode
from repro.engines.timeseries.series import TimeSeries
from repro.workloads.generators import SensorConfig, sensor_readings


def series_from_config(irregular: float, noise: float, points: int = 20_000) -> TimeSeries:
    config = SensorConfig(
        sensors=1,
        readings_per_sensor=points,
        irregular_fraction=irregular,
        noise=noise,
    )
    rows = list(sensor_readings(config))
    return TimeSeries([row[1] for row in rows], [row[2] for row in rows])


@pytest.mark.benchmark(group="E12-compression")
@pytest.mark.parametrize(
    "label,irregular,noise",
    [("regular-smooth", 0.0, 0.05), ("regular-noisy", 0.0, 2.0), ("jittered", 0.3, 0.5)],
)
def test_compression_ratio_by_regularity(benchmark, reporter, label, irregular, noise):
    series = series_from_config(irregular, noise)
    blob = benchmark(lambda: encode(series))
    ratio = series.raw_bytes() / len(blob)
    reporter("E12", workload=label, points=len(series), ratio=round(ratio, 2))
    assert decode(blob).timestamps[0] == series.timestamps[0]
    assert ratio > 1.5


@pytest.mark.benchmark(group="E12-ops")
def test_resample_100k_points(benchmark, reporter):
    series = series_from_config(0.0, 0.5, points=100_000)
    hourly = benchmark(lambda: resample(series, 3600, "mean"))
    reporter("E12", op="resample-to-hourly", points_in=len(series), points_out=len(hourly))
    assert len(hourly) < len(series)


@pytest.mark.benchmark(group="E12-ops")
def test_correlation_50k_points(benchmark, reporter):
    base = series_from_config(0.0, 0.2, points=50_000)
    shifted = TimeSeries(base.timestamps, base.values * 2.0 + 1.0)
    value = benchmark(lambda: correlation(base, shifted))
    reporter("E12", op="correlation", points=len(base), r=round(value, 4))
    assert value == pytest.approx(1.0, abs=1e-9)
