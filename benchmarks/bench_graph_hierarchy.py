"""E11 — §II.E [4][5]: graph/hierarchy views beat recursive SQL emulation.

Paper claims: "explicit graph structures help applications to express
complex business logic more explicitly and execute the operations more
effectively" (GRATIN), and interval-labelled hierarchies answer transitive
queries without moving subtrees (DeltaNI, and the §III count example).

Measured shape: descendant counting via interval labels is O(1) and beats
level-at-a-time self-join expansion by orders of magnitude; graph
traversals on the adjacency view beat re-deriving adjacency per query.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.engines.graph.algorithms import bfs_distances, shortest_path
from repro.engines.graph.graph import create_graph_view
from repro.engines.graph.hierarchy import (
    HierarchyView,
    descendant_count_via_self_joins,
)

NODES = 50_000


@pytest.fixture(scope="module")
def big_parents():
    parents = {0: None}
    for node in range(1, NODES):
        parents[node] = (node - 1) // 3
    return parents


@pytest.mark.benchmark(group="E11-hierarchy")
def test_descendant_count_interval_labels(benchmark, reporter, big_parents):
    view = HierarchyView("h", big_parents)
    count = benchmark(lambda: view.descendant_count(0))
    reporter("E11", variant="interval-labels", nodes=NODES, count=count)
    assert count == NODES - 1


@pytest.mark.benchmark(group="E11-hierarchy")
def test_descendant_count_self_join_baseline(benchmark, reporter, big_parents):
    count = benchmark(lambda: descendant_count_via_self_joins(big_parents, 0))
    reporter("E11", variant="self-joins", nodes=NODES, count=count)
    assert count == NODES - 1


@pytest.mark.benchmark(group="E11-graph")
def test_traversal_on_graph_view(benchmark, reporter):
    database = Database()
    database.execute("CREATE TABLE v (id INT)")
    database.execute("CREATE TABLE e (s INT, t INT, w DOUBLE)")
    txn = database.begin()
    database.table("v").insert_many(([i] for i in range(5_000)), txn)
    edges = []
    for i in range(1, 5_000):
        edges.append([i - 1, i, 1.0])
        if i % 7 == 0:
            edges.append([i, max(0, i - 50), 2.0])
    database.table("e").insert_many(edges, txn)
    database.commit(txn)
    graph = create_graph_view(database, "g", "v", "id", "e", "s", "t", "w")

    distances = benchmark(lambda: bfs_distances(graph, 0))
    reporter("E11", variant="graph-view-bfs", vertices=5_000, reached=len(distances))
    assert len(distances) == 5_000


@pytest.mark.benchmark(group="E11-graph")
def test_traversal_rebuilding_adjacency_per_query(benchmark, reporter):
    """Baseline: an application keeps edges relationally and re-derives
    adjacency for every traversal (the no-graph-engine pattern)."""
    database = Database()
    database.execute("CREATE TABLE e (s INT, t INT)")
    txn = database.begin()
    edges = [[i - 1, i] for i in range(1, 5_000)]
    database.table("e").insert_many(edges, txn)
    database.commit(txn)
    database.merge("e")

    def run():
        from collections import deque

        rows = database.query("SELECT s, t FROM e").rows
        adjacency: dict[int, list[int]] = {}
        for s, t in rows:
            adjacency.setdefault(s, []).append(t)
        seen = {0: 0}
        queue = deque([0])
        while queue:
            current = queue.popleft()
            for neighbor in adjacency.get(current, ()):  # noqa: B023
                if neighbor not in seen:
                    seen[neighbor] = seen[current] + 1
                    queue.append(neighbor)
        return seen

    distances = benchmark(run)
    reporter("E11", variant="app-side-bfs", vertices=5_000, reached=len(distances))
    assert len(distances) == 5_000
