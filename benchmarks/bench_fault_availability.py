"""E23 — availability under seeded node churn (`repro.chaos`).

Claim under test: with replication=2 and failure-aware coordination
(bounded retry + replica failover), an SOE landscape under a 10%
per-tick node-kill schedule completes ≥99% of queries, and every
completed query returns exactly the fault-free answer. With failover
disabled the same schedule fails the majority of queries — replication
alone, without a coordinator that re-plans around dead primaries, buys
almost nothing.

Measured shape: 200 aggregate queries, one chaos tick each, identical
seeded `FaultPlan.kill_schedule` for both arms. Run directly
(``python benchmarks/bench_fault_availability.py``) or via pytest.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.chaos import ChaosController, FaultPlan  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.soe.engine import SoeEngine  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1729"))
QUERIES = 200
KILL_RATE = 0.10
WORKERS = ["worker0", "worker1", "worker2"]


def build_soe(chaos: ChaosController | None, failover: bool) -> SoeEngine:
    soe = SoeEngine(
        node_count=3, node_modes="olap", replication=2,
        chaos=chaos, failover=failover,
    )
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6
    )
    soe.load("readings", [[i, f"r{i % 5}", float(i % 97)] for i in range(600)])
    return soe


def run_arm(failover: bool) -> dict[str, float]:
    baseline = sorted(build_soe(None, True).aggregate("readings", group_by=["region"])[0])
    plan = FaultPlan.kill_schedule(seed=SEED, ticks=QUERIES, rate=KILL_RATE, nodes=WORKERS)
    controller = ChaosController(plan)
    soe = build_soe(controller, failover)
    completed = failed = wrong = 0
    for _ in range(QUERIES):
        controller.tick()
        try:
            rows, _cost = soe.aggregate("readings", group_by=["region"])
        except ReproError:
            failed += 1
            continue
        completed += 1
        if sorted(rows) != baseline:
            wrong += 1
    crashes = sum(1 for event in controller.fired if event.kind == "crash")
    return {
        "completed": completed,
        "failed": failed,
        "wrong": wrong,
        "crashes": crashes,
        "availability": completed / QUERIES,
    }


def test_failover_meets_availability_target():
    stats = run_arm(failover=True)
    assert stats["availability"] >= 0.99, stats
    assert stats["wrong"] == 0, "a completed query returned a non-baseline answer"
    assert stats["crashes"] > 0, "the kill schedule never fired — benchmark is vacuous"


def test_no_failover_fails_the_majority():
    stats = run_arm(failover=False)
    assert stats["availability"] < 0.5, stats
    assert stats["wrong"] == 0


if __name__ == "__main__":
    for arm, failover in (("failover=on", True), ("failover=off", False)):
        stats = run_arm(failover)
        print(
            f"[E23] {arm}  queries={QUERIES}  kill_rate={KILL_RATE:.0%}  "
            f"seed={SEED}  crashes={stats['crashes']}  "
            f"completed={stats['completed']}  failed={stats['failed']}  "
            f"wrong={stats['wrong']}  availability={stats['availability']:.1%}"
        )
