"""E27 — throughput recovery after an induced hotspot (`repro.soe.movement`).

Claim under test: with hotspot-driven auto-rebalancing on, a landscape
whose partitions were all skewed onto one node recovers a balanced load
distribution within a handful of supervision ticks — while queries keep
executing with zero errors, because every partition is moved *online*
by the five-phase `PartitionMover` protocol. With auto-rebalancing off,
the hotspot persists for the whole run.

Measured shape: skew all six partitions of a 600-row table onto
worker0, then run `TICKS` supervision ticks; each tick executes one
full-table aggregate (the query load) and, in the rebalancing arm, one
`AutoRebalancer.step()`. Per tick we record the load imbalance — the
hottest node's window-load share over the perfectly-even share (3.0 =
everything on one of three nodes, 1.0 = even) — and report the first
tick at which it drops to ≤ `RECOVERED_AT`. Run directly
(``python benchmarks/bench_rebalance.py``) or via pytest.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from repro.errors import ReproError  # noqa: E402
from repro.soe.engine import SoeEngine  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
TICKS = 12
ROWS = 600
WORKERS = 3
#: imbalance at or below this counts as recovered (1.0 = perfectly even)
RECOVERED_AT = 1.5


def build_soe() -> SoeEngine:
    soe = SoeEngine(node_count=WORKERS, node_modes="olap")
    soe.create_table("events", ["k", "v"], ["k"], partition_count=6)
    soe.load("events", [[SEED + i, float(i % 97)] for i in range(ROWS)])
    return soe


def induce_hotspot(soe: SoeEngine) -> None:
    """Skew every partition onto worker0 (the offline fast path — the
    cluster is idle while we stage the scenario)."""
    for partition_id, nodes in soe.catalog.placement_of("events").items():
        if nodes[0] != "worker0":
            soe.manager.move_partition("events", partition_id, nodes[0], "worker0")


def run_arm(rebalancing: bool) -> dict[str, object]:
    soe = build_soe()
    induce_hotspot(soe)
    rebalancer = soe.make_rebalancer(hotspot_factor=1.2, max_moves_per_step=2)
    marks: dict[str, int] = {}
    imbalances: list[float] = []
    errors = moves = 0
    recovery_tick = None
    for tick in range(TICKS):
        try:
            rows, _ = soe.aggregate("events", aggregates=[("count", None)])
            assert rows[0][0] == ROWS
        except ReproError:
            errors += 1
        loads = soe.stats.node_load()
        deltas = {n: loads[n] - marks.get(n, 0) for n in loads}
        marks = loads
        total = sum(deltas.values())
        imbalance = (
            max(deltas.values()) / (total / len(deltas)) if total else 1.0
        )
        imbalances.append(imbalance)
        if recovery_tick is None and imbalance <= RECOVERED_AT:
            recovery_tick = tick
        if rebalancing:
            moves += len(rebalancer.step())
    counts = {
        worker: len(soe.catalog.partitions_on("events", worker))
        for worker in soe.worker_ids
    }
    return {
        "rebalancing": rebalancing,
        "errors": errors,
        "moves": moves,
        "recovery_tick": recovery_tick,
        "first_imbalance": imbalances[0],
        "final_imbalance": imbalances[-1],
        "final_partition_counts": counts,
        "imbalances": imbalances,
    }


def test_rebalancing_recovers_throughput_with_zero_errors():
    stats = run_arm(rebalancing=True)
    assert stats["errors"] == 0, "a query failed during the migration window"
    assert stats["moves"] > 0, "the rebalancer never moved — benchmark is vacuous"
    assert stats["first_imbalance"] > 2.5, "the induced hotspot never existed"
    assert stats["recovery_tick"] is not None, stats
    assert stats["final_imbalance"] <= RECOVERED_AT, stats
    counts = stats["final_partition_counts"]
    assert max(counts.values()) < 6, "worker0 still holds everything"


def test_without_rebalancing_the_hotspot_persists():
    stats = run_arm(rebalancing=False)
    assert stats["errors"] == 0
    assert stats["moves"] == 0
    assert stats["recovery_tick"] is None, stats
    assert stats["final_imbalance"] > 2.5, stats


def main() -> None:
    import reporting

    for arm in (True, False):
        stats = run_arm(rebalancing=arm)
        for tick, imbalance in enumerate(stats["imbalances"]):
            reporting.report(
                "E27",
                arm="rebalance=on" if arm else "rebalance=off",
                tick=tick,
                imbalance=round(imbalance, 3),
            )
        reporting.report(
            "E27",
            arm="rebalance=on" if arm else "rebalance=off",
            summary=1,
            errors=stats["errors"],
            moves=stats["moves"],
            recovery_tick=stats["recovery_tick"],
            final_imbalance=round(stats["final_imbalance"], 3),
        )
    for path in reporting.flush():
        print(f"[bench] wrote {path}")


if __name__ == "__main__":
    main()
