"""E8 — §IV.B [15]: the CORFU-style shared log and OLTP/OLAP node modes.

Paper claims: the log "stores all changes in a transactional consistent
way" with the sequencer as the only central step; striping spreads the
write load; OLAP nodes trade staleness for cheap writes while OLTP nodes
pay synchronous apply for freshness.

Measured shape: append throughput grows with stripe count (per-stripe load
drops); OLTP-mode commits are slower than OLAP-mode commits, but OLAP
reads pay a catch-up that grows with staleness.
"""

from __future__ import annotations

import pytest

from repro.soe.engine import SoeEngine
from repro.soe.services.shared_log import SharedLog

APPENDS = 4_000


@pytest.mark.benchmark(group="E8-log-append")
@pytest.mark.parametrize("stripes", [1, 2, 4, 8])
def test_append_throughput_by_stripes(benchmark, reporter, stripes):
    def run():
        log = SharedLog(stripes=stripes, replication=2)
        for i in range(APPENDS):
            log.append({"n": i})
        return log

    log = benchmark.pedantic(run, rounds=3, iterations=1)
    lengths = log.stripe_lengths()
    reporter(
        "E8",
        stripes=stripes,
        appends=APPENDS,
        max_per_stripe=max(lengths),
        balance=round(min(lengths) / max(lengths), 3),
    )
    assert sum(lengths) == APPENDS


WRITES = 300
ROWS_PER_WRITE = 5


def landscape(mode: str) -> SoeEngine:
    soe = SoeEngine(node_count=2, node_modes=mode)
    soe.create_table("t", ["k", "v"], ["k"], partition_count=4)
    soe.load("t", [[i, 0.0] for i in range(100)])
    return soe


@pytest.mark.benchmark(group="E8-node-modes")
@pytest.mark.parametrize("mode", ["oltp", "olap"])
def test_write_path_cost_by_node_mode(benchmark, reporter, mode):
    def run():
        soe = landscape(mode)
        base = 1_000
        for i in range(WRITES):
            rows = [[base + i * ROWS_PER_WRITE + j, 1.0] for j in range(ROWS_PER_WRITE)]
            soe.insert("t", rows)
        return soe

    soe = benchmark.pedantic(run, rounds=3, iterations=1)
    staleness = max(node.staleness() for node in soe.data_nodes.values())
    reporter("E8", mode=mode, writes=WRITES, max_staleness=staleness)
    if mode == "oltp":
        assert staleness == 0
    else:
        assert staleness == WRITES


@pytest.mark.benchmark(group="E8-freshness")
@pytest.mark.parametrize("staleness", [0, 100, 300])
def test_strong_read_pays_catch_up(benchmark, reporter, staleness):
    def setup():
        soe = landscape("olap")
        for i in range(staleness):
            soe.insert("t", [[10_000 + i, 1.0]])
        return (soe,), {}

    def run(soe):
        return soe.aggregate("t", aggregates=[("count", None)], consistency="strong")

    rows, _cost = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    reporter("E8", staleness_txns=staleness, fresh_count=rows[0][0])
    assert rows[0][0] == 100 + staleness
