"""E17 — Fig. 4: streaming ingest into the column store.

Paper claim: the streaming engine feeds high-rate event data (sensors,
extracted keywords) into the in-memory structures, where it is immediately
queryable with everything else.

Measured shape: ingest rate through the full chain (window operator +
batched table sink) scales with batch size; the delta store absorbs the
events and one merge folds them into the read-optimised main.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.streaming.esp import StreamProcessor, TableSink, TumblingWindowAggregate

EVENTS = 20_000


def events():
    for i in range(EVENTS):
        yield {"ts": i, "sensor": i % 50, "v": float(i % 97)}


@pytest.mark.benchmark(group="E17-streaming")
@pytest.mark.parametrize("batch_size", [10, 100, 1_000])
def test_ingest_rate_by_commit_batch(benchmark, reporter, batch_size):
    def run():
        database = Database()
        database.execute(
            "CREATE TABLE windows (sensor INT, window_start BIGINT, count INT, "
            "sum DOUBLE, min DOUBLE, max DOUBLE, avg DOUBLE)"
        )
        sink = TableSink(database, "windows", batch_size=batch_size)
        processor = StreamProcessor(
            [TumblingWindowAggregate("ts", "sensor", "v", width=100)], [sink]
        )
        processor.push_many(events())
        processor.finish()
        return database

    database = benchmark.pedantic(run, rounds=3, iterations=1)
    stored = database.query("SELECT COUNT(*) FROM windows").scalar()
    reporter(
        "E17",
        batch_size=batch_size,
        events_in=EVENTS,
        window_rows=stored,
        delta_rows=database.table("windows").delta_rows(),
    )
    stats = database.merge("windows")
    assert stats.rows_merged == stored
    # windowed data is immediately queryable with plain SQL
    top = database.query(
        "SELECT sensor, SUM(sum) AS s FROM windows GROUP BY sensor ORDER BY s DESC LIMIT 1"
    ).first()
    assert top is not None
