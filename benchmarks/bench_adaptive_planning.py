"""E26 — adaptive feedback-driven planning and the plan cache.

Claims under test (docs/OPTIMIZER.md):

* **Adaptivity wins on skew.** A three-table join written in the worst
  order (big fact first, selective table last) runs >= 1.5x faster with
  the feedback loop on: the cold run aborts mid-query when the fact-dim
  blowup exceeds its estimate by >10x and re-plans, and warm runs order
  the selective table first from observed cardinalities.
* **Repeated-shape traffic is cache-hot.** Mixed traffic over a handful
  of query shapes with varying literals reaches a >= 90% plan-cache hit
  rate once each shape has absorbed its cold miss.
* **A hit is much cheaper than planning.** fingerprint + lookup +
  instantiate (binding a private deep copy of the cached plan) beats a
  full ``plan_select`` by >= 5x.

Deterministic workload, wall-clock timings. Run directly
(``python benchmarks/bench_adaptive_planning.py``, which writes
``BENCH_E26.json``) or via pytest.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

import reporting  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.sql import plancache  # noqa: E402
from repro.sql.parser import parse  # noqa: E402
from repro.sql.planner import plan_select  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))  # shifts literal traffic
FACT_ROWS = 6_000
DIM_ROWS = 1_200  # 100 keys x 12 duplicates: the 12x blowup the planner misses
RARE_KEYS = 10
RUNS = 5

#: written in the worst order — the selective filter comes last
SKEWED_SQL = (
    "SELECT COUNT(*) FROM fact JOIN dim ON fact.k = dim.k "
    "JOIN tags ON dim.k = tags.k WHERE tags.tag = 'rare'"
)


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE fact (k INT, v DOUBLE)")
    db.execute("CREATE TABLE dim (k INT, grp VARCHAR)")
    db.execute("CREATE TABLE tags (k INT, tag VARCHAR)")
    db.execute(
        "INSERT INTO fact VALUES "
        + ", ".join(f"({i % 100 + 1}, {float(i)})" for i in range(FACT_ROWS))
    )
    db.execute(
        "INSERT INTO dim VALUES "
        + ", ".join(f"({i % 100 + 1}, 'g{i % 4}')" for i in range(DIM_ROWS))
    )
    db.execute(
        "INSERT INTO tags VALUES "
        + ", ".join(
            f"({k}, '{'rare' if k <= RARE_KEYS else 'common'}')"
            for k in range(1, 101)
        )
    )
    return db


def run_skew_arm(adaptive: bool) -> dict[str, float]:
    """Time RUNS executions of the skewed join with the loop on or off."""
    db = build_db()
    db.adaptive_planning = adaptive
    db.plan_cache_enabled = adaptive
    elapsed = []
    reoptimizations = 0
    expected = None
    for _ in range(RUNS):
        start = time.perf_counter()
        result = db.execute(SKEWED_SQL)
        elapsed.append(time.perf_counter() - start)
        reoptimizations += result.reoptimizations
        if expected is None:
            expected = result.scalar()
        assert result.scalar() == expected
    return {
        "mean_seconds": sum(elapsed) / len(elapsed),
        "first_seconds": elapsed[0],
        "rest_mean_seconds": sum(elapsed[1:]) / max(len(elapsed) - 1, 1),
        "reoptimizations": reoptimizations,
        "rows": float(expected),
    }


def run_hit_rate_arm(statements: int = 200) -> dict[str, float]:
    """Repeated-shape traffic with varying literals; returns cache stats."""
    db = build_db()
    shapes = [
        "SELECT COUNT(*) FROM fact WHERE k = {}",
        "SELECT SUM(v) FROM fact WHERE k < {}",
        "SELECT grp, COUNT(*) FROM dim WHERE k = {} GROUP BY grp",
        "SELECT COUNT(*) FROM tags WHERE tag = '{}'",
    ]
    tags = ["rare", "common"]
    for index in range(statements):
        shape = shapes[(index + SEED) % len(shapes)]
        literal = tags[index % 2] if "tag = " in shape else (index * 7 + SEED) % 100 + 1
        db.execute(shape.format(literal))
    stats = db.plan_cache.stats()
    stats["statements"] = statements
    return stats


def run_lookup_arm(iterations: int = 300) -> dict[str, float]:
    """Cache-hit lookup (fingerprint + get + instantiate) vs full planning.

    The hit loop alternates two literal values so every other iteration
    pays the substitution-copy path (changed constants rebuild the spine
    above each slot), not just the shared-plan shortcut.
    """
    db = build_db()
    db.execute(SKEWED_SQL)  # warm feedback + cache
    db.execute(SKEWED_SQL)
    statement = parse(SKEWED_SQL)
    variants = [statement, parse(SKEWED_SQL.replace("'rare'", "'common'"))]

    def plan_once() -> None:
        plan_select(statement, db.catalog, feedback=db.feedback)

    hit_index = 0

    def hit_once() -> None:
        nonlocal hit_index
        bound = variants[hit_index % 2]
        hit_index += 1
        key = plancache.fingerprint(bound)
        entry = db.plan_cache.get(key, db.feedback)
        assert entry is not None
        assert plancache.instantiate(entry, bound) is not None

    def best_of(step, repeats: int = 5) -> float:
        """Min-of-means over several repeats: scheduler noise only ever
        slows a repeat down, so the minimum is the honest per-call cost."""
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                step()
            best = min(best, (time.perf_counter() - start) / iterations)
        return best

    plan_seconds = best_of(plan_once)
    hit_seconds = best_of(hit_once)
    return {
        "plan_microseconds": plan_seconds * 1e6,
        "hit_microseconds": hit_seconds * 1e6,
        "speedup": plan_seconds / hit_seconds,
    }


# -- pytest entry points -------------------------------------------------------


def test_adaptive_beats_static_on_skew(reporter):
    static = run_skew_arm(adaptive=False)
    adaptive = run_skew_arm(adaptive=True)
    assert static["rows"] == adaptive["rows"]
    assert adaptive["reoptimizations"] >= 1  # the cold run re-planned mid-query
    speedup = static["mean_seconds"] / adaptive["mean_seconds"]
    reporter(
        "E26",
        arm="skewed-join",
        static_ms=round(static["mean_seconds"] * 1e3, 2),
        adaptive_ms=round(adaptive["mean_seconds"] * 1e3, 2),
        speedup=round(speedup, 2),
        reoptimizations=adaptive["reoptimizations"],
    )
    assert speedup >= 1.5, (static, adaptive)


def test_repeated_shapes_are_cache_hot(reporter):
    stats = run_hit_rate_arm()
    reporter(
        "E26",
        arm="hit-rate",
        statements=stats["statements"],
        hits=stats["hits"],
        misses=stats["misses"],
        stale=stats["stale"],
        hit_rate=round(stats["hit_rate"], 3),
    )
    assert stats["hit_rate"] >= 0.90, stats


def test_cache_hit_beats_full_planning(reporter):
    lookup = run_lookup_arm()
    reporter(
        "E26",
        arm="lookup",
        plan_us=round(lookup["plan_microseconds"], 1),
        hit_us=round(lookup["hit_microseconds"], 1),
        speedup=round(lookup["speedup"], 1),
    )
    assert lookup["speedup"] >= 5.0, lookup


if __name__ == "__main__":
    static = run_skew_arm(adaptive=False)
    adaptive = run_skew_arm(adaptive=True)
    reporting.report(
        "E26",
        arm="skewed-join",
        static_ms=round(static["mean_seconds"] * 1e3, 2),
        adaptive_ms=round(adaptive["mean_seconds"] * 1e3, 2),
        speedup=round(static["mean_seconds"] / adaptive["mean_seconds"], 2),
        reoptimizations=adaptive["reoptimizations"],
    )
    hit_rate = run_hit_rate_arm()
    reporting.report(
        "E26",
        arm="hit-rate",
        statements=hit_rate["statements"],
        hits=hit_rate["hits"],
        misses=hit_rate["misses"],
        stale=hit_rate["stale"],
        hit_rate=round(hit_rate["hit_rate"], 3),
    )
    lookup = run_lookup_arm()
    reporting.report(
        "E26",
        arm="lookup",
        plan_us=round(lookup["plan_microseconds"], 1),
        hit_us=round(lookup["hit_microseconds"], 1),
        speedup=round(lookup["speedup"], 1),
    )
    for path in reporting.flush():
        print(f"[bench] wrote {path}")
