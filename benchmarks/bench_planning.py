"""E16 — §II.D: in-engine planning operators.

Paper claims: planning needs "heavy CPU based database functionality like
disaggregation or copy processes, providing logical snapshots or
versioning" — in the engine, not the application.

Measured shape: disaggregating a target over 10k leaves and branching a
what-if version are engine-local and fast; the copy-on-write version costs
memory proportional to edits, not cube size.
"""

from __future__ import annotations

import pytest

from repro.engines.graph.hierarchy import HierarchyView
from repro.planning.disaggregation import aggregate_up, disaggregate_hierarchy
from repro.planning.versions import PlanningCube

LEAVES = 10_000


@pytest.fixture(scope="module")
def org():
    parents = {"root": None}
    for region in range(10):
        parents[f"region{region}"] = "root"
        for store in range(LEAVES // 10):
            parents[f"store_{region}_{store}"] = f"region{region}"
    return HierarchyView("org", parents)


@pytest.mark.benchmark(group="E16-planning")
def test_disaggregate_10k_leaves(benchmark, reporter, org):
    weights = {f"store_{r}_{s}": float(s + 1) for r in range(10) for s in range(LEAVES // 10)}
    allocation = benchmark(
        lambda: disaggregate_hierarchy(org, "root", 1_000_000.0, weights)
    )
    reporter("E16", op="disaggregate", leaves=len(allocation))
    assert abs(sum(allocation.values()) - 1_000_000.0) < 1e-6


@pytest.mark.benchmark(group="E16-planning")
def test_aggregate_up(benchmark, reporter, org):
    leaf_values = {f"store_{r}_{s}": 1.0 for r in range(10) for s in range(LEAVES // 10)}
    totals = benchmark(lambda: aggregate_up(org, leaf_values))
    reporter("E16", op="aggregate-up", nodes=len(totals))
    assert totals["root"] == LEAVES


@pytest.mark.benchmark(group="E16-planning")
def test_version_branch_is_cheap(benchmark, reporter):
    cube = PlanningCube("sales", ["store", "month"])
    for store in range(2_000):
        for month in ("m1", "m2"):
            cube.set("actuals", (store, month), float(store))

    import itertools

    counter = itertools.count()

    def run():
        name = f"whatif{next(counter)}"
        cube.create_version(name)
        cube.set(name, (0, "m1"), 999.0)
        return cube.override_count(name)

    overrides = benchmark.pedantic(run, rounds=20, iterations=1)
    reporter("E16", op="branch-version", cells_in_cube=4_000, cow_cells=overrides)
    assert overrides == 1
