"""E24 — the happens-before race sanitizer must stay affordable.

Claim under test: running a lock-heavy transactional workload under
``repro.analysis.racecheck`` costs less than 3x the uninstrumented wall
time with the FastTrack epoch optimization on, so CI can afford a full
sanitized pass of the concurrency suites. The full-vector-clock arm
(``full_vc=True``) is measured alongside for comparison — it is the
algorithm FastTrack shortcuts, not a gated budget.

Measured shape: ``THREADS`` worker threads each drive ``TXNS_PER_THREAD``
transactions through one shared :class:`TransactionManager` (build a
``ROW_WIDTH``-column row, checksum it, begin → redo-log append →
commit), with the manager's commit state tracked as a racecheck
``Shared`` mapping so every commit exercises the read/write
instrumentation, the lock edges, and the start/join edges. The per-txn
row work keeps the synchronization : compute mix representative — a
commit that does nothing but take locks measures the wrapper, not the
sanitizer. Run directly (``python benchmarks/bench_racecheck_overhead.py``)
or via pytest.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from time import perf_counter

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis import racecheck  # noqa: E402
from repro.transaction.manager import TransactionManager  # noqa: E402

BUDGET_RATIO = 3.0
THREADS = 4
TXNS_PER_THREAD = 150
ROW_WIDTH = 96
REPEATS = 3


def _workload() -> int:
    """Concurrent commits against one manager; returns the last cid."""
    applied = racecheck.Shared({}, "bench.applied") if racecheck.is_installed() else {}
    lock = threading.Lock()
    manager = TransactionManager()
    columns = [f"c{i}" for i in range(ROW_WIDTH)]

    def worker(worker_id: int) -> None:
        for index in range(TXNS_PER_THREAD):
            row = {name: worker_id * 31 + index * ordinal for ordinal, name in enumerate(columns)}
            checksum = sum(hash(item) for item in row.items()) & 0xFFFFFFFF
            txn = manager.begin()
            txn.log_redo({"op": "insert", "row": row, "checksum": checksum})
            cid = manager.commit(txn)
            with lock:
                applied[worker_id] = cid

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return manager.last_committed_cid


def _time_workload() -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = perf_counter()
        _workload()
        best = min(best, perf_counter() - started)
    return best


def measure() -> dict[str, float]:
    base = _time_workload()
    with racecheck.active():
        fasttrack = _time_workload()
    with racecheck.active(full_vc=True):
        full_vc = _time_workload()
    return {
        "base_s": base,
        "fasttrack_s": fasttrack,
        "full_vc_s": full_vc,
        "fasttrack_ratio": fasttrack / base,
        "full_vc_ratio": full_vc / base,
    }


def test_fasttrack_overhead_under_budget():
    results = measure()
    assert results["fasttrack_ratio"] < BUDGET_RATIO, (
        f"racecheck (FastTrack) cost {results['fasttrack_ratio']:.2f}x the "
        f"uninstrumented workload — over the {BUDGET_RATIO:.0f}x budget"
    )


if __name__ == "__main__":
    results = measure()
    txns = THREADS * TXNS_PER_THREAD
    print(
        f"racecheck overhead ({THREADS} threads x {TXNS_PER_THREAD} txns = {txns} commits, "
        f"best of {REPEATS}):\n"
        f"  off       {results['base_s'] * 1000:7.1f} ms\n"
        f"  fasttrack {results['fasttrack_s'] * 1000:7.1f} ms  "
        f"({results['fasttrack_ratio']:.2f}x, budget <{BUDGET_RATIO:.0f}x)\n"
        f"  full_vc   {results['full_vc_s'] * 1000:7.1f} ms  "
        f"({results['full_vc_ratio']:.2f}x, comparison arm)"
    )
    if results["fasttrack_ratio"] >= BUDGET_RATIO:
        sys.exit(1)
