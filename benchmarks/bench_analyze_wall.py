"""E22 — the CI lint gate must stay cheap.

Claim under test: running every ``tools.analyze`` rule over the full
``src`` tree — including the RA112–RA115 CFG/dataflow passes — finishes
in under 2 seconds, so gating CI on it costs noise, not minutes. Per-rule
``source_prefilter`` tokens let the driver skip whole traversals for
files that cannot contain a rule's pattern, which is what keeps the
budget honest as the rule count grows.

Measured shape: wall time of :func:`tools.analyze.analyze_paths` on
``src`` (the exact work the CI ``analyze`` job does), plus the per-file
rate for context. Run directly (``python benchmarks/bench_analyze_wall.py``)
or via pytest.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT))

from tools.analyze import analyze_paths  # noqa: E402
from tools.analyze.core import iter_python_files  # noqa: E402

BUDGET_SECONDS = 2.0
REPEATS = 3


def measure() -> tuple[float, int, int]:
    src = _REPO_ROOT / "src"
    file_count = sum(1 for _ in iter_python_files(src))
    best = float("inf")
    findings = 0
    for _ in range(REPEATS):
        started = perf_counter()
        findings = len(analyze_paths([src]))
        best = min(best, perf_counter() - started)
    return best, file_count, findings


def test_full_tree_lint_under_budget():
    seconds, file_count, _ = measure()
    assert seconds < BUDGET_SECONDS, (
        f"linting {file_count} files took {seconds:.2f}s — over the "
        f"{BUDGET_SECONDS:.0f}s CI budget"
    )


if __name__ == "__main__":
    seconds, file_count, findings = measure()
    print(
        f"analyze src: {file_count} files, {findings} finding(s), "
        f"best of {REPEATS}: {seconds * 1000:.0f} ms "
        f"({seconds * 1000 / file_count:.2f} ms/file)"
    )
