"""E21 — observability must be (near) free when nobody is looking.

Claim under test: the `repro.obs` instrumentation added to the vectorised
executor (a profiler guard per plan node, counter calls per operator)
costs under 5% on the executor's hot path while collectors are disabled.

Measured shape: best-of-N wall time of a scan → join → aggregate query

* with the dispatch guard removed entirely (the pre-instrumentation
  executor, reconstructed by rebinding ``_execute_node`` to the raw
  ``_dispatch_node``),
* through the instrumented path with collectors disabled (what every
  un-observed process pays),
* with metrics + tracing enabled, and with the per-operator profiler —
  reported for context; these are allowed to cost real money.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import obs
from repro.core.database import Database
from repro.sql import executor

ROWS = 3000
REPEATS = 30

QUERY = (
    "SELECT c.country, COUNT(*) AS orders, SUM(o.amount) AS total "
    "FROM orders AS o JOIN customers AS c ON o.customer_id = c.customer_id "
    "GROUP BY c.country ORDER BY total DESC"
)


def make_db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE customers (customer_id INT PRIMARY KEY, country VARCHAR)"
    )
    database.execute(
        "CREATE TABLE orders (order_id INT PRIMARY KEY, customer_id INT, amount DOUBLE)"
    )
    customers = ", ".join(f"({i}, 'C{i % 11}')" for i in range(200))
    database.execute(f"INSERT INTO customers VALUES {customers}")
    orders = ", ".join(
        f"({i}, {i % 200}, {float(i % 997)})" for i in range(ROWS)
    )
    database.execute(f"INSERT INTO orders VALUES {orders}")
    database.merge("customers")
    database.merge("orders")
    return database


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


@pytest.mark.benchmark(group="E21-obs-overhead")
def test_disabled_instrumentation_costs_under_five_percent(benchmark, reporter):
    database = make_db()
    obs.reset()  # collectors off — the default process state

    run_query = lambda: database.query(QUERY)  # noqa: E731
    run_query()  # warm up (plan caches, delta structures)

    # the pre-instrumentation executor: no guard, no counter calls
    instrumented = executor._execute_node
    executor._execute_node = executor._dispatch_node
    try:
        bare = best_of(run_query)
    finally:
        executor._execute_node = instrumented

    disabled = best_of(run_query)
    benchmark.pedantic(run_query, rounds=5, iterations=1)

    registry, _ = obs.enable()
    enabled = best_of(run_query)
    profiled = best_of(lambda: database.profile(QUERY))
    collected = len(registry)
    obs.reset()

    overhead = disabled / bare - 1.0
    reporter(
        "E21",
        bare_ms=round(bare * 1000, 3),
        disabled_ms=round(disabled * 1000, 3),
        disabled_overhead=f"{overhead * 100:+.2f}%",
        enabled_ms=round(enabled * 1000, 3),
        profiled_ms=round(profiled * 1000, 3),
        metrics_while_enabled=collected,
    )

    # the acceptance bound, with a 100µs absolute floor against timer noise
    assert disabled <= bare * 1.05 + 1e-4, (
        f"disabled-instrumentation overhead {overhead:.2%} exceeds 5% "
        f"(bare={bare * 1000:.3f}ms disabled={disabled * 1000:.3f}ms)"
    )
    assert collected > 0  # enabling actually collected executor metrics
