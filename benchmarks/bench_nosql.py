"""E15 — §II.H: flexible tables, sparse-column compression, and the
materialised document join index.

Paper claims: flexible tables create columns on insert with no practical
limit, "internal compression methods can handle also very sparse columns
to achieve compression rates"; whole business objects stored as documents
act as "a kind of materialized join index" for object retrieval.

Measured shape: a 300-column sparse flexible table compresses to a small
multiple of its dense-equivalent information content after merge; document
retrieval by key beats the 3-way relational join per object.
"""

from __future__ import annotations

import random

import pytest

from repro.columnstore.document import DocumentJoinIndex
from repro.core.database import Database

ROWS = 3_000
SPARSE_COLUMNS = 300


@pytest.mark.benchmark(group="E15-flexible")
def test_sparse_flexible_table_compression(benchmark, reporter):
    def build():
        database = Database()
        database.execute("CREATE FLEXIBLE TABLE wide (id INT)")
        table = database.table("wide")
        rng = random.Random(15)
        txn = database.begin()
        for row_id in range(ROWS):
            row = {"id": row_id}
            # every row fills only ~3 of 300 attribute columns
            for _attr in range(3):
                row[f"attr_{rng.randrange(SPARSE_COLUMNS)}"] = f"v{rng.randrange(10)}"
            table.ensure_columns(row, __import__("repro.core.types", fromlist=["VARCHAR"]).VARCHAR)
            table.insert(row, txn)
        database.commit(txn)
        database.merge("wide")
        return database

    database = benchmark.pedantic(build, rounds=1, iterations=1)
    table = database.table("wide")
    footprint = table.memory_bytes()
    dense_equivalent = ROWS * (len(table.schema.columns)) * 8
    reporter(
        "E15",
        columns=len(table.schema.columns),
        rows=ROWS,
        memory_bytes=footprint,
        dense_equivalent_bytes=dense_equivalent,
        ratio=round(dense_equivalent / footprint, 2),
    )
    assert footprint < dense_equivalent


OBJECTS = 2_000


def relational_object_store():
    database = Database()
    database.execute("CREATE TABLE headers (hid INT PRIMARY KEY, customer VARCHAR)")
    database.execute("CREATE TABLE items (iid INT PRIMARY KEY, hid INT, sku VARCHAR)")
    database.execute("CREATE TABLE subitems (sid INT PRIMARY KEY, iid INT, serial VARCHAR)")
    txn = database.begin()
    for hid in range(OBJECTS):
        database.table("headers").insert([hid, f"c{hid % 50}"], txn)
        for j in range(3):
            iid = hid * 3 + j
            database.table("items").insert([iid, hid, f"sku{j}"], txn)
            database.table("subitems").insert([iid, iid, f"ser{iid}"], txn)
    database.commit(txn)
    database.merge_all()
    return database


@pytest.mark.benchmark(group="E15-document")
def test_object_retrieval_via_join_index(benchmark, reporter):
    database = relational_object_store()
    index = DocumentJoinIndex("hid", subitem_parent_key="iid")
    snapshot = database.txn_manager.last_committed_cid
    headers = [dict(zip(["hid", "customer"], row)) for row in database.table("headers").scan_rows(snapshot)]
    items = [dict(zip(["iid", "hid", "sku"], row)) for row in database.table("items").scan_rows(snapshot)]
    subitems = [dict(zip(["sid", "iid", "serial"], row)) for row in database.table("subitems").scan_rows(snapshot)]
    index.build(headers, items, subitems, item_key="iid")

    def run():
        documents = [index.get(hid) for hid in range(0, OBJECTS, 97)]
        return documents

    documents = benchmark(run)
    reporter("E15", variant="document-join-index", objects_fetched=len(documents))
    assert all(len(doc["items"]) == 3 for doc in documents)


@pytest.mark.benchmark(group="E15-document")
def test_object_retrieval_via_three_way_join(benchmark, reporter):
    database = relational_object_store()

    def run():
        documents = []
        for hid in range(0, OBJECTS, 97):
            rows = database.query(
                f"SELECT h.customer, i.sku, s.serial FROM headers h "
                f"JOIN items i ON i.hid = h.hid JOIN subitems s ON s.iid = i.iid "
                f"WHERE h.hid = {hid}"
            ).rows
            documents.append(rows)
        return documents

    documents = benchmark(run)
    reporter("E15", variant="three-way-join", objects_fetched=len(documents))
    assert all(len(doc) == 3 for doc in documents)
