"""E28 — systematic interleaving exploration stays affordable (`repro.analysis.schedcheck`).

Claim under test: the bounded model checker explores the PartitionMover
flip/drain harness **exhaustively** at preemption bound 2 in well under
60 s of wall time, because sleep-set pruning and the preemption budget
cut the schedule tree by an order of magnitude — which is what makes a
per-PR CI `schedcheck` job viable at all. The other three protocol
harnesses are measured alongside; all must come back clean.

Measured shape: for each registered protocol harness, one
:func:`repro.analysis.schedcheck.explore` call at bound 2 under the full
oracle stack (lockcheck + strict racecheck + deadlock/livelock). Per
harness we record schedules executed, total runs (replay prefixes
included), branches pruned by sleep sets vs. skipped by the preemption
budget, the pruning ratio, and wall seconds. Run directly
(``python benchmarks/bench_schedcheck.py``, writes ``BENCH_E28.json``)
or via pytest.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from repro.analysis.schedcheck import explore  # noqa: E402
from repro.analysis.schedcheck.harnesses import HARNESSES  # noqa: E402

BOUND = 2
#: the acceptance budget for the flagship mover harness (ISSUE: < 60 s)
MOVER_BUDGET_SECONDS = 60.0


def measure() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for name in sorted(HARNESSES):
        fn = HARNESSES[name][0]
        report = explore(fn, name=name, max_preemptions=BOUND)
        rows.append(
            {
                "harness": name,
                "bound": BOUND,
                "ok": report.ok,
                "complete": report.complete,
                "schedules": report.schedules,
                "runs": report.runs,
                "sleep_pruned_runs": report.sleep_pruned_runs,
                "pruned_branches": report.pruned_branches,
                "budget_skipped": report.budget_skipped,
                "pruning_ratio": round(report.pruning_ratio, 3),
                "wall_seconds": round(report.wall_seconds, 3),
            }
        )
    return rows


def test_mover_harness_exhaustive_at_bound_2_under_budget():
    report = explore(
        HARNESSES["mover_flip_drain"][0],
        name="mover_flip_drain",
        max_preemptions=BOUND,
    )
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.complete, "search was capped — not exhaustive"
    assert report.wall_seconds < MOVER_BUDGET_SECONDS, (
        f"mover flip/drain at bound {BOUND} took {report.wall_seconds:.1f}s "
        f"— over the {MOVER_BUDGET_SECONDS:.0f}s budget"
    )
    assert report.pruning_ratio > 0.0, "pruning never fired"


def test_all_harnesses_clean_at_bound_2():
    rows = measure()
    bad = [row for row in rows if not (row["ok"] and row["complete"])]
    assert not bad, bad


def main() -> int:
    import reporting

    rows = measure()
    for row in rows:
        reporting.report("E28", **row)
    for path in reporting.flush():
        print(f"wrote {path}")
    failed = [row["harness"] for row in rows if not row["ok"]]
    slow = [
        row["harness"]
        for row in rows
        if row["harness"] == "mover_flip_drain"
        and float(row["wall_seconds"]) >= MOVER_BUDGET_SECONDS  # type: ignore[arg-type]
    ]
    if failed:
        print(f"failing harnesses: {failed}")
    if slow:
        print(f"over wall budget: {slow}")
    return 1 if failed or slow else 0


if __name__ == "__main__":
    sys.exit(main())
