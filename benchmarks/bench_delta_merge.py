"""E3 — §III: application-aware key order makes the delta merge cheap.

Paper claim: "By knowing the mechanism of how the keys are generated, the
dictionary maintenance and merging can be done much simpler and more
efficiently. ... a stable sort order without resorting can be achieved,
improving the merge process."

Measured shape: with monotone application-generated keys the merge rewrites
zero value-ids (no dictionary resort); with random keys every merge remaps
the full main fragment, and merge time grows accordingly.
"""

from __future__ import annotations

import random

import pytest

from repro.columnstore.merge import merge_table
from repro.columnstore.table import ColumnTable
from repro.core import types
from repro.core.schema import schema
from repro.transaction.manager import TransactionManager

BASE_ROWS = 30_000
DELTA_ROWS = 3_000


def build(keys):
    manager = TransactionManager()
    table = ColumnTable("t", schema(("key", types.VARCHAR), ("v", types.INTEGER)))
    txn = manager.begin()
    table.insert_many(([key, i] for i, key in enumerate(keys[:BASE_ROWS])), txn)
    manager.commit(txn)
    merge_table(table)
    txn = manager.begin()
    table.insert_many(
        ([key, i] for i, key in enumerate(keys[BASE_ROWS:])), txn
    )
    manager.commit(txn)
    return table


def monotone_keys():
    return [f"ctx-{i:08d}" for i in range(BASE_ROWS + DELTA_ROWS)]


def random_keys():
    rng = random.Random(3)
    keys = [f"k{rng.getrandbits(48):012x}" for _ in range(BASE_ROWS + DELTA_ROWS)]
    return keys


@pytest.mark.benchmark(group="E3-delta-merge")
@pytest.mark.parametrize("order", ["monotone", "random"])
def test_merge_cost_by_key_order(benchmark, reporter, order):
    keys = monotone_keys() if order == "monotone" else random_keys()

    def setup():
        return (build(keys),), {}

    def run(table):
        return merge_table(table)

    stats = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    reporter(
        "E3",
        key_order=order,
        rows_merged=stats.rows_merged,
        columns_remapped=stats.columns_remapped,
        ids_rewritten=stats.ids_rewritten,
    )
    if order == "monotone":
        assert stats.ids_rewritten == 0
    else:
        assert stats.ids_rewritten >= BASE_ROWS  # the key column remapped
