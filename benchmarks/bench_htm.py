"""E20 (ablation) — §IV.A, ref [9]: lock elision via (simulated) HTM.

Paper claim: hardware transactional memory lets transactional systems get
"rid of explicit locks", with significant benefit — the known caveat being
that heavy conflicts waste speculative work.

Measured shape: HTM-style speculation beats the global lock by ~concurrency
at low contention; the advantage shrinks as the hot-granule fraction grows
and inverts near full contention (the classic HTM crossover).
"""

from __future__ import annotations

import pytest

from repro.transaction.htm import GlobalLockExecution, HtmExecution, make_batches

OPERATIONS = 20_000
CONCURRENCY = 8


@pytest.mark.benchmark(group="E20-htm")
@pytest.mark.parametrize("hot_fraction", [0.0, 0.2, 0.5, 0.9])
def test_htm_vs_lock_by_contention(benchmark, reporter, hot_fraction):
    batches = make_batches(
        operations=OPERATIONS,
        concurrency=CONCURRENCY,
        granules=10_000,
        hot_fraction=hot_fraction,
    )
    htm = HtmExecution()
    lock = GlobalLockExecution()

    stats = benchmark(lambda: htm.run(batches))
    lock_stats = lock.run(batches)
    reporter(
        "E20",
        hot_fraction=hot_fraction,
        htm_work=round(stats.work_units, 0),
        lock_work=round(lock_stats.work_units, 0),
        speedup=round(lock_stats.work_units / stats.work_units, 2),
        aborts=stats.aborts,
        lock_fallbacks=stats.lock_fallbacks,
    )
    if hot_fraction == 0.0:
        assert stats.work_units * 2 < lock_stats.work_units
