"""E6 — §IV.A [11][12]: compiled queries beat interpreted execution.

Paper claim: "during runtime the engine compiles the SQL statement into C
code ... there are significant performance advantages with this approach"
(Dees & Sanders; Neumann compiles to LLVM).

Measured shape: the generated-code engine beats the tuple-at-a-time
interpreter by a large factor on scan-heavy aggregation queries (the gap
the paper's compilation removes is per-tuple interpretation overhead);
the vectorised engine is reported for context. All three return identical
results (asserted by tests/sql/test_engines_agree.py).
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.sql.compiler import compile_plan
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.sql.volcano import execute_volcano

ROWS = 40_000
SQL = (
    "SELECT region, COUNT(*) AS n, SUM(qty * price) AS revenue FROM lineitem "
    "WHERE price > 10 AND qty < 9 GROUP BY region"
)


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE lineitem (id INT, qty INT, price DOUBLE, region VARCHAR)"
    )
    rng = random.Random(11)
    table = database.table("lineitem")
    txn = database.begin()
    regions = ["EU", "US", "APJ", "MEA"]
    table.insert_many(
        (
            [i, rng.randint(1, 10), rng.random() * 100, regions[i % 4]]
            for i in range(ROWS)
        ),
        txn,
    )
    database.commit(txn)
    database.merge("lineitem")
    return database


@pytest.mark.benchmark(group="E6-exec-engines")
def test_interpreted_tuple_at_a_time(benchmark, reporter, db):
    plan = plan_select(parse(SQL), db.catalog)

    rows = benchmark(lambda: execute_volcano(plan, db._context(None, None)))
    reporter("E6", engine="volcano-interpreted", rows=ROWS, groups=len(rows))


@pytest.mark.benchmark(group="E6-exec-engines")
def test_compiled_query(benchmark, reporter, db):
    plan = plan_select(parse(SQL), db.catalog)
    compiled = compile_plan(plan, db._context(None, None))  # compile once

    rows = benchmark(lambda: compiled.run(db._context(None, None)))
    reporter("E6", engine="compiled", rows=ROWS, groups=len(rows))


@pytest.mark.benchmark(group="E6-exec-engines")
def test_compiled_including_compilation(benchmark, reporter, db):
    plan = plan_select(parse(SQL), db.catalog)

    def run():
        compiled = compile_plan(plan, db._context(None, None))
        return compiled.run(db._context(None, None))

    rows = benchmark(run)
    reporter("E6", engine="compiled+codegen", groups=len(rows))


@pytest.mark.benchmark(group="E6-exec-engines")
def test_vectorised_reference(benchmark, reporter, db):
    rows = benchmark(lambda: db.query(SQL).rows)
    reporter("E6", engine="vectorised", groups=len(rows))
