"""E2 — §II.A/[8]: dictionary-encoded column scans vs a row store.

Paper claim: loading data into the compressed in-memory column store makes
analytic access dramatically faster (and smaller) than row-at-a-time
processing; write-optimised row storage only wins on point access.

Measured shape: column-store aggregation beats the row store by a large
factor and the compressed footprint is a fraction of the row store's.
"""

from __future__ import annotations

import pytest

from repro.columnstore.rowstore import RowTable
from repro.core import types
from repro.core.database import Database
from repro.core.schema import schema

ROWS = 100_000


def fill_column_store() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (id INT, region VARCHAR, amount DOUBLE)")
    table = database.table("t")
    txn = database.begin()
    regions = [f"r{i}" for i in range(8)]
    table.insert_many(
        ([i, regions[i % 8], float(i % 1000)] for i in range(ROWS)), txn
    )
    database.commit(txn)
    database.merge("t")
    return database


def fill_row_store():
    from repro.transaction.manager import TransactionManager

    manager = TransactionManager()
    table = RowTable("t", schema(("id", types.INTEGER), ("region", types.VARCHAR), ("amount", types.DOUBLE)))
    txn = manager.begin()
    regions = [f"r{i}" for i in range(8)]
    table.insert_many(([i, regions[i % 8], float(i % 1000)] for i in range(ROWS)), txn)
    manager.commit(txn)
    return manager, table


@pytest.mark.benchmark(group="E2-column-vs-row")
def test_column_store_kernel_scan(benchmark, reporter):
    """The engine's vectorised scan kernel: decode + mask + sum."""
    import numpy as np

    database = fill_column_store()
    partition = database.table("t").partitions[0]

    def run():
        region = partition.column_array("region")
        amount = partition.column_array("amount")
        return float(amount[region == "r3"].sum())

    result = benchmark(run)
    footprint = database.table("t").memory_bytes()
    reporter("E2", store="column-kernel", rows=ROWS, memory_bytes=footprint)
    assert result == sum(float(i % 1000) for i in range(ROWS) if i % 8 == 3)


@pytest.mark.benchmark(group="E2-column-vs-row")
def test_column_store_sql_aggregate(benchmark, reporter):
    """Same aggregate through the full SQL stack (parse/plan/execute)."""
    database = fill_column_store()

    result = benchmark(
        lambda: database.query("SELECT SUM(amount) FROM t WHERE region = 'r3'").scalar()
    )
    reporter("E2", store="column-sql", rows=ROWS)
    assert result == sum(float(i % 1000) for i in range(ROWS) if i % 8 == 3)


@pytest.mark.benchmark(group="E2-column-vs-row")
def test_row_store_aggregate(benchmark, reporter):
    manager, table = fill_row_store()

    def run():
        total = 0.0
        for row in table.scan(manager.last_committed_cid):
            if row[1] == "r3":
                total += row[2]
        return total

    result = benchmark(run)
    reporter("E2", store="row", rows=ROWS, memory_bytes=table.memory_bytes())
    assert result == sum(float(i % 1000) for i in range(ROWS) if i % 8 == 3)


def test_compression_footprint_ratio(benchmark, reporter):
    database = benchmark.pedantic(fill_column_store, rounds=1, iterations=1)
    _manager, row_table = fill_row_store()
    column_bytes = database.table("t").memory_bytes()
    row_bytes = row_table.memory_bytes()
    reporter(
        "E2",
        metric="footprint",
        column_bytes=column_bytes,
        row_bytes=row_bytes,
        ratio=round(row_bytes / column_bytes, 2),
    )
    assert column_bytes < row_bytes
