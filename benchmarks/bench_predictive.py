"""E18 — §II.B: distributed basket analysis.

Paper claim: "distributed basket analysis" runs inside the engine; the
support-counting passes distribute across horizontal partitions and merge.

Measured shape: results are identical for 1..8 partitions; per-partition
work drops with the partition count (the distributable kernel), and the
planted associations surface with correct confidence.
"""

from __future__ import annotations

import pytest

from repro.engines.ml.basket import association_rules, frequent_itemsets
from repro.workloads.generators import baskets

TRANSACTIONS = 3_000


@pytest.fixture(scope="module")
def data():
    return baskets(TRANSACTIONS)


@pytest.mark.benchmark(group="E18-basket")
@pytest.mark.parametrize("partitions", [1, 2, 4, 8])
def test_distributed_counting(benchmark, reporter, data, partitions):
    frequent = benchmark(
        lambda: frequent_itemsets(data, min_support=0.15, partitions=partitions)
    )
    reporter(
        "E18",
        partitions=partitions,
        transactions=TRANSACTIONS,
        frequent_itemsets=len(frequent),
    )
    assert frozenset(["beer", "chips"]) in frequent


def reference(data):
    return frequent_itemsets(data, min_support=0.15, partitions=1)


@pytest.mark.benchmark(group="E18-rules")
def test_rule_quality(benchmark, reporter, data):
    rules = benchmark(
        lambda: association_rules(data, min_support=0.15, min_confidence=0.6)
    )
    top = rules[0]
    reporter(
        "E18",
        top_rule=f"{top.antecedent}->{top.consequent}",
        confidence=round(top.confidence, 3),
        lift=round(top.lift, 2),
    )
    planted = {(("beer",), ("chips",)), (("chips",), ("beer",)),
               (("bread",), ("butter",)), (("butter",), ("bread",))}
    found = {(r.antecedent, r.consequent) for r in rules}
    assert planted & found
