"""E9 — §IV.C/Fig. 4: HANA ↔ Hadoop integration paths.

Paper claims: (1) federated pushdown runs the query "on Hadoop" and ships
only results; (2) the SOE installed "on each Hadoop node" processes HDFS
data with block locality; (3) RDD wrapping pushes relational operators
into the SOE instead of collecting rows.

Measured shape: pushdown ships orders of magnitude fewer rows than the
ship-raw-file baseline; co-located loading moves zero bytes over the
simulated network; RDD pushdown transfers only the aggregate.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.federation.adapters import HiveAdapter
from repro.federation.sda import SmartDataAccess
from repro.hadoop.connectors import (
    deploy_soe_on_datanodes,
    load_hdfs_csv_into_database,
    load_hdfs_file_colocated,
)
from repro.hadoop.hdfs import HdfsCluster
from repro.hadoop.hive import HiveServer
from repro.hadoop.rdd import soe_table_rdd

SENSOR_ROWS = 20_000


@pytest.fixture(scope="module")
def hadoop():
    hdfs = HdfsCluster(datanode_ids=4, block_size_lines=2_000, replication=2)
    hdfs.write_file(
        "/iot/sensors.csv",
        (f"{i % 100},{i},{(i % 37) * 1.5}" for i in range(SENSOR_ROWS)),
    )
    hive = HiveServer(hdfs)
    hive.create_external_table(
        "sensors", "/iot/sensors.csv",
        [("sensor_id", "INT"), ("ts", "BIGINT"), ("value", "DOUBLE")],
    )
    return hdfs, hive


@pytest.mark.benchmark(group="E9-federation")
def test_pushdown_aggregation_to_hive(benchmark, reporter, hadoop):
    _hdfs, hive = hadoop
    database = Database()
    access = SmartDataAccess(database)
    access.register_source(HiveAdapter("hadoop", hive))

    rows = benchmark(
        lambda: access.pushdown_aggregate(
            "hadoop", "sensors", ["sensor_id"], [("count", None), ("sum", "value")]
        )
    )
    reporter("E9", path="federated-pushdown", rows_shipped=len(rows))
    assert len(rows) == 100


@pytest.mark.benchmark(group="E9-federation")
def test_ship_raw_file_then_aggregate(benchmark, reporter, hadoop):
    hdfs, _hive = hadoop

    def run():
        database = Database()
        database.execute("CREATE TABLE sensors (sensor_id INT, ts BIGINT, value DOUBLE)")
        shipped = load_hdfs_csv_into_database(database, hdfs, "/iot/sensors.csv", "sensors")
        database.merge("sensors")
        rows = database.query(
            "SELECT sensor_id, COUNT(*), SUM(value) FROM sensors GROUP BY sensor_id"
        ).rows
        return shipped, rows

    shipped, rows = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter("E9", path="ship-raw-file", rows_shipped=shipped)
    assert shipped == SENSOR_ROWS


@pytest.mark.benchmark(group="E9-locality")
def test_soe_on_datanodes_locality(benchmark, reporter, hadoop):
    hdfs, _hive = hadoop

    def run():
        soe = deploy_soe_on_datanodes(hdfs)
        soe.create_table("sensors", ["sensor_id", "ts", "value"], ["sensor_id"])
        stats = load_hdfs_file_colocated(
            soe, hdfs, "/iot/sensors.csv", "sensors", types=[int, int, float]
        )
        return soe, stats

    soe, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter(
        "E9",
        path="soe-on-datanode",
        local_blocks=stats["local_blocks"],
        remote_blocks=stats["remote_blocks"],
        load_bytes_over_network=soe.cluster.stats.bytes_total,
    )
    assert stats["remote_blocks"] == 0
    assert soe.cluster.stats.bytes_total == 0


@pytest.mark.benchmark(group="E9-rdd")
def test_rdd_pushdown_vs_collect(benchmark, reporter, hadoop):
    hdfs, _hive = hadoop
    soe = deploy_soe_on_datanodes(hdfs)
    soe.create_table("sensors", ["sensor_id", "ts", "value"], ["sensor_id"])
    load_hdfs_file_colocated(soe, hdfs, "/iot/sensors.csv", "sensors", types=[int, int, float])

    def pushdown():
        return soe_table_rdd(soe, "sensors").aggregate(
            ["sensor_id"], [("sum", "value")]
        ).collect()

    rows = benchmark(pushdown)
    reporter("E9", path="rdd-pushdown", rows_to_spark=len(rows))
    assert len(rows) == 100


@pytest.mark.benchmark(group="E9-rdd")
def test_rdd_collect_then_process(benchmark, reporter, hadoop):
    hdfs, _hive = hadoop
    soe = deploy_soe_on_datanodes(hdfs)
    soe.create_table("sensors", ["sensor_id", "ts", "value"], ["sensor_id"])
    load_hdfs_file_colocated(soe, hdfs, "/iot/sensors.csv", "sensors", types=[int, int, float])

    def collect():
        rows = soe_table_rdd(soe, "sensors").rows().collect()
        totals: dict[int, float] = {}
        for sensor_id, _ts, value in rows:
            totals[sensor_id] = totals.get(sensor_id, 0.0) + value
        return rows, totals

    rows, totals = benchmark(collect)
    reporter("E9", path="rdd-collect", rows_to_spark=len(rows))
    assert len(totals) == 100
