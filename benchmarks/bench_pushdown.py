"""E4 — §III: pushing business logic into the database beats app-layer
processing.

Paper claims: (a) app-level currency conversion forces the currency column
into every GROUP BY and multiplies transferred rows; (b) without hierarchy
support, counting transitive children ships the whole subtree to the app,
while in-database hierarchy labels answer it with one number.

Measured shape: in-DB variants transfer orders of magnitude fewer rows and
run faster; the gap grows with data size.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.engines.graph.hierarchy import (
    HierarchyView,
    descendant_count_via_self_joins,
    register_hierarchy_functions,
)

LINES = 30_000
DAYS = 250
BASE_RATES = {"USD": 0.9, "GBP": 1.2, "JPY": 0.0062, "EUR": 1.0}


def day_rate(currency: str, day: int) -> float:
    """Daily FX rates: the business reality that forces the application
    baseline to group by (region, currency, day) — the paper's "this can
    multiply the data to be transferred between the layers"."""
    return BASE_RATES[currency] * (1.0 + 0.0001 * (day % 97))


def sales_db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE lines (id INT, region VARCHAR, amount DOUBLE, "
        "currency VARCHAR, day INT)"
    )
    table = database.table("lines")
    txn = database.begin()
    currencies = ["EUR", "USD", "GBP", "JPY"]
    table.insert_many(
        (
            [i, f"r{i % 6}", float(i % 500), currencies[(i // 6) % 4], i % DAYS]
            for i in range(LINES)
        ),
        txn,
    )
    database.commit(txn)
    database.merge("lines")
    database.functions.register(
        "DAY_RATE", lambda currency, day: day_rate(currency, int(day))
    )
    return database


@pytest.mark.benchmark(group="E4-currency")
def test_currency_conversion_in_database(benchmark, reporter):
    database = sales_db()

    def run():
        return database.query(
            "SELECT region, SUM(amount * DAY_RATE(currency, day)) AS eur "
            "FROM lines GROUP BY region ORDER BY region"
        ).rows

    rows = benchmark(run)
    reporter("E4", variant="in-database", rows_transferred=len(rows))
    assert len(rows) == 6


@pytest.mark.benchmark(group="E4-currency")
def test_currency_conversion_in_application(benchmark, reporter):
    """Baseline: daily rates force the DB to group by (region, currency,
    day); the app converts and re-aggregates — thousands of rows cross the
    boundary instead of six."""
    database = sales_db()

    def run():
        shipped = database.query(
            "SELECT region, currency, day, SUM(amount) AS s FROM lines "
            "GROUP BY region, currency, day"
        ).rows
        totals: dict[str, float] = {}
        for region, currency, day, amount in shipped:
            totals[region] = totals.get(region, 0.0) + amount * day_rate(currency, day)
        return shipped, sorted(totals.items())

    shipped, totals = benchmark(run)
    reporter("E4", variant="application", rows_transferred=len(shipped))
    assert len(shipped) >= 1000  # three orders of magnitude above the in-DB path


@pytest.mark.benchmark(group="E4-hierarchy")
def test_descendant_count_in_database(benchmark, reporter):
    parents = {0: None}
    for node in range(1, 20_000):
        parents[node] = (node - 1) // 4  # 4-ary tree
    view = HierarchyView("org", parents)

    result = benchmark(lambda: view.descendant_count(0))
    reporter("E4", variant="hierarchy-in-db", values_transferred=1)
    assert result == 19_999


@pytest.mark.benchmark(group="E4-hierarchy")
def test_descendant_count_in_application(benchmark, reporter):
    parents = {0: None}
    for node in range(1, 20_000):
        parents[node] = (node - 1) // 4

    result = benchmark(lambda: descendant_count_via_self_joins(parents, 0))
    reporter("E4", variant="hierarchy-app-side", values_transferred=19_999)
    assert result == 19_999
