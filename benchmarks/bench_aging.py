"""E5 — §III/Fig. 1: semantic aging rules prune better than statistics.

Paper claims: application-defined aging rules allow "much better partition
pruning than any approach purely based on access statistics", and the
dependent-rule extension ("an invoice can only be aged, if the
corresponding sales order is also aged") lets joins run on the non-aged
partitions only.

Measured shape: queries contradicting the aging facts scan only hot rows
(rows scanned drops with the aged fraction); the dependent-rule join reads
a fraction of the invoice table.
"""

from __future__ import annotations

import pytest

from repro.aging.pruning import AgingManager
from repro.aging.rules import AgingDependency
from repro.core.database import Database
from repro.sql.executor import execute as run_plan
from repro.sql.parser import parse
from repro.sql.planner import plan_select

ORDERS = 40_000


def build(aged_fraction: float):
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, amount DOUBLE)"
    )
    database.execute(
        "CREATE TABLE invoices (inv INT PRIMARY KEY, order_id INT, paid VARCHAR)"
    )
    closed = int(ORDERS * aged_fraction)
    txn = database.begin()
    database.table("orders").insert_many(
        ([i, "closed" if i < closed else "open", float(i % 100)] for i in range(ORDERS)),
        txn,
    )
    database.table("invoices").insert_many(
        ([i, i, "paid" if i < closed else "due"] for i in range(ORDERS)), txn
    )
    database.commit(txn)
    manager = AgingManager(database)
    manager.define_rule("orders", "status = 'closed'")
    manager.define_rule(
        "invoices", "paid = 'paid'",
        dependencies=[AgingDependency("orders", "order_id", "id")],
    )
    manager.run()
    database.merge_all()
    return database, manager


def scan_metrics(database, sql):
    plan = plan_select(parse(sql), database.catalog)
    context = database._context(None, None)
    run_plan(plan, context)
    return context.metrics


@pytest.mark.benchmark(group="E5-aging")
@pytest.mark.parametrize("aged_fraction", [0.25, 0.5, 0.75])
def test_semantic_pruning_scan_cost(benchmark, reporter, aged_fraction):
    database, _manager = build(aged_fraction)
    sql = "SELECT SUM(amount) FROM orders WHERE status = 'open'"

    benchmark(lambda: database.query(sql).scalar())
    metrics = scan_metrics(database, sql)
    reporter(
        "E5",
        aged_fraction=aged_fraction,
        rows_scanned=int(metrics.get("rows_scanned", 0)),
        total_rows=ORDERS,
        semantic_prunes=int(metrics.get("semantic_prunes", 0)),
    )
    assert metrics["rows_scanned"] == ORDERS * (1 - aged_fraction)


@pytest.mark.benchmark(group="E5-aging-baseline")
@pytest.mark.parametrize("aged_fraction", [0.5])
def test_without_rules_full_scan(benchmark, reporter, aged_fraction):
    """Baseline: same data, no aging rules — every query scans everything."""
    database = Database()
    database.execute("CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, amount DOUBLE)")
    closed = int(ORDERS * aged_fraction)
    txn = database.begin()
    database.table("orders").insert_many(
        ([i, "closed" if i < closed else "open", float(i % 100)] for i in range(ORDERS)),
        txn,
    )
    database.commit(txn)
    database.merge_all()
    sql = "SELECT SUM(amount) FROM orders WHERE status = 'open'"
    benchmark(lambda: database.query(sql).scalar())
    metrics = scan_metrics(database, sql)
    reporter("E5", variant="no-rules", rows_scanned=int(metrics["rows_scanned"]))
    assert metrics["rows_scanned"] == ORDERS


def test_dependent_rule_enables_join_pruning(benchmark, reporter):
    database, manager = build(0.6)
    hot = benchmark(lambda: manager.join_prunable("invoices", parent_hot_only=True))
    everything = manager.join_prunable("invoices", parent_hot_only=False)
    table = database.table("invoices")
    hot_rows = sum(len(table.partitions[o]) for o in hot)
    all_rows = sum(len(table.partitions[o]) for o in everything)
    reporter(
        "E5",
        metric="join-pruning",
        invoice_rows_with_dependency=hot_rows,
        invoice_rows_without=all_rows,
    )
    assert hot_rows < all_rows
