"""E14 — §II.G [6]: in-database linear algebra vs the file round trip.

Paper claims: "no redundant copying from other data sources to external
libraries is needed"; matrices are "manipulated in an iterative process"
where maintaining data files dominates; SLACID keeps updates cheap via the
main/delta split.

Measured shape: N analysis rounds in-engine cost ~N× one SpMV workload,
while the file-repository baseline pays serialise+parse per round; point
updates through the delta are orders of magnitude cheaper than full
rebuilds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.scientific.linalg import FileRepositoryBaseline, power_iteration
from repro.engines.scientific.matrix import ColumnarSparseMatrix

DIM = 1_500
ROUNDS = 4


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(6)
    triples = []
    for row in range(DIM):
        for _edge in range(8):
            col = int(rng.integers(0, DIM))
            triples.append((row, col, float(rng.random())))
        triples.append((row, row, 10.0))  # diagonal dominance
    return ColumnarSparseMatrix.from_coo(DIM, DIM, triples)


@pytest.mark.benchmark(group="E14-roundtrip")
def test_iterative_analysis_in_engine(benchmark, reporter, matrix):
    def run():
        result = None
        for _round in range(ROUNDS):
            result = power_iteration(matrix, iterations=50)
        return result

    eigenvalue, _vector = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter("E14", variant="in-engine", rounds=ROUNDS, eigenvalue=round(eigenvalue, 3))


@pytest.mark.benchmark(group="E14-roundtrip")
def test_iterative_analysis_via_file_repository(benchmark, reporter, matrix, tmp_path):
    baseline = FileRepositoryBaseline(tmp_path)

    eigenvalue, _vector = benchmark.pedantic(
        lambda: baseline.roundtrip_power_iteration(matrix, ROUNDS),
        rounds=3,
        iterations=1,
    )
    reporter(
        "E14",
        variant="file-repository",
        rounds=ROUNDS,
        files_written=baseline.files_written,
        eigenvalue=round(eigenvalue, 3),
    )


@pytest.mark.benchmark(group="E14-updates")
def test_point_updates_via_delta(benchmark, reporter, matrix):
    def run():
        for i in range(200):
            matrix.set(i % DIM, (i * 7) % DIM, float(i))
        return matrix.delta_size

    benchmark(run)
    matrix.merge_delta()
    reporter("E14", variant="delta-updates", updates=200)


@pytest.mark.benchmark(group="E14-updates")
def test_point_updates_via_full_rebuild(benchmark, reporter, matrix):
    """Baseline: a CSR-only engine rebuilds on every update batch."""

    def run():
        rebuilt = ColumnarSparseMatrix.from_coo(DIM, DIM, matrix.triples())
        return rebuilt.nnz

    benchmark.pedantic(run, rounds=3, iterations=1)
    reporter("E14", variant="full-rebuild", updates=200)
