"""Machine-readable benchmark results: ``BENCH_<experiment>.json``.

Every measured series row goes through :func:`report`, which both prints
the human-readable line (as before) and accumulates the row in memory.
:func:`flush` then writes one ``BENCH_<experiment>.json`` per experiment
— the artifact CI uploads — to ``REPRO_BENCH_DIR`` (default: the current
working directory).

Used from both entry points: the pytest path (``benchmarks/conftest.py``
re-exports :func:`report` as the ``reporter`` fixture and flushes at
session end) and the ``python benchmarks/bench_*.py`` script path (the
``__main__`` blocks call :func:`report`/:func:`flush` directly).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

_ROWS: dict[str, list[dict[str, Any]]] = {}


def report(experiment: str, **fields: Any) -> None:
    """Print one measured series row, uniformly formatted, and record it."""
    rendered = "  ".join(f"{key}={value}" for key, value in fields.items())
    print(f"\n[{experiment}] {rendered}")
    _ROWS.setdefault(experiment, []).append(dict(fields))


def output_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def flush() -> list[Path]:
    """Write one ``BENCH_<experiment>.json`` per reported experiment."""
    written: list[Path] = []
    for experiment, rows in sorted(_ROWS.items()):
        path = output_dir() / f"BENCH_{experiment}.json"
        payload = {"experiment": experiment, "rows": rows}
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    _ROWS.clear()
    return written
