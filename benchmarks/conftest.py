"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints the series it measures (the "table rows" of the
corresponding experiment in EXPERIMENTS.md) in addition to the
pytest-benchmark timing statistics, and the same rows are written as
machine-readable ``BENCH_<experiment>.json`` files at session end (see
:mod:`reporting`; ``REPRO_BENCH_DIR`` overrides the output directory).
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

import reporting  # noqa: E402

report = reporting.report


@pytest.fixture
def reporter():
    return report


def pytest_sessionfinish(session, exitstatus):
    for path in reporting.flush():
        print(f"[bench] wrote {path}")
