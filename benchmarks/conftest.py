"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints the series it measures (the "table rows" of the
corresponding experiment in EXPERIMENTS.md) in addition to the
pytest-benchmark timing statistics. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def report(experiment: str, **fields) -> None:
    """Print one measured series row, uniformly formatted."""
    rendered = "  ".join(f"{key}={value}" for key, value in fields.items())
    print(f"\n[{experiment}] {rendered}")


@pytest.fixture
def reporter():
    return report
