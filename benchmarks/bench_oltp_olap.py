"""E1 — §II.A: one column store serves OLTP and OLAP together.

Paper claim: "the main memory column store is also used for heavy
transactional load ... The combination of both workloads in one system
allows to avoid the expensive replication costs between OLTP and OLAP
systems and provides access for all analytic questions in real time."

Measured shape: the single-system mixed workload runs the same statements
as a classical two-system deployment but pays no replication step, and its
analytics are always fresh (staleness 0), while the two-system baseline
either pays per-batch ETL cost or serves stale answers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database

ORDERS = 4000
OPERATIONS = 120


def make_db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer INT, amount DOUBLE, status VARCHAR)"
    )
    rows = ", ".join(f"({i}, {i % 50}, {float(i % 997)}, 'open')" for i in range(ORDERS))
    database.execute(f"INSERT INTO orders VALUES {rows}")
    database.merge("orders")
    return database


def mixed_workload(database: Database, rng: random.Random) -> float:
    total = 0.0
    for step in range(OPERATIONS):
        if step % 4 == 0:  # analytic question, real time
            total = database.query(
                "SELECT SUM(amount) FROM orders WHERE status = 'open'"
            ).scalar()
        else:  # transactional write
            order = rng.randrange(ORDERS)
            database.execute(
                f"UPDATE orders SET amount = amount + 1 WHERE id = {order}"
            )
    return total


@pytest.mark.benchmark(group="E1-oltp-olap")
def test_single_system_mixed_workload(benchmark, reporter):
    def run():
        return mixed_workload(make_db(), random.Random(1))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter("E1", system="single-htap", analytics="always fresh", replication_rows=0)
    assert result > 0


@pytest.mark.benchmark(group="E1-oltp-olap")
def test_two_system_with_replication(benchmark, reporter):
    """Baseline: separate OLTP and OLAP stores; every analytic question
    first replicates the changed rows (classical ETL micro-batch)."""

    def run():
        oltp = make_db()
        olap = Database()
        olap.execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, customer INT, amount DOUBLE, status VARCHAR)"
        )
        # initial full load
        rows = oltp.query("SELECT * FROM orders").rows
        txn = olap.begin()
        olap.table("orders").insert_many(rows, txn)
        olap.commit(txn)

        rng = random.Random(1)
        replicated = 0
        total = 0.0
        dirty: set[int] = set()
        for step in range(OPERATIONS):
            if step % 4 == 0:
                # ETL: ship dirty rows before the query may run
                for order in sorted(dirty):
                    row = oltp.query(f"SELECT * FROM orders WHERE id = {order}").first()
                    olap.execute(f"DELETE FROM orders WHERE id = {order}")
                    olap.execute(
                        f"INSERT INTO orders VALUES ({row[0]}, {row[1]}, {row[2]}, '{row[3]}')"
                    )
                    replicated += 1
                dirty.clear()
                total = olap.query(
                    "SELECT SUM(amount) FROM orders WHERE status = 'open'"
                ).scalar()
            else:
                order = rng.randrange(ORDERS)
                oltp.execute(f"UPDATE orders SET amount = amount + 1 WHERE id = {order}")
                dirty.add(order)
        return total, replicated

    total, replicated = benchmark.pedantic(run, rounds=3, iterations=1)
    reporter("E1", system="two-system+etl", replication_rows=replicated)
    assert replicated > 0
