"""E19 (ablation) — §IV.A, ref [10]: SOFORT-style fast restart.

Paper claim: "Oukid et al. showed how recovery of a database can be
accelerated by a careful design of the underlying data structures and an
optimized redo/undo log design" — one of the hardware trends the SOE
design banks on (NVM keeps the data structures; restart re-attaches
instead of replaying).

Measured shape: recovery from a *physical* savepoint (re-attach fragments)
beats recovery from a *logical* savepoint (re-insert every row) by a
growing factor with data size; both beat full log replay.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database

ROWS = 30_000


def populated(tmp_path) -> Database:
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT, region VARCHAR, v DOUBLE)")
    table = database.table("t")
    txn = database.begin()
    table.insert_many(
        ([i, f"r{i % 8}", float(i % 977)] for i in range(ROWS)), txn
    )
    database.commit(txn)
    database.merge("t")
    return database


@pytest.mark.benchmark(group="E19-recovery")
def test_recovery_from_physical_savepoint(benchmark, reporter, tmp_path):
    database = populated(tmp_path)
    database.physical_savepoint()
    database.persistence.close()

    def recover():
        restarted = Database(data_dir=tmp_path)
        count = restarted.execute("SELECT COUNT(*) FROM t").scalar()
        restarted.persistence.close()
        return count

    count = benchmark.pedantic(recover, rounds=3, iterations=1)
    reporter("E19", mode="physical-reattach", rows=count)
    assert count == ROWS


@pytest.mark.benchmark(group="E19-recovery")
def test_recovery_from_logical_savepoint(benchmark, reporter, tmp_path):
    database = populated(tmp_path)
    database.savepoint()
    database.persistence.close()

    def recover():
        restarted = Database(data_dir=tmp_path)
        count = restarted.execute("SELECT COUNT(*) FROM t").scalar()
        restarted.savepoint()  # keep subsequent rounds comparable
        restarted.persistence.close()
        return count

    count = benchmark.pedantic(recover, rounds=3, iterations=1)
    reporter("E19", mode="logical-reinsert", rows=count)
    assert count == ROWS


@pytest.mark.benchmark(group="E19-recovery")
def test_recovery_from_log_replay_only(benchmark, reporter, tmp_path):
    database = populated(tmp_path)  # no savepoint: everything in the log
    database.persistence.close()

    def recover():
        restarted = Database(data_dir=tmp_path)
        count = restarted.execute("SELECT COUNT(*) FROM t").scalar()
        restarted.persistence.close()
        return count

    count = benchmark.pedantic(recover, rounds=1, iterations=1)
    reporter("E19", mode="log-replay", rows=count)
    assert count == ROWS
