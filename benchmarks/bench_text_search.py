"""E10 — §II.C: integrated text search.

Paper claims: text processing is "deeply integrated into the HANA engine"
so text predicates combine with relational predicates in one query, with
automatic index maintenance; a dedicated two-system round trip (or a full
scan per query) is avoided.

Measured shape: inverted-index CONTAINS beats fallback full-scan CONTAINS
by a growing factor with corpus size; BM25 ranking over thousands of
documents stays in the milliseconds.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.engines.text.index import create_text_index
from repro.workloads.generators import text_corpus


def corpus_db(documents: int, indexed: bool) -> Database:
    database = Database()
    database.execute("CREATE TABLE docs (id INT, region VARCHAR, body VARCHAR)")
    table = database.table("docs")
    txn = database.begin()
    table.insert_many(
        ([doc_id, f"r{doc_id % 4}", text] for doc_id, text, _label in text_corpus(documents)),
        txn,
    )
    database.commit(txn)
    database.merge("docs")
    if indexed:
        create_text_index(database, "docs", "body")
    return database


SQL = (
    "SELECT region, COUNT(*) AS n FROM docs "
    "WHERE CONTAINS(body, 'quality') AND region = 'r1' GROUP BY region"
)


@pytest.mark.benchmark(group="E10-text")
@pytest.mark.parametrize("documents", [1_000, 5_000])
def test_contains_with_inverted_index(benchmark, reporter, documents):
    database = corpus_db(documents, indexed=True)
    rows = benchmark(lambda: database.query(SQL).rows)
    reporter("E10", variant="inverted-index", documents=documents, hits=rows[0][1] if rows else 0)


@pytest.mark.benchmark(group="E10-text")
@pytest.mark.parametrize("documents", [1_000, 5_000])
def test_contains_full_scan_fallback(benchmark, reporter, documents):
    database = corpus_db(documents, indexed=False)
    rows = benchmark(lambda: database.query(SQL).rows)
    reporter("E10", variant="full-scan", documents=documents, hits=rows[0][1] if rows else 0)


@pytest.mark.benchmark(group="E10-ranking")
def test_bm25_ranking(benchmark, reporter):
    database = corpus_db(5_000, indexed=True)
    index = database.text_indexes[("docs", "body")]
    ranked = benchmark(lambda: index.score("excellent quality sensor"))
    reporter("E10", variant="bm25", documents=5_000, ranked=len(ranked))
    assert ranked
