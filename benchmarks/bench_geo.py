"""E13 — §II.F: geo predicates with a spatial index vs naive scans.

Paper claims: geospatial types live "deep in the engine" with operators
like WithinDistance/Contains usable inside relational queries ("get all
customers within a distance of 10 kilometer having payments due").

Measured shape: the grid index answers radius/containment queries by
visiting only overlapping cells — the naive all-points scan grows linearly
while the indexed query stays roughly flat as selectivity shrinks.
"""

from __future__ import annotations

import random

import pytest

from repro.engines.geo.geometry import Point, Polygon
from repro.engines.geo.index import GridIndex
from repro.engines.geo.operations import contains, euclidean

POINTS = 50_000


@pytest.fixture(scope="module")
def cloud():
    rng = random.Random(13)
    return [(i, Point(rng.uniform(0, 100), rng.uniform(0, 100))) for i in range(POINTS)]


@pytest.fixture(scope="module")
def index(cloud):
    grid = GridIndex(cell_size=2.0)
    grid.bulk_load(cloud)
    return grid


@pytest.mark.benchmark(group="E13-radius")
@pytest.mark.parametrize("radius", [1.0, 5.0, 20.0])
def test_within_distance_grid_index(benchmark, reporter, index, radius):
    center = Point(50, 50)
    hits = benchmark(lambda: index.within_radius(center, radius))
    reporter("E13", variant="grid-index", radius=radius, hits=len(hits))


@pytest.mark.benchmark(group="E13-radius")
@pytest.mark.parametrize("radius", [1.0, 5.0, 20.0])
def test_within_distance_naive_scan(benchmark, reporter, cloud, radius):
    center = Point(50, 50)

    def run():
        return [
            (key, point) for key, point in cloud if euclidean(center, point) <= radius
        ]

    hits = benchmark(run)
    reporter("E13", variant="naive-scan", radius=radius, hits=len(hits))


@pytest.mark.benchmark(group="E13-polygon")
def test_polygon_containment_indexed(benchmark, reporter, index):
    polygon = Polygon((Point(40, 40), Point(60, 40), Point(60, 60), Point(40, 60)))
    hits = benchmark(lambda: index.in_polygon(polygon))
    reporter("E13", variant="grid-index-polygon", hits=len(hits))


@pytest.mark.benchmark(group="E13-polygon")
def test_polygon_containment_naive(benchmark, reporter, cloud):
    polygon = Polygon((Point(40, 40), Point(60, 40), Point(60, 60), Point(40, 60)))

    def run():
        return [(key, point) for key, point in cloud if contains(polygon, point)]

    hits = benchmark(run)
    reporter("E13", variant="naive-polygon", hits=len(hits))
