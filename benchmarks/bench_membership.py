"""E29 — zombie-write rejection under rolling partitions (`repro.soe.membership`).

Claim under test: with epoch-fenced ownership leases enforced on every
write path, a landscape under a seeded rolling-partition schedule loses
**zero** acknowledged writes — an isolated owner cannot commit, so it
never acknowledges, and once its lease has been failed over its stale
fence token is rejected (never merged) after the heal. With fencing
disabled, the same schedule demonstrably split-brains: the isolated
owner keeps acknowledging writes into its local copy, and those rows
are absent from the committed history — acknowledged-then-lost.

Measured shape: `TICKS` membership ticks against one
`FaultPlan.partition_schedule` (identical for both arms). Each tick
runs one front-door insert (coordinator-routed, live lease view) plus
one direct client write at whatever node the *client* still believes
owns the row's partition — the zombie path once that node has been
partitioned away and failed over. `heal_after` is chosen longer than
both the lease TTL and the detector's dead threshold, so every
isolation walks the full ladder: silence → suspect → dead → lease
expiry → fail-over to the surviving replica → heal → stale-token
rejection. Ground truth for loss is the shared log: an acknowledged
key missing from the committed history was lost the moment the client
was told "ok". Both arms are pure functions of the seed — the driver
replays each arm and asserts bit-identical stats. Run directly
(``python benchmarks/bench_membership.py``) or via pytest.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from repro.chaos import ChaosController, FaultPlan  # noqa: E402
from repro.errors import FencedError, NetworkPartitionedError, SoeError  # noqa: E402
from repro.soe.cluster import approx_row_bytes  # noqa: E402
from repro.soe.engine import SoeEngine  # noqa: E402
from repro.soe.partitions import route_row  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1729"))
TICKS = 40
RATE = 0.30
#: ticks an isolation lasts — longer than lease TTL (5 ticks) and the
#: detector's dead threshold (6 ticks), so fail-over happens *during*
#: the cut and the victim comes back as a true zombie
HEAL_AFTER = 9
WORKERS = ["worker0", "worker1", "worker2"]
TABLE = "readings"
PARTITIONS = 6
PRELOAD = 600


def build_soe(chaos: ChaosController, enforce: bool):
    soe = SoeEngine(node_count=3, node_modes="olap", replication=2, chaos=chaos)
    soe.create_table(
        TABLE, ["sensor_id", "region", "value"], ["sensor_id"], partition_count=PARTITIONS
    )
    soe.load(TABLE, [[i, f"r{i % 5}", float(i % 97)] for i in range(PRELOAD)])
    membership = soe.enable_membership(enforce=enforce)
    return soe, membership


def key_routed_to(soe: SoeEngine, pid: int, start: int) -> int:
    meta = soe.catalog.table(TABLE)
    return next(
        k
        for k in range(start, start + 100_000)
        if route_row([k, "x", 0.0], meta.key_positions, meta.partition_count) == pid
    )


def direct_write(soe, membership, node_id: str, key: int, enforce: bool) -> str:
    """One client write at ``node_id`` carrying whatever fence tokens
    that node still believes in. Returns the outcome: ``acked``
    (committed through the log), ``zombie_acked`` (unfenced arm only:
    the isolated node acknowledged into its local copy — the write the
    log never sees), ``unavailable``, or ``fenced``."""
    row = [key, "client", 1.0]
    if enforce:
        try:
            soe.data_nodes[node_id].ingest(
                TABLE, [row], fence=membership.cached_tokens(node_id, TABLE)
            )
            return "acked"
        except FencedError:
            return "fenced"
        except NetworkPartitionedError:
            return "unavailable"
    # fencing off: the node is disciplined while it can reach the log,
    # undisciplined when it cannot — it serves the write locally anyway
    operation = {"op": "insert", "table": TABLE, "rows": [row]}
    try:
        soe.cluster.transfer(node_id, "coordinator", approx_row_bytes(row))
        soe.broker.submit([operation])
        return "acked"
    except NetworkPartitionedError:
        soe.data_nodes[node_id].ingest(TABLE, [row])
        return "zombie_acked"


def committed_keys(soe: SoeEngine, floor: int) -> set[int]:
    """Every client key the shared log actually serialized."""
    keys: set[int] = set()
    for _address, ops in soe.broker.read_since(0):
        for operation in ops:
            if operation.get("op") == "insert" and operation.get("table") == TABLE:
                for row in operation.get("rows", []):
                    if row[0] >= floor:
                        keys.add(row[0])
    return keys


def run_arm(enforce: bool) -> dict[str, object]:
    plan = FaultPlan.partition_schedule(
        SEED, ticks=TICKS, rate=RATE, nodes=WORKERS, heal_after=HEAL_AFTER
    )
    chaos = ChaosController(plan)
    soe, membership = build_soe(chaos, enforce)
    acked: list[int] = []
    outcomes = {"acked": 0, "zombie_acked": 0, "unavailable": 0, "fenced": 0}
    front_door_ok = front_door_failed = 0
    for tick in range(TICKS):
        chaos.tick()
        membership.step()
        # front-door traffic: the coordinator routes by the live lease view
        try:
            soe.insert(TABLE, [[10_000 + tick, "front", 0.5]])
            acked.append(10_000 + tick)
            front_door_ok += 1
        except SoeError:
            front_door_failed += 1
        # direct traffic: a client pinned to the node it believes owns
        # the row — the isolated victim when there is one
        isolated = soe.cluster.isolated_nodes()
        node_id = isolated[0] if isolated else WORKERS[tick % len(WORKERS)]
        believed = membership.cached_tokens(node_id, TABLE)
        if not believed:
            continue
        pid = believed[tick % len(believed)].partition_id
        key = key_routed_to(soe, pid, start=50_000 + 1_000 * tick)
        outcome = direct_write(soe, membership, node_id, key, enforce)
        outcomes[outcome] += 1
        if outcome in ("acked", "zombie_acked"):
            acked.append(key)

    soe.cluster.heal()
    for _ in range(6):
        membership.step()
    soe.catch_up_all()

    committed = committed_keys(soe, floor=10_000)
    lost = sorted(k for k in acked if k not in committed)
    rows, _ = soe.aggregate(TABLE, aggregates=[("count", None)], consistency="strong")
    isolations = sum(1 for event in chaos.fired if event.kind == "partition")
    return {
        "enforce": enforce,
        "isolations": isolations,
        "schedule": chaos.schedule_fingerprint(),
        "front_door_ok": front_door_ok,
        "front_door_failed": front_door_failed,
        "direct": dict(outcomes),
        "acked_total": len(acked),
        "committed_client_rows": len(committed & set(acked)),
        "lost_acked": lost,
        "strong_count": rows[0][0],
        "lease_violations": membership.check_invariants(),
    }


def test_fencing_loses_nothing_and_rejects_zombies():
    stats = run_arm(enforce=True)
    assert stats["isolations"] > 0, "the partition schedule never fired — vacuous"
    assert stats["lost_acked"] == [], stats
    assert stats["lease_violations"] == []
    # the zombie path was actually exercised: isolated owners were told
    # "unavailable" mid-cut and "fenced" after fail-over — never "ok"
    assert stats["direct"]["unavailable"] + stats["direct"]["fenced"] > 0, stats
    assert stats["direct"]["zombie_acked"] == 0
    # every acknowledged write is in the committed history and visible
    assert stats["committed_client_rows"] == stats["acked_total"]
    assert stats["strong_count"] == PRELOAD + stats["acked_total"]


def test_without_fencing_the_same_schedule_loses_acked_writes():
    stats = run_arm(enforce=False)
    assert stats["isolations"] > 0
    assert stats["direct"]["zombie_acked"] > 0, stats
    # split-brain demonstrated: acknowledged writes the log never saw
    assert len(stats["lost_acked"]) == stats["direct"]["zombie_acked"], stats
    assert stats["lost_acked"] != []


def test_both_arms_replay_bit_for_bit():
    assert run_arm(enforce=True) == run_arm(enforce=True)
    assert run_arm(enforce=False) == run_arm(enforce=False)


def main() -> None:
    import reporting

    for enforce in (True, False):
        stats = run_arm(enforce)
        reporting.report(
            "E29",
            arm="fencing=on" if enforce else "fencing=off",
            seed=SEED,
            ticks=TICKS,
            isolations=stats["isolations"],
            front_door_ok=stats["front_door_ok"],
            front_door_failed=stats["front_door_failed"],
            direct_acked=stats["direct"]["acked"],
            direct_zombie_acked=stats["direct"]["zombie_acked"],
            direct_unavailable=stats["direct"]["unavailable"],
            direct_fenced=stats["direct"]["fenced"],
            acked_total=stats["acked_total"],
            lost_acked=len(stats["lost_acked"]),
            strong_count=stats["strong_count"],
            lease_violations=len(stats["lease_violations"]),
        )
    for path in reporting.flush():
        print(f"[bench] wrote {path}")


if __name__ == "__main__":
    main()
