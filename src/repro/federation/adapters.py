"""SDA adapters: Hive/HDFS, a second HANA instance, the SOE cluster, CSV.

"SDA enables federation to a huge variety of different data sources"
(Figure 4). Each adapter declares its capabilities — ``filter`` (simple
conjunct pushdown), ``aggregate`` (grouped aggregation pushdown), ``sql``
(full statement pushdown) — and the SDA frontend routes accordingly.
"""

from __future__ import annotations

import operator
from pathlib import Path
from typing import Any

from repro.core import types as dt
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import FederationError
from repro.federation.sda import FilterTriple

_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _apply_filters(rows: list[list[Any]], schema: TableSchema, filters: list[FilterTriple]) -> list[list[Any]]:
    if not filters:
        return rows
    checks = [
        (schema.position(column), _OPS[op], value) for column, op, value in filters
    ]
    out = []
    for row in rows:
        if all(
            row[position] is not None and compare(row[position], value)
            for position, compare, value in checks
        ):
            out.append(row)
    return out


class HanaAdapter:
    """Another repro :class:`Database` instance as a remote source."""

    def __init__(self, name: str, database: Any) -> None:
        self.name = name
        self.database = database

    def capabilities(self) -> set[str]:
        return {"filter", "aggregate", "sql"}

    def table_schema(self, remote_table: str) -> TableSchema:
        return self.database.catalog.table(remote_table).schema

    def scan(self, remote_table: str, filters: list[FilterTriple] | None = None) -> list[list[Any]]:
        sql = f"SELECT * FROM {remote_table}"
        if filters:
            sql += " WHERE " + " AND ".join(
                f"{column} {op} {_sql_literal(value)}" for column, op, value in filters
            )
        return self.database.execute(sql).rows

    def aggregate(
        self,
        remote_table: str,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
        filters: list[FilterTriple],
    ) -> list[list[Any]]:
        select_parts = list(group_by)
        for op, column in aggregates:
            select_parts.append(f"{op.upper()}({column if column else '*'})")
        sql = f"SELECT {', '.join(select_parts)} FROM {remote_table}"
        if filters:
            sql += " WHERE " + " AND ".join(
                f"{column} {op} {_sql_literal(value)}" for column, op, value in filters
            )
        if group_by:
            sql += " GROUP BY " + ", ".join(group_by)
        return self.database.execute(sql).rows

    def execute_sql(self, sql: str) -> list[list[Any]]:
        return self.database.execute(sql).rows


class HiveAdapter:
    """A :class:`~repro.hadoop.hive.HiveServer` as a remote source."""

    def __init__(self, name: str, hive: Any) -> None:
        self.name = name
        self.hive = hive

    def capabilities(self) -> set[str]:
        return {"filter", "aggregate", "sql"}

    def table_schema(self, remote_table: str) -> TableSchema:
        return self.hive.table(remote_table).schema()

    def scan(self, remote_table: str, filters: list[FilterTriple] | None = None) -> list[list[Any]]:
        sql = f"SELECT * FROM {remote_table}"
        if filters:
            sql += " WHERE " + " AND ".join(
                f"{column} {op} {_sql_literal(value)}" for column, op, value in filters
            )
        return self.hive.execute(sql).rows

    def aggregate(
        self,
        remote_table: str,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
        filters: list[FilterTriple],
    ) -> list[list[Any]]:
        select_parts = list(group_by)
        for op, column in aggregates:
            select_parts.append(f"{op.upper()}({column if column else '*'})")
        sql = f"SELECT {', '.join(select_parts)} FROM {remote_table}"
        if filters:
            sql += " WHERE " + " AND ".join(
                f"{column} {op} {_sql_literal(value)}" for column, op, value in filters
            )
        if group_by:
            sql += " GROUP BY " + ", ".join(group_by)
        return self.hive.execute(sql).rows

    def execute_sql(self, sql: str) -> list[list[Any]]:
        return self.hive.execute(sql).rows


class SoeAdapter:
    """The SOE cluster as a remote source (filter + aggregate pushdown)."""

    def __init__(self, name: str, soe: Any) -> None:
        self.name = name
        self.soe = soe

    def capabilities(self) -> set[str]:
        return {"filter", "aggregate"}

    def table_schema(self, remote_table: str) -> TableSchema:
        meta = self.soe.catalog.table(remote_table.lower())
        return TableSchema([ColumnSpec(column, dt.VARCHAR) for column in meta.columns])

    def scan(self, remote_table: str, filters: list[FilterTriple] | None = None) -> list[list[Any]]:
        from repro.hadoop.rdd import SoeTableRdd

        rdd = SoeTableRdd(self.soe, remote_table)
        for column, op, value in filters or []:
            rdd = rdd.filter(column, op, value)
        return [list(row) for row in rdd.rows().collect()]

    def aggregate(
        self,
        remote_table: str,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
        filters: list[FilterTriple],
    ) -> list[list[Any]]:
        rows, _cost = self.soe.aggregate(
            remote_table,
            group_by=group_by,
            aggregates=aggregates,
            filters=filters,
        )
        return rows


class CsvAdapter:
    """Local CSV files (one table per file) — scan-only, no pushdown."""

    def __init__(self, name: str, directory: str | Path, schemas: dict[str, list[tuple[str, str]]]) -> None:
        self.name = name
        self.directory = Path(directory)
        self._schemas = {
            table.lower(): TableSchema(
                [ColumnSpec(n.lower(), dt.type_from_name(t)) for n, t in columns]
            )
            for table, columns in schemas.items()
        }

    def capabilities(self) -> set[str]:
        return set()

    def table_schema(self, remote_table: str) -> TableSchema:
        try:
            return self._schemas[remote_table.lower()]
        except KeyError:
            raise FederationError(f"unknown CSV table {remote_table!r}") from None

    def scan(self, remote_table: str, filters: list[FilterTriple] | None = None) -> list[list[Any]]:
        schema = self.table_schema(remote_table)
        path = self.directory / f"{remote_table.lower()}.csv"
        if not path.exists():
            raise FederationError(f"missing CSV file: {path}")
        rows = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                raw = [None if field == "" else field for field in line.split(",")]
                rows.append(schema.coerce_row(raw))
        return rows


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if hasattr(value, "isoformat"):
        return f"DATE '{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
