"""Smart Data Access: federation via virtual tables (Figure 2/4 "SDA").

"A comprehensive federation framework (SDA = smart data access) in order
to reach out to a huge variety of external data sources." A remote source
is registered under a name; :meth:`SmartDataAccess.create_virtual_table`
then exposes one of its tables in the local catalog. Virtual tables plug
into the ordinary SQL executor (they answer the row-store scan protocol),
and sources that advertise filter pushdown receive the scan's simple
conjuncts so only qualifying rows travel.

For aggregation pushdown — the big win of the federated approach
(§IV.C) — :meth:`SmartDataAccess.pushdown_aggregate` sends the whole
grouped aggregation to capable sources and returns only the result rows;
benchmark E9 compares it against shipping the raw virtual table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro import obs
from repro.core.schema import TableSchema
from repro.errors import FederationError
from repro.util.retry import RetryPolicy, SimulatedClock

FilterTriple = tuple[str, str, Any]  # (column, op, literal)


class RemoteSource(Protocol):
    """What an SDA adapter must provide."""

    name: str

    def table_schema(self, remote_table: str) -> TableSchema: ...

    def scan(
        self, remote_table: str, filters: list[FilterTriple] | None = None
    ) -> list[list[Any]]: ...

    def capabilities(self) -> set[str]: ...


@dataclass
class TransferLedger:
    """Rows/bytes that crossed the federation boundary."""

    rows: int = 0
    bytes: int = 0

    def record(self, rows: list[list[Any]]) -> None:
        self.rows += len(rows)
        payload = 0
        for row in rows:
            payload += sum(
                len(value) + 1 if isinstance(value, str) else 8 for value in row
            )
        self.bytes += payload
        obs.count("federation.rows_shipped", len(rows))
        obs.count("federation.bytes_shipped", payload)


class VirtualTable:
    """A catalog object backed by a remote source (row-store protocol).

    Remote calls run under a bounded :class:`RetryPolicy` — a transient
    source outage (``RemoteSourceUnavailableError``, e.g. injected by
    repro.chaos) is retried with backoff on the simulated clock and
    counted into ``federation.retries``; a persistent outage surfaces as
    the original :class:`~repro.errors.FederationError` subtype.
    """

    def __init__(
        self,
        name: str,
        source: RemoteSource,
        remote_table: str,
        ledger: TransferLedger,
        retry_policy: RetryPolicy | None = None,
        clock: SimulatedClock | None = None,
        breaker: Any = None,
    ) -> None:
        self.name = name
        self.source = source
        self.remote_table = remote_table
        self.schema = source.table_schema(remote_table)
        self.ledger = ledger
        self.retry_policy = retry_policy or RetryPolicy()
        self.clock = clock or SimulatedClock()
        #: optional repro.qos CircuitBreaker for this source; open means
        #: scans fail fast (CircuitOpenError) with zero retry attempts
        self.breaker = breaker
        self.is_virtual = True

    def _remote(self, fn: Any) -> list[list[Any]]:
        if self.breaker is not None:
            wrapped = fn
            fn = lambda: self.breaker.call(wrapped)  # noqa: E731
        return self.retry_policy.call(
            fn,
            clock=self.clock,
            on_retry=lambda _attempt, _exc: obs.count(
                "federation.retries", source=self.source.name.lower()
            ),
        )

    def scan(self, snapshot_cid: int, own_tid: int = 0) -> list[list[Any]]:
        """Full remote scan (the executor's row-store protocol)."""
        rows = self._remote(lambda: self.source.scan(self.remote_table))
        self.ledger.record(rows)
        return rows

    def scan_with_filters(self, filters: list[FilterTriple]) -> list[list[Any]]:
        """Scan with pushed-down filters when the source supports it."""
        if "filter" in self.source.capabilities():
            rows = self._remote(lambda: self.source.scan(self.remote_table, filters))
        else:
            rows = self._remote(lambda: self.source.scan(self.remote_table))
        self.ledger.record(rows)
        return rows

    def __len__(self) -> int:
        return 0  # size unknown without a remote call


class SmartDataAccess:
    """The federation frontend attached to one database."""

    def __init__(
        self,
        database: Any,
        retry_policy: RetryPolicy | None = None,
        clock: SimulatedClock | None = None,
        breaker_config: Any = None,
    ) -> None:
        self.database = database
        self._sources: dict[str, RemoteSource] = {}
        self.ledger = TransferLedger()
        self.retry_policy = retry_policy or RetryPolicy()
        self.clock = clock or SimulatedClock()
        #: a repro.qos BreakerConfig enables per-source circuit breakers
        #: on every remote call (scan, aggregate/SQL pushdown)
        self.breaker_config = breaker_config
        self.breakers: dict[str, Any] = {}

    def breaker_for(self, source_name: str) -> Any:
        """The source's circuit breaker (lazily created), or ``None``
        when federation breakers are not configured."""
        if self.breaker_config is None:
            return None
        key = source_name.lower()
        breaker = self.breakers.get(key)
        if breaker is None:
            from repro.qos.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                f"sda.{key}", self.breaker_config, clock=self.clock
            )
            self.breakers[key] = breaker
        return breaker

    def _remote(self, source_name: str, fn: Any) -> list[list[Any]]:
        """One remote call under the bounded retry policy."""
        breaker = self.breaker_for(source_name)
        if breaker is not None:
            wrapped = fn
            fn = lambda: breaker.call(wrapped)  # noqa: E731
        return self.retry_policy.call(
            fn,
            clock=self.clock,
            on_retry=lambda _attempt, _exc: obs.count(
                "federation.retries", source=source_name.lower()
            ),
        )

    # -- sources ---------------------------------------------------------------

    def register_source(self, source: RemoteSource) -> None:
        key = source.name.lower()
        if key in self._sources:
            raise FederationError(f"source {source.name!r} already registered")
        self._sources[key] = source

    def source(self, name: str) -> RemoteSource:
        try:
            return self._sources[name.lower()]
        except KeyError:
            raise FederationError(f"unknown source {name!r}") from None

    def sources(self) -> list[str]:
        return sorted(self._sources)

    # -- virtual tables ----------------------------------------------------------

    def create_virtual_table(
        self, local_name: str, source_name: str, remote_table: str
    ) -> VirtualTable:
        source = self.source(source_name)
        virtual = VirtualTable(
            local_name.lower(),
            source,
            remote_table,
            self.ledger,
            retry_policy=self.retry_policy,
            clock=self.clock,
            breaker=self.breaker_for(source_name),
        )
        self.database.catalog.register_table(virtual)
        return virtual

    # -- pushdown ------------------------------------------------------------------

    def pushdown_aggregate(
        self,
        source_name: str,
        remote_table: str,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
        filters: list[FilterTriple] | None = None,
    ) -> list[list[Any]]:
        """Execute the aggregation at the source; ship only results."""
        source = self.source(source_name)
        if "aggregate" not in source.capabilities():
            raise FederationError(
                f"source {source_name!r} cannot push down aggregation"
            )
        obs.count("federation.pushdowns", kind="aggregate", source=source_name.lower())
        with obs.latency("federation.pushdown_seconds", source=source_name.lower()):
            rows = self._remote(
                source_name,
                lambda: source.aggregate(  # type: ignore[attr-defined]
                    remote_table, group_by, aggregates, filters or []
                ),
            )
        self.ledger.record(rows)
        return rows

    def pushdown_sql(self, source_name: str, sql: str) -> list[list[Any]]:
        """Ship a whole SQL statement to a SQL-capable source."""
        source = self.source(source_name)
        if "sql" not in source.capabilities():
            raise FederationError(f"source {source_name!r} cannot execute SQL")
        obs.count("federation.pushdowns", kind="sql", source=source_name.lower())
        with obs.latency("federation.pushdown_seconds", source=source_name.lower()):
            rows = self._remote(source_name, lambda: source.execute_sql(sql))  # type: ignore[attr-defined]
        self.ledger.record(rows)
        return rows
