"""Smart Data Access (SDA): federation via virtual tables."""

from repro.federation.adapters import CsvAdapter, HanaAdapter, HiveAdapter, SoeAdapter
from repro.federation.sda import SmartDataAccess, VirtualTable

__all__ = ["SmartDataAccess", "VirtualTable", "CsvAdapter", "HanaAdapter", "HiveAdapter", "SoeAdapter"]
