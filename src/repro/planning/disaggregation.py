"""Planning operators: disaggregation and aggregation (§II.D).

"The planning process requires heavy CPU based database functionality like
disaggregation or copy processes" — these are the in-engine operators the
paper says the research community overlooks. :func:`disaggregate` splits a
parent-level target across leaf cells (proportionally to reference
weights, or equally), with exact-sum rounding; :func:`aggregate_up` is its
inverse over a hierarchy.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.engines.graph.hierarchy import HierarchyView
from repro.errors import PlanningError

CellKey = Hashable


def disaggregate(
    total: float,
    weights: Mapping[CellKey, float],
    method: str = "proportional",
    decimals: int | None = 2,
) -> dict[CellKey, float]:
    """Split ``total`` across the keys of ``weights``.

    * ``proportional`` — shares follow the (non-negative) weights; when all
      weights are zero it falls back to equal shares.
    * ``equal`` — uniform split ignoring weight values.

    With ``decimals`` set, results are rounded and the rounding residue is
    assigned by largest remainder so the parts sum to ``total`` exactly —
    the property planning applications require.
    """
    if not weights:
        raise PlanningError("cannot disaggregate over zero cells")
    if method not in ("proportional", "equal"):
        raise PlanningError(f"unknown disaggregation method {method!r}")
    keys = list(weights)
    if method == "equal":
        raw_shares = {key: 1.0 for key in keys}
    else:
        if any(weight < 0 for weight in weights.values()):
            raise PlanningError("weights must be non-negative")
        raw_shares = dict(weights)
    weight_sum = sum(raw_shares.values())
    if weight_sum == 0.0:
        raw_shares = {key: 1.0 for key in keys}
        weight_sum = float(len(keys))

    # divide the share first: avoids underflow when weights are subnormal
    exact = {key: total * (raw_shares[key] / weight_sum) for key in keys}
    if decimals is None:
        return exact

    factor = 10**decimals
    floored = {key: int(value * factor + 1e-9) if value >= 0 else -int(-value * factor + 1e-9) for key, value in exact.items()}
    # target the *rounded* total's units: round(total * factor) can disagree
    # with round(total, decimals) when the multiply collapses the float's
    # representation error onto an exact .5 (e.g. 0.025 * 100 == 2.5)
    target_units = round(round(total, decimals) * factor)
    residue = target_units - sum(floored.values())
    step = 1 if residue >= 0 else -1
    # rounding residue goes to weighted cells only, by largest remainder
    eligible = [key for key in keys if raw_shares[key] > 0] or keys
    remainders = sorted(
        eligible,
        key=lambda key: (exact[key] * factor - floored[key]) * step,
        reverse=True,
    )
    for index in range(abs(int(residue))):
        floored[remainders[index % len(remainders)]] += step
    return {key: units / factor for key, units in floored.items()}


def disaggregate_hierarchy(
    hierarchy: HierarchyView,
    node: CellKey,
    total: float,
    leaf_weights: Mapping[CellKey, float],
    decimals: int | None = 2,
) -> dict[CellKey, float]:
    """Disaggregate a target at ``node`` across its leaf descendants."""
    leaves = [
        member
        for member in ([node] + hierarchy.descendants(node))
        if not hierarchy.children(member)
    ]
    if not leaves:
        raise PlanningError(f"node {node!r} has no leaves")
    weights = {leaf: float(leaf_weights.get(leaf, 0.0)) for leaf in leaves}
    return disaggregate(total, weights, decimals=decimals)


def aggregate_up(
    hierarchy: HierarchyView, leaf_values: Mapping[CellKey, float]
) -> dict[CellKey, float]:
    """Roll leaf values up to every node of the hierarchy."""
    totals: dict[CellKey, float] = {}

    def value_of(node: CellKey) -> float:
        cached = totals.get(node)
        if cached is not None:
            return cached
        children = hierarchy.children(node)
        if not children:
            result = float(leaf_values.get(node, 0.0))
        else:
            result = sum(value_of(child) for child in children)
        totals[node] = result
        return result

    for root in hierarchy.roots():
        value_of(root)
        for descendant in hierarchy.descendants(root):
            value_of(descendant)
    return totals
