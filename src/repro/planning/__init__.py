"""Planning extensions: disaggregation, versions, copy."""

from repro.planning.disaggregation import aggregate_up, disaggregate, disaggregate_hierarchy
from repro.planning.versions import PlanningCube

__all__ = ["aggregate_up", "disaggregate", "disaggregate_hierarchy", "PlanningCube"]
