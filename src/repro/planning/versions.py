"""Planning versions: logical snapshots and copy operations (§II.D).

"Providing logical snapshots or versioning and other operators" — a
:class:`PlanningCube` holds leaf cells keyed by coordinate tuples; each
version is copy-on-write over its parent, so "copy actuals into plan,
branch a what-if scenario, compare" costs memory proportional to the edits
made, not to the cube size.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.errors import PlanningError

Coordinate = tuple[Hashable, ...]

_DELETED = object()


class PlanningCube:
    """Versioned cell store for planning data."""

    def __init__(self, name: str, dimensions: Iterable[str]) -> None:
        self.name = name
        self.dimensions = tuple(dimensions)
        if not self.dimensions:
            raise PlanningError("a cube needs at least one dimension")
        #: version -> (parent version | None, overrides)
        self._versions: dict[str, tuple[str | None, dict[Coordinate, object]]] = {
            "actuals": (None, {})
        }

    # -- versions -------------------------------------------------------------

    @property
    def versions(self) -> list[str]:
        return sorted(self._versions)

    def create_version(self, name: str, from_version: str = "actuals") -> None:
        """Branch a new version (logical snapshot) off an existing one."""
        if name in self._versions:
            raise PlanningError(f"version {name!r} already exists")
        if from_version not in self._versions:
            raise PlanningError(f"unknown version {from_version!r}")
        self._versions[name] = (from_version, {})

    def drop_version(self, name: str) -> None:
        if name == "actuals":
            raise PlanningError("cannot drop the actuals version")
        if any(parent == name for parent, _d in self._versions.values()):
            raise PlanningError(f"version {name!r} has dependent versions")
        if self._versions.pop(name, None) is None:
            raise PlanningError(f"unknown version {name!r}")

    def _require(self, version: str) -> None:
        if version not in self._versions:
            raise PlanningError(f"unknown version {version!r}")

    # -- cell access ---------------------------------------------------------------

    def _check_key(self, key: Coordinate) -> Coordinate:
        if len(key) != len(self.dimensions):
            raise PlanningError(
                f"coordinate {key!r} does not match dimensions {self.dimensions}"
            )
        return tuple(key)

    def set(self, version: str, key: Coordinate, value: float) -> None:
        self._require(version)
        self._versions[version][1][self._check_key(key)] = float(value)

    def delete(self, version: str, key: Coordinate) -> None:
        self._require(version)
        self._versions[version][1][self._check_key(key)] = _DELETED

    def get(self, version: str, key: Coordinate, default: float = 0.0) -> float:
        self._require(version)
        key = self._check_key(key)
        cursor: str | None = version
        while cursor is not None:
            parent, overrides = self._versions[cursor]
            if key in overrides:
                value = overrides[key]
                return default if value is _DELETED else float(value)  # type: ignore[arg-type]
            cursor = parent
        return default

    def cells(self, version: str) -> dict[Coordinate, float]:
        """All materialised cells of a version."""
        self._require(version)
        chain: list[dict[Coordinate, object]] = []
        cursor: str | None = version
        while cursor is not None:
            parent, overrides = self._versions[cursor]
            chain.append(overrides)
            cursor = parent
        resolved: dict[Coordinate, float] = {}
        for overrides in reversed(chain):
            for key, value in overrides.items():
                if value is _DELETED:
                    resolved.pop(key, None)
                else:
                    resolved[key] = float(value)  # type: ignore[arg-type]
        return resolved

    def override_count(self, version: str) -> int:
        """How many cells this version stores itself (COW footprint)."""
        self._require(version)
        return len(self._versions[version][1])

    # -- planning operators -------------------------------------------------------------

    def copy_cells(
        self,
        source_version: str,
        target_version: str,
        scale: float = 1.0,
        where: Mapping[int, Hashable] | None = None,
    ) -> int:
        """The copy operator: source cells → target, optionally scaled and
        restricted to coordinates matching ``where`` (dimension index →
        required member). Returns the number of cells written."""
        self._require(target_version)
        count = 0
        for key, value in self.cells(source_version).items():
            if where and any(key[dim] != member for dim, member in where.items()):
                continue
            self.set(target_version, key, value * scale)
            count += 1
        return count

    def total(self, version: str, where: Mapping[int, Hashable] | None = None) -> float:
        """Aggregate over the version's cells."""
        return sum(
            value
            for key, value in self.cells(version).items()
            if not where or all(key[dim] == member for dim, member in where.items())
        )

    def compare(
        self, version_a: str, version_b: str
    ) -> dict[Coordinate, tuple[float, float]]:
        """Cells that differ: key -> (value in a, value in b)."""
        cells_a = self.cells(version_a)
        cells_b = self.cells(version_b)
        differences: dict[Coordinate, tuple[float, float]] = {}
        for key in set(cells_a) | set(cells_b):
            left = cells_a.get(key, 0.0)
            right = cells_b.get(key, 0.0)
            if left != right:
                differences[key] = (left, right)
        return differences
