"""Resource governor: per-query budgets with graceful degradation.

Admission control bounds *how many* queries run; the governor bounds
*how much* each one may consume once running — the Data Volume
Management motivation of keeping the working set governed so the system
degrades predictably instead of falling over. Each query carries a
:class:`QueryBudget` of rows produced, estimated bytes, and operator
seconds (on the shared :class:`~repro.util.retry.SimulatedClock`), with
two thresholds per dimension:

* crossing a **soft limit** latches the governor ``degraded``: the
  executors stop producing further rows and the partial answer is
  returned with ``QueryResult.degraded`` set — the same surfacing
  contract as the coordinator's staleness-bounded failover reads
  (``PlanCost.degraded``);
* crossing a **hard limit** raises
  :class:`~repro.errors.BudgetExceededError` — terminal, not retryable,
  because re-running the query spends the same budget again.

Checks happen at the volcano iterator yield points
(``sql/volcano.py``) and at the vectorized scan boundary
(``sql/executor.py``), so both engines honour the same budget. Charged
amounts and limits are plain integers/floats on simulated time:
identical query + identical budget → identical degradation point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.errors import BudgetExceededError, QosError
from repro.util.retry import SimulatedClock


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource caps. ``None`` disables a dimension.

    ``seconds_per_row`` is the simulated operator cost charged per row
    at each yield point, so time budgets bite deterministically without
    a wall clock.
    """

    soft_rows: int | None = None
    hard_rows: int | None = None
    soft_bytes: int | None = None
    hard_bytes: int | None = None
    soft_seconds: float | None = None
    hard_seconds: float | None = None
    seconds_per_row: float = 0.0

    def __post_init__(self) -> None:
        for soft, hard, label in (
            (self.soft_rows, self.hard_rows, "rows"),
            (self.soft_bytes, self.hard_bytes, "bytes"),
            (self.soft_seconds, self.hard_seconds, "seconds"),
        ):
            if soft is not None and soft < 0:
                raise QosError(f"soft_{label} must be >= 0")
            if hard is not None and hard < 0:
                raise QosError(f"hard_{label} must be >= 0")
            if soft is not None and hard is not None and hard < soft:
                raise QosError(f"hard_{label} must be >= soft_{label}")
        if self.seconds_per_row < 0:
            raise QosError("seconds_per_row must be >= 0")


class ResourceGovernor:
    """Charges consumption against a :class:`QueryBudget`.

    One governor per query execution. ``charge()`` is called from the
    engines' yield points; once a soft limit latches, ``should_stop``
    tells the engine to stop producing and the reason is kept for the
    result's ``degraded_reasons``. Hard limits raise immediately.
    """

    def __init__(
        self,
        budget: QueryBudget | None = None,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.budget = budget or QueryBudget()
        self.clock = clock or SimulatedClock()
        self.rows = 0
        self.bytes = 0
        self.started_at = self.clock.now
        self.degraded = False
        self.degraded_reasons: list[str] = []

    # -- charging -----------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        return self.clock.now - self.started_at

    @property
    def should_stop(self) -> bool:
        """True once any soft limit has latched: produce no more rows."""
        return self.degraded

    def _degrade(self, reason: str) -> None:
        if reason not in self.degraded_reasons:
            self.degraded_reasons.append(reason)
        if not self.degraded:
            self.degraded = True
            obs.count("qos.degraded", reason=reason)

    def _exceed(self, reason: str) -> None:
        obs.count("qos.budget_exceeded", reason=reason)
        raise BudgetExceededError(
            f"query exceeded hard budget ({reason}): "
            f"rows={self.rows} bytes={self.bytes} "
            f"seconds={self.elapsed_seconds:.6f}"
        )

    def charge(self, rows: int = 0, bytes_: int = 0) -> None:
        """Account ``rows`` produced / ``bytes_`` materialised and check
        every dimension — hard limits raise, soft limits latch."""
        self.rows += rows
        self.bytes += bytes_
        if rows and self.budget.seconds_per_row:
            self.clock.advance(rows * self.budget.seconds_per_row)
        b = self.budget
        if b.hard_rows is not None and self.rows > b.hard_rows:
            self._exceed("rows")
        if b.hard_bytes is not None and self.bytes > b.hard_bytes:
            self._exceed("bytes")
        if b.hard_seconds is not None and self.elapsed_seconds > b.hard_seconds:
            self._exceed("seconds")
        if b.soft_rows is not None and self.rows >= b.soft_rows:
            self._degrade("rows")
        if b.soft_bytes is not None and self.bytes >= b.soft_bytes:
            self._degrade("bytes")
        if b.soft_seconds is not None and self.elapsed_seconds >= b.soft_seconds:
            self._degrade("seconds")

    def charge_planning(self, seconds: float) -> None:
        """Charge (simulated) optimizer time against the same budget.

        Mid-query re-optimization is not free: the database charges each
        re-planning pass here before building the new plan, so a query
        near its time budget degrades or raises instead of burning the
        remaining budget on planning work (``docs/OPTIMIZER.md``).
        """
        if seconds:
            self.clock.advance(seconds)
        obs.count("qos.planning_charges")
        self.charge(0, 0)

    def remaining_rows(self) -> int | None:
        """Rows producible before the *soft* row limit latches, or
        ``None`` when unbounded — lets vectorized scans truncate a batch
        instead of overshooting."""
        if self.budget.soft_rows is None:
            return None
        return max(0, self.budget.soft_rows - self.rows)

    def snapshot(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "bytes": self.bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "degraded": self.degraded,
            "degraded_reasons": list(self.degraded_reasons),
        }
