"""Circuit breakers: stop burning retry budget against a failing seam.

The failure-aware layer (PR 3) retries transient errors with bounded
backoff — correct for a *blip*, wasteful for a seam that is down and
staying down: every query pays the full retry schedule before failing.
A :class:`CircuitBreaker` watches the recent outcome window of one seam
(the SDA federation scan, ``SimulatedCluster.transfer``,
``SharedLog.append``); once the failure rate crosses the threshold it
*opens* and every call fails fast with a typed
:class:`~repro.errors.CircuitOpenError` — which is deliberately not a
:class:`~repro.errors.RetryableError`, so it punches straight through
every retry loop (zero retry attempts against an open breaker). After a
cool-down on the shared :class:`~repro.util.retry.SimulatedClock` the
breaker goes *half-open* and lets probe calls through; one success
closes it, one failure re-opens it and re-arms the cool-down.

State machine (the only legal transitions — asserted by the hypothesis
property test):

    closed ──(failure rate ≥ threshold)──► open
    open ──(cool-down elapsed)──► half-open
    half-open ──(probe succeeds)──► closed
    half-open ──(probe fails)──► open

Every transition is recorded in :attr:`CircuitBreaker.transitions` with
the simulated clock reading, counted into ``qos.breaker.trips`` /
``qos.breaker.recoveries``, and mirrored to the ``qos.breaker.state``
gauge so v2stats sees seam health.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro import obs
from repro.errors import CircuitOpenError, QosError, RetryableError
from repro.util.retry import SimulatedClock

T = TypeVar("T")

#: gauge encoding of breaker states (for ``qos.breaker.state``)
STATE_CODES: dict[str, int] = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class BreakerConfig:
    """When to trip and how long to cool down.

    A breaker trips when, among the last ``window`` outcomes and with at
    least ``min_calls`` of them observed, the failure fraction reaches
    ``failure_threshold``. Cool-down is charged to the simulated clock.
    """

    failure_threshold: float = 0.5
    min_calls: int = 4
    window: int = 8
    cooldown_seconds: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise QosError("failure_threshold must be in (0, 1]")
        if self.min_calls < 1 or self.window < self.min_calls:
            raise QosError("need window >= min_calls >= 1")
        if self.cooldown_seconds < 0:
            raise QosError("cooldown_seconds must be >= 0")


@dataclass(frozen=True)
class Transition:
    """One recorded state change, stamped with the simulated clock."""

    source: str
    target: str
    at: float


class CircuitBreaker:
    """Failure-rate breaker for one seam, on simulated time.

    Only :class:`~repro.errors.RetryableError` outcomes count as
    failures — those are the transient infrastructure faults the retry
    layer would otherwise hammer; domain errors (a malformed query, an
    unknown table) pass through without moving the breaker.
    """

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self.clock = clock or SimulatedClock()
        self.state = "closed"
        self.transitions: list[Transition] = []
        self.fast_fails = 0
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at: float | None = None
        obs.gauge("qos.breaker.state", STATE_CODES[self.state], breaker=self.name)

    # -- state machine ------------------------------------------------------

    def _move(self, target: str) -> None:
        self.transitions.append(Transition(self.state, target, self.clock.now))
        self.state = target
        obs.gauge("qos.breaker.state", STATE_CODES[target], breaker=self.name)

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self) -> None:
        """Gate one call. Open + cool-down elapsed moves to half-open
        (the call proceeds as the probe); open otherwise fails fast."""
        if self.state == "closed":
            return
        if self.state == "open":
            assert self._opened_at is not None
            if self.clock.now - self._opened_at >= self.config.cooldown_seconds:
                self._move("half_open")
                obs.count("qos.breaker.probes", breaker=self.name)
                return
            self.fast_fails += 1
            obs.count("qos.breaker.fast_fails", breaker=self.name)
            raise CircuitOpenError(
                self.name,
                f"circuit breaker {self.name!r} is open "
                f"(cool-down until t={self._opened_at + self.config.cooldown_seconds:.6f}, "
                f"now t={self.clock.now:.6f})",
            )
        # half-open: the in-flight probe decides; further calls pass too —
        # deterministic single-threaded execution serialises them anyway

    def record_success(self) -> None:
        if self.state == "half_open":
            self._outcomes.clear()
            self._opened_at = None
            self._move("closed")
            obs.count("qos.breaker.recoveries", breaker=self.name)
            return
        if self.state == "closed":
            self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == "half_open":
            self._opened_at = self.clock.now
            self._move("open")
            obs.count("qos.breaker.trips", breaker=self.name, kind="probe")
            return
        if self.state == "closed":
            self._outcomes.append(False)
            if (
                len(self._outcomes) >= self.config.min_calls
                and self._failure_rate() >= self.config.failure_threshold
            ):
                self._opened_at = self.clock.now
                self._move("open")
                obs.count("qos.breaker.trips", breaker=self.name, kind="threshold")

    # -- call wrapper -------------------------------------------------------

    def call(self, fn: Callable[[], T]) -> T:
        """Run one call through the breaker.

        Transient failures (:class:`RetryableError`) count against the
        window and re-raise unchanged, so wrapping a seam inside an
        existing retry loop keeps the loop's error handling intact —
        until the breaker opens, at which point the non-retryable
        :class:`CircuitOpenError` punches through the loop.
        """
        self.allow()
        try:
            result = fn()
        except RetryableError:
            self.record_failure()
            raise
        self.record_success()
        return result

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "failure_rate": self._failure_rate(),
            "fast_fails": self.fast_fails,
            "transitions": len(self.transitions),
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state})"
