"""Admission control: per-class weighted queues with deterministic shedding.

The paper positions HANA on Figure 1's *density* axis — one system
serving transactional, analytical, streaming, and background work at
once — which is exactly the workload-isolation problem the HTAP survey
calls the defining robustness question: an OLAP burst must not starve
OLTP. The :class:`AdmissionController` is the front door that makes the
isolation hold under overload:

* every query is submitted under one of four **workload classes**
  (``oltp`` / ``olap`` / ``streaming`` / ``background``), each with its
  own bounded queue and scheduling weight;
* queues past their **high-water mark shed deterministically**: the
  submit fails with :class:`~repro.errors.AdmissionRejectedError`
  (retryable — back off and resubmit) instead of growing without bound;
* dequeue order is **smooth weighted round-robin** — a deterministic
  schedule (no randomness, no wall clock) that gives every class
  service proportional to its weight, so a saturating OLAP burst still
  leaves the OLTP class its share of slots;
* **hotspot placement penalty** (the ROADMAP v2stats item, bounded
  version): when wired to :class:`ClusterStatisticsService`, background
  work targeting a node the statistics service flags as hot is shed
  rather than queued — full auto-rebalancing remains a future PR.

Accounting is conservation-exact and exactly-once, asserted by the
hypothesis property suite: ``submitted == admitted + shed`` per class,
and no ticket is ever both shed and executed. Counters:
``qos.submitted`` / ``qos.admitted`` / ``qos.shed`` (by class and
reason) / ``qos.executed``; gauge ``qos.queue_depth`` per class;
histogram ``qos.admission_wait_seconds`` on the simulated clock.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import AdmissionRejectedError, QosError
from repro.util.retry import SimulatedClock

#: the four workload classes of the density axis, in scheduling order
QUERY_CLASSES: tuple[str, ...] = ("oltp", "olap", "streaming", "background")

DEFAULT_WEIGHTS: dict[str, int] = {
    "oltp": 8,
    "streaming": 4,
    "olap": 2,
    "background": 1,
}

DEFAULT_DEPTH = 16


@dataclass(frozen=True)
class AdmissionConfig:
    """Weights, queue bounds, and scheduling mode.

    ``queue_depth`` is the per-class high-water mark: a submit that
    would push a class queue past it is shed. ``fifo=True`` disables
    class-aware scheduling (one global arrival-order queue) — the
    "QoS off" arm of benchmark E25.
    """

    weights: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    queue_depth: Mapping[str, int] | int = DEFAULT_DEPTH
    fifo: bool = False
    #: classes subject to the hotspot placement penalty
    hotspot_shed_classes: tuple[str, ...] = ("background",)
    #: load factor passed to ClusterStatisticsService.hotspots()
    hotspot_factor: float = 2.0

    def __post_init__(self) -> None:
        for query_class, weight in self.weights.items():
            if query_class not in QUERY_CLASSES:
                raise QosError(f"unknown query class {query_class!r}")
            if weight < 1:
                raise QosError(f"weight for {query_class!r} must be >= 1")
        for query_class in self.hotspot_shed_classes:
            if query_class not in QUERY_CLASSES:
                raise QosError(f"unknown query class {query_class!r}")
        if isinstance(self.queue_depth, int):
            if self.queue_depth < 1:
                raise QosError("queue_depth must be >= 1")
        else:
            for query_class, depth in self.queue_depth.items():
                if query_class not in QUERY_CLASSES:
                    raise QosError(f"unknown query class {query_class!r}")
                if depth < 1:
                    raise QosError(f"queue_depth for {query_class!r} must be >= 1")

    def weight_of(self, query_class: str) -> int:
        return self.weights.get(query_class, 1)

    def depth_of(self, query_class: str) -> int:
        if isinstance(self.queue_depth, int):
            return self.queue_depth
        return self.queue_depth.get(query_class, DEFAULT_DEPTH)


@dataclass
class Ticket:
    """One admitted unit of work and its lifecycle."""

    ticket_id: int
    query_class: str
    job: Callable[[], Any] | None
    target_nodes: tuple[str, ...]
    enqueued_at: float
    state: str = "queued"  # queued | executed | failed
    started_at: float | None = None
    wait_seconds: float | None = None
    result: Any = None
    error: BaseException | None = None


@track_fields("_queues", "_counts")
class AdmissionController:
    """The bounded, weighted front door for query execution.

    Single-instance, lock-guarded (race-clean under ``REPRO_RACECHECK``);
    time comes exclusively from the shared
    :class:`~repro.util.retry.SimulatedClock`, so an identical submit
    schedule yields an identical shed/served trace.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        clock: SimulatedClock | None = None,
        stats: Any = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.clock = clock or SimulatedClock()
        #: optional ClusterStatisticsService for the hotspot penalty
        self.stats = stats
        self._lock = threading.Lock()
        self._next_id = 0
        # depth is enforced at submit (high-water shed), never by silent
        # eviction — an unbounded deque here is the mechanism, not a leak
        self._queues: dict[str, deque[Ticket]] = {
            query_class: deque()  # repro: allow(unbounded-queue)
            for query_class in QUERY_CLASSES
        }
        # smooth weighted round-robin running credit per class
        self._credit: dict[str, int] = {c: 0 for c in QUERY_CLASSES}
        self._counts: dict[str, dict[str, int]] = {
            query_class: {"submitted": 0, "admitted": 0, "shed": 0, "executed": 0, "failed": 0}
            for query_class in QUERY_CLASSES
        }
        self.shed_tickets: list[int] = []
        self.executed_tickets: list[int] = []

    # -- submission ---------------------------------------------------------

    def _shed(self, query_class: str, reason: str) -> None:
        obs.count("qos.shed", cls=query_class, reason=reason)
        raise AdmissionRejectedError(query_class, reason)

    def _hot_targets(self, query_class: str, target_nodes: tuple[str, ...]) -> set[str]:
        if (
            self.stats is None
            or not target_nodes
            or query_class not in self.config.hotspot_shed_classes
        ):
            return set()
        hot = set(self.stats.hotspots(self.config.hotspot_factor))
        return hot & set(target_nodes)

    def submit(
        self,
        query_class: str,
        job: Callable[[], Any] | None = None,
        *,
        target_nodes: tuple[str, ...] = (),
        at: float | None = None,
    ) -> Ticket:
        """Admit one unit of work or shed it.

        Sheds (raises :class:`AdmissionRejectedError`) when the class
        queue is at its high-water mark, or when a hotspot-penalised
        class targets a node v2stats flags as hot. ``at`` overrides the
        enqueue timestamp for arrival-driven simulations (defaults to
        the shared clock's now).
        """
        if query_class not in QUERY_CLASSES:
            raise QosError(f"unknown query class {query_class!r}")
        with self._lock:
            self._counts[query_class]["submitted"] += 1
            self._next_id += 1
            ticket_id = self._next_id
        obs.count("qos.submitted", cls=query_class)
        hot = self._hot_targets(query_class, target_nodes)
        if hot:
            with self._lock:
                self._counts[query_class]["shed"] += 1
                self.shed_tickets.append(ticket_id)
            self._shed(query_class, "hotspot")
        with self._lock:
            if len(self._queues[query_class]) >= self.config.depth_of(query_class):
                self._counts[query_class]["shed"] += 1
                self.shed_tickets.append(ticket_id)
                overloaded = True
            else:
                overloaded = False
                ticket = Ticket(
                    ticket_id=ticket_id,
                    query_class=query_class,
                    job=job,
                    target_nodes=tuple(target_nodes),
                    enqueued_at=at if at is not None else self.clock.now,
                )
                self._queues[query_class].append(ticket)
                self._counts[query_class]["admitted"] += 1
                depth = len(self._queues[query_class])
        if overloaded:
            self._shed(query_class, "overload")
        obs.count("qos.admitted", cls=query_class)
        obs.gauge("qos.queue_depth", depth, cls=query_class)
        return ticket

    # -- scheduling ---------------------------------------------------------

    def queued(self, query_class: str | None = None) -> int:
        with self._lock:
            if query_class is not None:
                return len(self._queues[query_class])
            return sum(len(q) for q in self._queues.values())

    def _pick_class_locked(self) -> str | None:
        """Smooth weighted round-robin over the non-empty class queues.

        Every eligible class earns its weight in credit; the richest
        class serves one query and pays back the total eligible weight.
        Deterministic: ties break in ``QUERY_CLASSES`` order.
        """
        eligible = [c for c in QUERY_CLASSES if self._queues[c]]
        if not eligible:
            return None
        if self.config.fifo:
            return min(eligible, key=lambda c: self._queues[c][0].ticket_id)
        total = 0
        for query_class in eligible:
            self._credit[query_class] += self.config.weight_of(query_class)
            total += self.config.weight_of(query_class)
        chosen = max(eligible, key=lambda c: (self._credit[c], -QUERY_CLASSES.index(c)))
        self._credit[chosen] -= total
        return chosen

    def run_one(self) -> Ticket | None:
        """Serve the next query per the weighted schedule; ``None`` when
        every queue is empty. The ticket's job (if any) runs exactly
        once; a raising job marks the ticket ``failed`` and keeps the
        exception on ``ticket.error`` (load shedding is the submitter's
        signal — execution failures are the landscape's)."""
        with self._lock:
            query_class = self._pick_class_locked()
            if query_class is None:
                return None
            ticket = self._queues[query_class].popleft()
            depth = len(self._queues[query_class])
        ticket.started_at = self.clock.now
        ticket.wait_seconds = max(0.0, self.clock.now - ticket.enqueued_at)
        obs.gauge("qos.queue_depth", depth, cls=query_class)
        obs.observe("qos.admission_wait_seconds", ticket.wait_seconds, cls=query_class)
        if ticket.job is None:
            ticket.state = "executed"
        else:
            try:
                ticket.result = ticket.job()
                ticket.state = "executed"
            except Exception as exc:
                ticket.state = "failed"
                ticket.error = exc
                obs.count("qos.job_failures", cls=query_class)
        with self._lock:
            self._counts[query_class]["executed"] += 1
            if ticket.state == "failed":
                self._counts[query_class]["failed"] += 1
            self.executed_tickets.append(ticket.ticket_id)
        obs.count("qos.executed", cls=query_class)
        return ticket

    def run_all(self, limit: int | None = None) -> list[Ticket]:
        """Drain the queues (optionally at most ``limit`` queries)."""
        served: list[Ticket] = []
        while limit is None or len(served) < limit:
            ticket = self.run_one()
            if ticket is None:
                break
            served.append(ticket)
        return served

    # -- accounting ---------------------------------------------------------

    def counts(self, query_class: str | None = None) -> dict[str, int]:
        """Per-class (or summed) lifecycle counters."""
        with self._lock:
            if query_class is not None:
                return dict(self._counts[query_class])
            totals = {"submitted": 0, "admitted": 0, "shed": 0, "executed": 0, "failed": 0}
            for per_class in self._counts.values():
                for key, value in per_class.items():
                    totals[key] += value
            return totals

    def conserved(self) -> bool:
        """The invariant the property suite hammers: every submitted
        query is accounted exactly once as admitted or shed, and nothing
        was both shed and executed."""
        totals = self.counts()
        disjoint = not (set(self.shed_tickets) & set(self.executed_tickets))
        return totals["submitted"] == totals["admitted"] + totals["shed"] and disjoint

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "queued": {c: len(q) for c, q in self._queues.items()},
                "counts": {c: dict(v) for c, v in self._counts.items()},
            }
