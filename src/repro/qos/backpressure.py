"""Bounded stream buffers with pluggable overflow policies.

The ESP chapter of the paper feeds "millions of events" into the core;
without a bound, a fast source grows an inter-operator queue without
limit. :class:`BoundedBuffer` is the primitive the backpressured stream
processor (``streaming/esp.py``) places between operators:

* ``drop_oldest`` — ring-buffer semantics: admit the new event, evict
  the oldest unconsumed one (freshness wins — the right default for
  dashboards and monitors);
* ``drop_newest`` — keep the backlog, refuse the new event (order
  wins — the right default for audit-style streams);
* ``block`` — refuse with :class:`~repro.errors.BackpressureError`
  (retryable): in the single-threaded simulation "blocking" means the
  producer must drain downstream and re-offer, which is exactly what
  the backpressured processor's pump does.

Every buffer tracks a high-water mark and drop counts, mirrored to
``qos.buffer.depth`` / ``qos.buffer.watermark`` gauges and
``qos.buffer.dropped`` counters so overload is visible, not silent.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import BackpressureError, QosError

#: recognised overflow policies
POLICIES: tuple[str, ...] = ("drop_oldest", "drop_newest", "block")


@track_fields("_items")
class BoundedBuffer:
    """A bounded FIFO between two stream operators.

    ``offer()`` returns True when the event was admitted; False means it
    was dropped by policy (``block`` raises instead — the caller pumps
    downstream and retries). ``take()`` pops the oldest admitted event.
    """

    def __init__(self, name: str, capacity: int, policy: str = "drop_oldest") -> None:
        if capacity < 1:
            raise QosError("capacity must be >= 1")
        if policy not in POLICIES:
            raise QosError(f"unknown backpressure policy {policy!r}")
        self.name = name
        self.capacity = capacity
        self.policy = policy
        self._lock = threading.Lock()
        # bounded by the explicit capacity check in offer(); maxlen would
        # silently evict and bypass the policy accounting
        self._items: deque[Any] = deque()  # repro: allow(unbounded-queue)
        self.watermark = 0
        self.dropped_oldest = 0
        self.dropped_newest = 0
        self.offered = 0
        self.taken = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def full(self) -> bool:
        with self._lock:
            return len(self._items) >= self.capacity

    def offer(self, item: Any) -> bool:
        """Admit ``item`` or apply the overflow policy."""
        with self._lock:
            self.offered += 1
            if len(self._items) >= self.capacity:
                if self.policy == "drop_oldest":
                    self._items.popleft()
                    self.dropped_oldest += 1
                    obs.count("qos.buffer.dropped", buffer=self.name, policy="drop_oldest")
                elif self.policy == "drop_newest":
                    self.dropped_newest += 1
                    obs.count("qos.buffer.dropped", buffer=self.name, policy="drop_newest")
                    return False
                else:  # block
                    obs.count("qos.buffer.blocked", buffer=self.name)
                    raise BackpressureError(
                        f"buffer {self.name!r} full "
                        f"(capacity={self.capacity}, policy=block)"
                    )
            self._items.append(item)
            depth = len(self._items)
            if depth > self.watermark:
                self.watermark = depth
                obs.gauge("qos.buffer.watermark", depth, buffer=self.name)
            obs.gauge("qos.buffer.depth", depth, buffer=self.name)
            return True

    def take(self) -> Any:
        """Pop the oldest event; raises :class:`QosError` when empty
        (callers gate on ``len()`` — an empty take is a pump bug)."""
        with self._lock:
            if not self._items:
                raise QosError(f"buffer {self.name!r} is empty")
            item = self._items.popleft()
            self.taken += 1
            obs.gauge("qos.buffer.depth", len(self._items), buffer=self.name)
            return item

    def drain(self) -> list[Any]:
        """Pop everything currently buffered, oldest first."""
        with self._lock:
            items = list(self._items)
            self.taken += len(items)
            self._items.clear()
            obs.gauge("qos.buffer.depth", 0, buffer=self.name)
            return items

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "depth": len(self._items),
                "capacity": self.capacity,
                "policy": self.policy,
                "watermark": self.watermark,
                "dropped": self.dropped_oldest + self.dropped_newest,
                "offered": self.offered,
                "taken": self.taken,
            }

    def __repr__(self) -> str:
        with self._lock:
            depth = len(self._items)
        return (
            f"BoundedBuffer({self.name!r}, {depth}/{self.capacity}, "
            f"policy={self.policy})"
        )
