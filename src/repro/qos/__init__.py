"""Overload protection & graceful degradation (``repro.qos``).

The paper's Figure 1 claims *density*: one system serving OLTP, OLAP,
streaming, and background work for "millions of users". Density without
protection is fragility — an OLAP burst starves OLTP, an unbounded ESP
source grows queues forever, a flapping node is retried at full cost.
This package is the protection layer, four components deep:

* :class:`~repro.qos.admission.AdmissionController` — per-class weighted
  queues, bounded depth, deterministic load shedding
  (:class:`~repro.errors.AdmissionRejectedError`, retryable), smooth
  weighted round-robin scheduling, v2stats hotspot placement penalty;
* :class:`~repro.qos.governor.ResourceGovernor` — per-query budgets
  (rows / bytes / simulated seconds) checked at both engines' yield
  points; soft limit → ``degraded`` partial result, hard limit →
  :class:`~repro.errors.BudgetExceededError`;
* :class:`~repro.qos.breaker.CircuitBreaker` — failure-rate tripping
  with cool-down on the simulated clock, wrapped around the federation
  scan, cluster transfer, and shared-log append seams; open breakers
  fail fast with the non-retryable
  :class:`~repro.errors.CircuitOpenError`;
* :class:`~repro.qos.backpressure.BoundedBuffer` — bounded
  inter-operator stream buffers with drop-oldest / drop-newest / block
  policies and watermark metrics.

Everything runs on :class:`~repro.util.retry.SimulatedClock` and is
threaded through :mod:`repro.obs` (``qos.*`` counters/gauges), so
overload behaviour composes with :mod:`repro.chaos` fault schedules
bit-for-bit deterministically.
"""

from repro.qos.admission import (
    DEFAULT_WEIGHTS,
    QUERY_CLASSES,
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.qos.backpressure import POLICIES, BoundedBuffer
from repro.qos.breaker import (
    STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
    Transition,
)
from repro.qos.governor import QueryBudget, ResourceGovernor

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BoundedBuffer",
    "BreakerConfig",
    "CircuitBreaker",
    "DEFAULT_WEIGHTS",
    "POLICIES",
    "QUERY_CLASSES",
    "QueryBudget",
    "ResourceGovernor",
    "STATE_CODES",
    "Ticket",
    "Transition",
]
