"""The event stream processor (Figure 4: "HANA Streaming Engine" / ESP).

A :class:`StreamProcessor` pipes events through a chain of stream
operators (filter, project, derive, tumbling/sliding window aggregates)
into sinks — most importantly :class:`TableSink`, which inserts into a
column-store table so that "keywords extracted from high-throughput
twitter streams" (or sensor readings) become queryable relational data
the moment the transaction commits.
"""

from __future__ import annotations

from collections import deque

from typing import Any, Callable, Iterable

from repro.analysis.racecheck import track_fields
from repro.errors import StreamingError
from repro.qos.backpressure import BoundedBuffer

Event = dict[str, Any]


class StreamOperator:
    """Base operator: consumes one event, emits zero or more."""

    def process(self, event: Event) -> Iterable[Event]:
        raise NotImplementedError

    def flush(self) -> Iterable[Event]:
        """Emit whatever is pending at stream end (windows)."""
        return ()


class FilterOperator(StreamOperator):
    """Drop events failing the predicate."""

    def __init__(self, predicate: Callable[[Event], bool]) -> None:
        self.predicate = predicate

    def process(self, event: Event) -> Iterable[Event]:
        if self.predicate(event):
            yield event


class ProjectOperator(StreamOperator):
    """Keep only the named fields."""

    def __init__(self, fields: list[str]) -> None:
        self.fields = fields

    def process(self, event: Event) -> Iterable[Event]:
        yield {field: event.get(field) for field in self.fields}


class DeriveOperator(StreamOperator):
    """Add a computed field."""

    def __init__(self, field: str, function: Callable[[Event], Any]) -> None:
        self.field = field
        self.function = function

    def process(self, event: Event) -> Iterable[Event]:
        enriched = dict(event)
        enriched[self.field] = self.function(event)
        yield enriched


@track_fields("_states")
class TumblingWindowAggregate(StreamOperator):
    """Per-key aggregation over non-overlapping time windows.

    Emits one event per (window, key) when the window closes:
    ``{key_field, window_start, count, sum, min, max, avg}``.
    Events must arrive in non-decreasing time order.
    """

    def __init__(self, time_field: str, key_field: str, value_field: str, width: int) -> None:
        if width <= 0:
            raise StreamingError("window width must be positive")
        self.time_field = time_field
        self.key_field = key_field
        self.value_field = value_field
        self.width = width
        self._window_start: int | None = None
        self._states: dict[Any, list[float]] = {}
        self._last_time: int | None = None

    def process(self, event: Event) -> Iterable[Event]:
        timestamp = int(event[self.time_field])
        if self._last_time is not None and timestamp < self._last_time:
            raise StreamingError("tumbling window requires ordered events")
        self._last_time = timestamp
        window = (timestamp // self.width) * self.width
        if self._window_start is None:
            self._window_start = window
        while window > self._window_start:
            yield from self._emit()
            self._window_start += self.width
        value = float(event[self.value_field])
        state = self._states.get(event[self.key_field])
        if state is None:
            self._states[event[self.key_field]] = [1, value, value, value]
        else:
            state[0] += 1
            state[1] += value
            state[2] = min(state[2], value)
            state[3] = max(state[3], value)

    def _emit(self) -> Iterable[Event]:
        for key, (count, total, minimum, maximum) in sorted(
            self._states.items(), key=lambda kv: repr(kv[0])
        ):
            yield {
                self.key_field: key,
                "window_start": self._window_start,
                "count": int(count),
                "sum": total,
                "min": minimum,
                "max": maximum,
                "avg": total / count,
            }
        # clear in place, never rebind: the container may be a racecheck
        # Shared proxy and a fresh dict would silently drop the tracking
        self._states.clear()

    def flush(self) -> Iterable[Event]:
        if self._states and self._window_start is not None:
            yield from self._emit()
            self._states.clear()


@track_fields("_windows", "_alerted")
class SlidingWindowThreshold(StreamOperator):
    """Emit an alert when the mean over the last N events of a key crosses
    a threshold (the dispenser-refill trigger of Scenario V.3)."""

    def __init__(
        self,
        key_field: str,
        value_field: str,
        size: int,
        threshold: float,
        below: bool = True,
    ) -> None:
        if size <= 0:
            raise StreamingError("window size must be positive")
        self.key_field = key_field
        self.value_field = value_field
        self.size = size
        self.threshold = threshold
        self.below = below
        self._windows: dict[Any, deque[float]] = {}
        self._alerted: set[Any] = set()

    def process(self, event: Event) -> Iterable[Event]:
        key = event[self.key_field]
        window = self._windows.setdefault(key, deque(maxlen=self.size))
        window.append(float(event[self.value_field]))
        if len(window) < self.size:
            return
        mean = sum(window) / len(window)
        crossed = mean < self.threshold if self.below else mean > self.threshold
        if crossed and key not in self._alerted:
            self._alerted.add(key)
            yield {
                self.key_field: key,
                "mean": mean,
                "threshold": self.threshold,
                "alert": "below" if self.below else "above",
            }
        elif not crossed:
            self._alerted.discard(key)


class Sink:
    """Terminal consumer."""

    def consume(self, event: Event) -> None:
        raise NotImplementedError


@track_fields("events")
class CollectSink(Sink):
    """Collects events into a list (tests, debugging)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def consume(self, event: Event) -> None:
        self.events.append(event)


class TableSink(Sink):
    """Inserts events into a database table, batching commits."""

    def __init__(self, database: Any, table: str, batch_size: int = 100) -> None:
        self.database = database
        self.table = database.catalog.table(table)
        self.batch_size = batch_size
        self._txn = None
        self._pending = 0
        self.inserted = 0

    def consume(self, event: Event) -> None:
        if self._txn is None:
            self._txn = self.database.begin()
        self.table.insert(event, self._txn)
        self._pending += 1
        self.inserted += 1
        if self._pending >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if self._txn is not None:
            self.database.commit(self._txn)
            self._txn = None
            self._pending = 0


class StreamProcessor:
    """An operator chain feeding one or more sinks.

    **Concurrency contract:** one pipeline is single-threaded — operators
    keep per-key window state and sinks batch transactions, none of it
    lock-guarded. The contract is *enforced*, not hoped for: the window
    operators' and collect sink's state is ``racecheck.track_fields``
    tracked, so two threads pushing into one pipeline under
    ``REPRO_RACECHECK=1`` fail with a ``DataRaceError`` naming both
    sites. Fan in upstream (one thread per pipeline) instead.
    """

    def __init__(self, operators: list[StreamOperator], sinks: list[Sink]) -> None:
        self.operators = operators
        self.sinks = sinks
        self.events_in = 0
        self.events_out = 0

    def push(self, event: Event) -> None:
        """Feed one event through the chain."""
        self.events_in += 1
        current = [event]
        for operator in self.operators:
            next_events: list[Event] = []
            for item in current:
                next_events.extend(operator.process(item))
            current = next_events
            if not current:
                return
        for item in current:
            self.events_out += 1
            for sink in self.sinks:
                sink.consume(item)

    def push_many(self, events: Iterable[Event]) -> None:
        for event in events:
            self.push(event)

    def finish(self) -> None:
        """Flush windows and sinks at stream end."""
        for index, operator in enumerate(self.operators):
            # run flushed events through the remaining operators
            current = list(operator.flush())
            for downstream in self.operators[index + 1 :]:
                next_events: list[Event] = []
                for item in current:
                    next_events.extend(downstream.process(item))
                current = next_events
            for item in current:
                self.events_out += 1
                for sink in self.sinks:
                    sink.consume(item)
        for sink in self.sinks:
            if hasattr(sink, "flush"):
                sink.flush()


class BackpressuredProcessor:
    """A :class:`StreamProcessor` with bounded inter-operator buffers.

    Overload protection for the "millions of events" ingest path: every
    stage boundary (ingest → op₀ → … → opₙ → sinks) is a
    :class:`~repro.qos.backpressure.BoundedBuffer` with one shared
    overflow ``policy`` — ``drop_oldest`` (freshness wins),
    ``drop_newest`` (order wins), or ``block`` (lossless: a full buffer
    forces a synchronous downstream drain before the producer's event is
    admitted, the single-threaded meaning of "the producer blocks").

    Events accumulate in the ingest buffer and move when :meth:`pump`
    runs — at the *consumer's* cadence (and at :meth:`finish`), so a
    producer outrunning the pump sees the overflow policy bite; only
    ``block`` pumps automatically instead of ever dropping. The pump
    drains downstream-first, freeing sink-side capacity before upstream
    stages refill it, which minimises drops under the drop policies. Same
    single-threaded contract as :class:`StreamProcessor`; buffer state is
    race-tracked, drops and watermarks surface on each buffer's
    ``qos.buffer.*`` metrics and :meth:`snapshot`.
    """

    def __init__(
        self,
        operators: list[StreamOperator],
        sinks: list[Sink],
        capacity: int = 64,
        policy: str = "drop_oldest",
    ) -> None:
        self.operators = operators
        self.sinks = sinks
        self.policy = policy
        #: buffers[i] feeds operators[i]; buffers[len(operators)] feeds sinks
        self.buffers = [
            BoundedBuffer(f"esp.stage{index}", capacity, policy)
            for index in range(len(operators) + 1)
        ]
        self.events_in = 0
        self.events_out = 0

    def offer(self, event: Event) -> bool:
        """Admit one event into the ingest buffer; returns False when a
        drop policy rejected it. With ``block``, a full ingest buffer is
        pumped (never dropped) before the event is admitted."""
        self.events_in += 1
        ingest = self.buffers[0]
        if self.policy == "block" and ingest.full:
            self.pump()
        return ingest.offer(event)

    def offer_many(self, events: Iterable[Event]) -> int:
        """Offer a batch; returns how many were admitted."""
        return sum(1 for event in events if self.offer(event))

    def _emit(self, event: Event) -> None:
        self.events_out += 1
        for sink in self.sinks:
            sink.consume(event)

    def _offer_downstream(self, stage: int, event: Event) -> None:
        buffer = self.buffers[stage]
        if self.policy == "block" and buffer.full:
            # lossless mode: make room by draining the consumer side now
            self._drain_stage(stage)
        buffer.offer(event)

    def _drain_stage(self, stage: int) -> None:
        buffer = self.buffers[stage]
        while len(buffer):
            event = buffer.take()
            if stage == len(self.operators):
                self._emit(event)
            else:
                for produced in self.operators[stage].process(event):
                    self._offer_downstream(stage + 1, produced)

    def pump(self) -> None:
        """Move every buffered event through the chain to the sinks."""
        # free downstream capacity first, then cascade front to back
        for stage in reversed(range(len(self.buffers))):
            self._drain_stage(stage)
        for stage in range(len(self.buffers)):
            self._drain_stage(stage)

    def finish(self) -> None:
        """Drain the buffers, flush windows and sinks at stream end."""
        self.pump()
        for index, operator in enumerate(self.operators):
            for event in operator.flush():
                self._offer_downstream(index + 1, event)
            for stage in range(index + 1, len(self.buffers)):
                self._drain_stage(stage)
        for sink in self.sinks:
            if hasattr(sink, "flush"):
                sink.flush()

    @property
    def dropped(self) -> int:
        return sum(
            buffer.dropped_oldest + buffer.dropped_newest for buffer in self.buffers
        )

    def snapshot(self) -> dict[str, Any]:
        """Per-stage buffer depths, watermarks, and drop counts."""
        return {
            "events_in": self.events_in,
            "events_out": self.events_out,
            "dropped": self.dropped,
            "stages": [buffer.snapshot() for buffer in self.buffers],
        }
