"""The event stream processor (ESP)."""

from repro.streaming.esp import (
    CollectSink,
    DeriveOperator,
    FilterOperator,
    ProjectOperator,
    SlidingWindowThreshold,
    StreamProcessor,
    TableSink,
    TumblingWindowAggregate,
)

__all__ = [
    "CollectSink", "DeriveOperator", "FilterOperator", "ProjectOperator",
    "SlidingWindowThreshold", "StreamProcessor", "TableSink", "TumblingWindowAggregate",
]
