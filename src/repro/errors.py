"""Exception hierarchy for the repro data-management ecosystem.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch one base class. Sub-hierarchies mirror the major
subsystems (catalog, SQL, transactions, storage, scale-out, Hadoop).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RetryableError(Exception):
    """Mixin marking an error as *transient*: a bounded retry (with backoff)
    may clear it — the node can revive, the message can be resent, the log
    can reopen. Retry policy is type-driven (``except RetryableError``),
    never matched on message strings; combine it with the subsystem error
    (e.g. ``class TransferDroppedError(ClusterError, RetryableError)``) so
    existing ``except ClusterError`` handlers keep working."""


class CatalogError(ReproError):
    """Schema/catalog level problem (unknown or duplicate object)."""


class TableNotFoundError(CatalogError):
    """A referenced table does not exist in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"table not found: {name!r}")
        self.name = name


class ColumnNotFoundError(CatalogError):
    """A referenced column does not exist on the table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"column not found: {table!r}.{column!r}")
        self.table = table
        self.column = column


class DuplicateObjectError(CatalogError):
    """Attempt to create an object whose name is already taken."""


class SchemaError(CatalogError):
    """Row shape or value does not match the table schema."""


class TypeMismatchError(SchemaError):
    """A value cannot be coerced to the declared column type."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PlanError(SqlError):
    """The statement parsed but no valid plan could be produced."""


class ExpressionError(SqlError):
    """An expression could not be evaluated (bad types, unknown function)."""


class TransactionError(ReproError):
    """Base class for transaction-management errors."""


class TransactionAbortedError(TransactionError):
    """The transaction was rolled back (conflict, deadlock, explicit)."""


class WriteConflictError(TransactionAbortedError):
    """First-committer-wins conflict between concurrent writers."""


class InvalidTransactionStateError(TransactionError):
    """Operation not legal in the transaction's current state."""


class StorageError(ReproError):
    """Column/row store level failure."""


class PersistenceError(StorageError):
    """Savepoint, redo-log, or recovery failure."""


class PartitionError(StorageError):
    """Invalid partitioning specification or partition routing failure."""


class AgingError(ReproError):
    """Data-aging rule problem (e.g. cyclic rule dependencies)."""


class EngineError(ReproError):
    """Base class for the specialised data-processing engines."""


class TextEngineError(EngineError):
    """Text/search engine failure."""


class GraphEngineError(EngineError):
    """Graph or hierarchy engine failure."""


class GeoError(EngineError):
    """Geospatial engine failure (bad WKT, invalid geometry)."""


class TimeSeriesError(EngineError):
    """Time-series engine failure."""


class ScientificError(EngineError):
    """Scientific (linear algebra) engine failure."""


class PlanningError(EngineError):
    """Planning-extension failure (disaggregation, versions)."""


class SoeError(ReproError):
    """Base class for Scale-Out Extension errors."""


class ClusterError(SoeError):
    """Cluster membership / service orchestration failure."""


class MoveError(ClusterError):
    """Online partition movement failed. Failures in any pre-flip phase
    roll back completely (the donor stays authoritative, the recipient's
    staging copy is garbage-collected); post-flip failures roll forward."""


class MoveAbortedError(MoveError):
    """A move was aborted and rolled back; the donor remains the sole
    catalog owner of the partition."""


class NodeUnavailableError(ClusterError, RetryableError):
    """A node is (currently) down — a replica or a later retry may serve."""

    def __init__(self, node_id: str, message: str | None = None) -> None:
        super().__init__(message or f"node {node_id} is down")
        self.node_id = node_id


class TransferDroppedError(ClusterError, RetryableError):
    """A simulated network transfer was dropped (chaos); resend to clear."""


class NetworkPartitionedError(TransferDroppedError):
    """The directed link between two nodes is cut by a network partition:
    the message is dropped, not delayed. Retryable with backoff — the
    partition may heal — and a ``TransferDroppedError``, so every resend
    path (coordinator, mover, broker heartbeats) already handles it."""

    def __init__(self, source: str, target: str, message: str | None = None) -> None:
        super().__init__(
            message or f"link {source} -> {target} is partitioned"
        )
        self.source = source
        self.target = target


class MembershipError(ClusterError):
    """Membership/lease protocol misuse (unknown lease, premature fencing
    of an unreachable-but-unexpired holder, bad detector wiring)."""


class FencedError(MembershipError):
    """A writer presented a stale-epoch (or missing, or revoked) fence
    token on an ownership-mutating path. Deliberately *not* retryable —
    it punches through :class:`~repro.util.retry.RetryPolicy` exactly
    like ``CircuitOpenError``: the epoch has moved on, and re-running the
    same write re-presents the same stale token. The only recovery is to
    re-acquire a current lease (a new decision, not a retry)."""


class LeaseExpiredError(FencedError):
    """The fence token's lease TTL elapsed on the simulated clock before
    the write. Still non-retryable: an expired holder must *renew* (and
    may discover it was superseded), never blind-retry the write."""


class LogError(SoeError):
    """Distributed shared-log failure (hole, trimmed address, seal)."""


class LogStallError(LogError, RetryableError):
    """The shared log momentarily cannot accept appends; retry with backoff."""


class LogSealedError(LogError, RetryableError):
    """A segment is sealed (reconfiguration fence); reopen, then retry."""


class CoordinationError(SoeError):
    """Distributed query coordination failure."""


class DeadlineExceededError(CoordinationError):
    """The per-query deadline elapsed on the simulated clock (terminal —
    deliberately *not* retryable: the budget is spent)."""


class ChaosError(ReproError):
    """Invalid fault plan or chaos-controller misuse."""


class QosError(ReproError):
    """Base class for overload-protection (repro.qos) errors."""


class AdmissionRejectedError(QosError, RetryableError):
    """The admission controller shed this query (queue past its
    high-water mark, or a hotspot placement penalty). Retryable by
    design: backing off and resubmitting is the intended client
    response to load shedding."""

    def __init__(self, query_class: str, reason: str, message: str | None = None) -> None:
        super().__init__(
            message
            or f"admission rejected ({reason}) for class {query_class!r}"
        )
        self.query_class = query_class
        self.reason = reason


class BudgetExceededError(QosError):
    """A query blew through its hard resource budget (rows, bytes, or
    operator seconds). Terminal — deliberately *not* retryable: re-running
    the same query spends the same budget again."""


class CircuitOpenError(QosError):
    """The circuit breaker guarding this seam is open: recent calls
    failed past the threshold and the cool-down has not elapsed. Fail
    fast — deliberately *not* retryable, so retry loops cannot burn
    backoff budget against a seam known to be down."""

    def __init__(self, breaker: str, message: str | None = None) -> None:
        super().__init__(message or f"circuit breaker {breaker!r} is open")
        self.breaker = breaker


class HadoopError(ReproError):
    """Base class for the simulated Hadoop substrate."""


class HdfsError(HadoopError):
    """HDFS namespace or block-storage failure."""


class MapReduceError(HadoopError):
    """MapReduce job failure."""


class YarnError(HadoopError):
    """Resource-manager failure (no capacity, unknown application)."""


class FederationError(ReproError):
    """Smart-Data-Access / remote source failure."""


class RemoteSourceUnavailableError(FederationError, RetryableError):
    """A federated source is temporarily unreachable."""


class StreamingError(ReproError):
    """Event-stream-processor failure."""


class BackpressureError(StreamingError, RetryableError):
    """A bounded stream buffer with the ``block`` policy is full: the
    producer must pump the pipeline (drain downstream) before offering
    more events. Retryable — draining clears it."""
