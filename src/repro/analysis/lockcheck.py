"""Lock-order/race sanitizer: instrument ``threading.Lock`` during tests.

The SOE concurrency layer (v2transact broker, shared log, transaction
manager) holds several locks; two code paths acquiring the same pair in
opposite orders is a deadlock waiting for unlucky scheduling. This
module catches the *order inversion* without needing the unlucky
schedule:

* :func:`install` replaces ``threading.Lock`` with a factory returning
  :class:`InstrumentedLock` wrappers (existing locks are untouched —
  only locks created after install are tracked, which covers every
  per-object lock in this codebase since services are built inside
  tests).
* Each wrapper records, per thread, the set of locks already held when
  it is acquired; every (held → acquired) pair becomes an edge in a
  process-global acquisition graph.
* Before inserting an edge A→B the checker asks whether B can already
  reach A. If so, some other code path acquired B before A: a cycle —
  the canonical potential-deadlock report — and a
  :class:`LockOrderError` is raised at the acquisition site (strict
  mode, the default) or recorded for :func:`violations`.
* Re-acquiring a non-reentrant lock the current thread already holds
  (guaranteed self-deadlock under blocking acquire) is reported the
  same way.

Usage::

    from repro.analysis import lockcheck

    with lockcheck.active():          # install → run → uninstall
        run_concurrent_workload()

CI runs the whole test suite once with ``REPRO_LOCKCHECK=1``; the
autouse fixture in ``tests/conftest.py`` wraps every test in
:func:`active` when that variable is set (see :func:`enabled_from_env`).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import ReproError

#: the real factory, captured at import time — the sanitizer's own
#: bookkeeping must never run through an instrumented lock
_REAL_LOCK = threading.Lock

#: what an InstrumentedLock wraps: whatever ``threading.Lock`` was at
#: install time. Normally the real factory; under schedcheck it is the
#: deterministic-scheduler lock, which must stay *innermost* so a
#: contended acquire parks in the scheduler instead of the OS.
_base_factory = _REAL_LOCK


class LockOrderError(ReproError):
    """A potential deadlock: lock-order inversion or self-deadlock."""


class _Checker:
    """Process-global acquisition graph + per-thread held-lock stacks."""

    def __init__(self, strict: bool) -> None:
        self.strict = strict
        self._graph_lock = _REAL_LOCK()
        #: edge held → acquired, with one witness (thread, held site, new site)
        self._edges: dict[str, dict[str, str]] = {}
        self._held = threading.local()
        self.violations: list[str] = []

    # -- per-thread held stack ----------------------------------------------

    def _stack(self) -> list["InstrumentedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- graph ---------------------------------------------------------------

    def _reaches(self, start: str, goal: str) -> bool:
        """DFS over recorded edges: can ``start`` reach ``goal``?"""
        seen = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise LockOrderError(message)

    def before_acquire(
        self, lock: "InstrumentedLock", blocking: bool, timeout: float = -1
    ) -> None:
        stack = self._stack()
        # a re-acquire only deadlocks when it would wait forever: a
        # non-blocking or timed attempt fails and returns False instead
        if blocking and timeout < 0 and any(held is lock for held in stack):
            self._fail(
                f"self-deadlock: thread {threading.current_thread().name!r} "
                f"re-acquires non-reentrant lock {lock.name} it already holds"
            )
        with self._graph_lock:
            for held in stack:
                if held.name == lock.name:
                    continue
                witnesses = self._edges.setdefault(held.name, {})
                if lock.name in witnesses:
                    continue
                if self._reaches(lock.name, held.name):
                    direct = self._edges.get(lock.name, {})
                    first = direct.get(held.name) or "via intermediate locks"
                    self._fail(
                        "lock-order inversion (potential deadlock): thread "
                        f"{threading.current_thread().name!r} acquires {lock.name} "
                        f"while holding {held.name}, but the reverse order was "
                        f"recorded earlier ({first})"
                    )
                witnesses[lock.name] = (
                    f"thread {threading.current_thread().name!r} held "
                    f"{held.name} acquiring {lock.name}"
                )

    def after_acquire(self, lock: "InstrumentedLock") -> None:
        self._stack().append(lock)

    def after_release(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return


class InstrumentedLock:
    """Drop-in ``threading.Lock`` replacement that reports to a checker."""

    def __init__(self, checker: _Checker, name: str) -> None:
        self._inner = _base_factory()
        self._checker = checker
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        checker = self._checker
        if checker is not None:
            checker.before_acquire(self, blocking, timeout)
        got = self._inner.acquire(blocking, timeout)  # repro: allow(RA102) — this IS the lock implementation
        if got and checker is not None:
            checker.after_acquire(self)
        return got

    def release(self) -> None:
        self._inner.release()
        if self._checker is not None:
            self._checker.after_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # repro: allow(RA102) — released by __exit__

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name} {'locked' if self.locked() else 'unlocked'}>"

    def _detach(self) -> None:
        """Stop reporting (called on uninstall for still-alive locks)."""
        self._checker = None


_STATE_LOCK = _REAL_LOCK()
_current: _Checker | None = None
_created: list[InstrumentedLock] = []
_counter = 0


def _instrumented_factory() -> InstrumentedLock:
    """The ``threading.Lock`` stand-in while the sanitizer is installed."""
    global _counter
    import sys

    frame = sys._getframe(1)
    with _STATE_LOCK:
        _counter += 1
        name = f"Lock#{_counter}@{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"
        checker = _current
        if checker is None:  # uninstalled concurrently; hand out a real lock
            return _REAL_LOCK()  # type: ignore[return-value]
        lock = InstrumentedLock(checker, name)
        _created.append(lock)
    return lock


def install(strict: bool = True) -> None:
    """Start sanitizing: locks created from now on are tracked.

    ``strict=True`` raises :class:`LockOrderError` at the offending
    acquisition; ``strict=False`` only records into :func:`violations`.
    """
    global _current, _base_factory
    with _STATE_LOCK:
        if _current is not None:
            raise LockOrderError("lockcheck is already installed")
        _current = _Checker(strict)
    _base_factory = threading.Lock
    threading.Lock = _instrumented_factory  # type: ignore[assignment]


def uninstall() -> list[str]:
    """Stop sanitizing, restore ``threading.Lock``; returns violations."""
    global _current, _base_factory
    threading.Lock = _base_factory  # type: ignore[assignment]
    _base_factory = _REAL_LOCK
    with _STATE_LOCK:
        checker, _current = _current, None
        for lock in _created:
            lock._detach()
        _created.clear()
    return checker.violations if checker else []


def is_installed() -> bool:
    return _current is not None


def violations() -> list[str]:
    """Violations recorded so far by the installed checker."""
    checker = _current
    return list(checker.violations) if checker else []


def enabled_from_env() -> bool:
    """True when ``REPRO_LOCKCHECK`` requests sanitized test runs."""
    return os.environ.get("REPRO_LOCKCHECK", "").strip() in ("1", "true", "yes", "on")


@contextmanager
def active(strict: bool = True) -> Iterator[None]:
    """Install for the duration of a block (the pytest-fixture shape)."""
    install(strict)
    try:
        yield
    finally:
        uninstall()
