"""repro.analysis — runtime sanitizers for the concurrency layer.

The static half of the correctness tooling (the project-invariant
linter) lives in ``tools/analyze`` and runs over the source tree; this
package holds the *dynamic* checks that must run inside the process:

* :mod:`repro.analysis.lockcheck` — a lock-order/race sanitizer that
  wraps ``threading.Lock`` during tests, records the cross-thread
  lock-acquisition graph, and fails fast on cycles (potential
  deadlocks) and self-deadlocks. Enabled by ``REPRO_LOCKCHECK=1`` in
  CI via an autouse pytest fixture.
* :mod:`repro.analysis.racecheck` — a happens-before data-race
  sanitizer (FastTrack-style vector clocks with the epoch
  optimisation). Lock acquire/release, ``Thread.start``/``join``,
  ``queue.Queue`` hand-offs, and the SOE message seams establish
  happens-before edges; state wrapped by
  :func:`repro.analysis.racecheck.track_fields` records read/write
  epochs, and an access with no happens-before edge from its
  predecessor raises :class:`~repro.analysis.racecheck.DataRaceError`.
  Enabled by ``REPRO_RACECHECK=1`` (install lockcheck first when
  combining the two).
* :mod:`repro.analysis.plancheck` — a verifier over the ``QueryPlan``
  IR proving schema soundness, estimate sanity, plan-cache safety, and
  governor charge coverage. Always consulted at plan-cache insert (a
  failing entry is never cached); ``REPRO_PLANCHECK=1`` additionally
  verifies every fresh plan and every cache-hit binding, escalating
  violations to :class:`~repro.analysis.plancheck.PlanCheckError`.
* :mod:`repro.analysis.schedcheck` — a bounded model checker: a
  deterministic scheduler serializes a multi-threaded test and a DFS
  explorer re-executes it over *every* interleaving up to a preemption
  bound (sleep-set pruned), running lockcheck + strict racecheck +
  deadlock/livelock oracles on each schedule. Failing schedules replay
  bit-for-bit via ``REPRO_SCHEDCHECK_REPLAY=<fingerprint>``.
* :mod:`repro.analysis.events` — the shared interesting-event registry:
  the single table of concurrency seams (locks, threads, queues,
  tracked fields, SOE message fences) racecheck instruments and
  schedcheck yields at, so the two can never drift apart.
"""

from repro.analysis import events, plancheck, schedcheck
from repro.analysis.lockcheck import (
    LockOrderError,
    active,
    enabled_from_env,
    install,
    uninstall,
)
from repro.analysis.plancheck import PlanCheckError, PlanFinding
from repro.analysis.racecheck import DataRaceError, Shared, track_fields
from repro.analysis.schedcheck import SchedCheckError

__all__ = [
    "LockOrderError",
    "PlanCheckError",
    "PlanFinding",
    "SchedCheckError",
    "events",
    "plancheck",
    "schedcheck",
    "DataRaceError",
    "Shared",
    "track_fields",
    "active",
    "enabled_from_env",
    "install",
    "uninstall",
]
