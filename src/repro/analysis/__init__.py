"""repro.analysis — runtime sanitizers for the concurrency layer.

The static half of the correctness tooling (the project-invariant
linter) lives in ``tools/analyze`` and runs over the source tree; this
package holds the *dynamic* checks that must run inside the process:

* :mod:`repro.analysis.lockcheck` — a lock-order/race sanitizer that
  wraps ``threading.Lock`` during tests, records the cross-thread
  lock-acquisition graph, and fails fast on cycles (potential
  deadlocks) and self-deadlocks. Enabled by ``REPRO_LOCKCHECK=1`` in
  CI via an autouse pytest fixture.
"""

from repro.analysis.lockcheck import (
    LockOrderError,
    active,
    enabled_from_env,
    install,
    uninstall,
)

__all__ = [
    "LockOrderError",
    "active",
    "enabled_from_env",
    "install",
    "uninstall",
]
