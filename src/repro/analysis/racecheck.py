"""Happens-before data-race sanitizer (FastTrack-style vector clocks).

PR 2's :mod:`repro.analysis.lockcheck` catches lock-*order* bugs, but an
unguarded read racing a guarded write never inverts any order — it is
invisible to a lock-graph checker. This module finds exactly those races
from a *single* test run, no unlucky schedule required, by tracking the
happens-before (HB) relation the program actually establishes:

* every thread carries a **vector clock** ``C_t`` (thread → logical time);
* synchronization seams publish/adopt clocks: a lock release joins the
  releaser's clock into the lock's clock and an acquire joins it back
  (:class:`TrackedLock`, installed as the ``threading.Lock`` factory);
  ``Thread.start``/``join`` edge parent↔child; ``queue.Queue.put``/``get``
  edge producer→consumer; the SOE message seams the chaos controller
  already hooks (``SimulatedCluster.transfer``,
  ``SharedLog.append``) act as fences, mirroring the serialisation
  points of the paper's Figure 3 services;
* guarded state is wrapped in a :class:`Shared` proxy (installed by the
  :func:`track_fields` class decorator on the SOE services, the
  transaction manager, and the streaming operators) that records
  **read/write epochs** per container, with the FastTrack optimisation:
  a variable's reads are a single epoch ``(tid, clock)`` until two
  threads read concurrently, only then promoting to a full read vector —
  the common same-thread case is one tuple comparison
  (``install(full_vc=True)`` disables the optimisation; benchmark E24
  measures the difference);
* an access whose predecessor epoch is *not* ⊑ the current thread's
  clock has no happens-before edge — a data race.
  :class:`DataRaceError` carries both access sites (strict mode, the
  default) or the report accumulates into :func:`violations`.

Usage mirrors lockcheck::

    from repro.analysis import racecheck

    with racecheck.active():
        run_concurrent_workload()

CI runs the concurrency-heavy suites with ``REPRO_RACECHECK=1``; the
autouse fixture in ``tests/conftest.py`` wraps every test in
:func:`active` when that variable is set, and ``REPRO_RACECHECK_REPORT``
names a JSON file for the per-session violations report (uploaded as a
CI artifact). Racecheck composes with lockcheck: install lockcheck
first and racecheck's lock factory wraps lockcheck's instrumented
locks, so one run checks both lock order and happens-before.

The seam list itself is not private to this module: it lives in
:mod:`repro.analysis.events`, the shared interesting-event registry,
which :mod:`repro.analysis.schedcheck` consumes as its yield points —
an event worth a happens-before edge is exactly an event worth a
schedule decision.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.analysis import events
from repro.errors import ReproError

#: the raw lock primitive — detector bookkeeping must never be tracked
_RAW_LOCK = threading._allocate_lock

Epoch = tuple[int, int]  # (tid, clock)


class DataRaceError(ReproError):
    """Two accesses to shared state with no happens-before edge."""


def _hb(epoch: Epoch | None, clock: dict[int, int]) -> bool:
    """Does ``epoch`` happen-before a thread whose vector clock is ``clock``?"""
    if epoch is None:
        return True
    return epoch[1] <= clock.get(epoch[0], 0)


def _join(into: dict[int, int], other: dict[int, int]) -> None:
    for tid, clock in other.items():
        if clock > into.get(tid, 0):
            into[tid] = clock


#: frames to elide from reported sites: this module, the shared event
#: dispatch, and threading internals
_SKIP_FILES = (__file__, events.__file__, threading.__file__)


def _site() -> str:
    """A short ``file:line in func`` chain of the current access site,
    skipping the detector's own frames (cheap: no linecache I/O)."""
    frame = sys._getframe(1)
    parts: list[str] = []
    while frame is not None and len(parts) < 3:
        code = frame.f_code
        if code.co_filename not in _SKIP_FILES:
            parts.append(
                f"{os.path.basename(code.co_filename)}:{frame.f_lineno} "
                f"in {code.co_name}"
            )
        frame = frame.f_back
    return " <- ".join(parts) if parts else "<unknown>"


class _VarState:
    """FastTrack per-variable state: one write epoch, epoch-or-vector reads."""

    __slots__ = (
        "name",
        "write_epoch",
        "write_site",
        "write_thread",
        "read_epoch",
        "read_site",
        "read_thread",
        "read_vc",
        "read_sites",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.write_epoch: Epoch | None = None
        self.write_site = ""
        self.write_thread = ""
        self.read_epoch: Epoch | None = None
        self.read_site = ""
        self.read_thread = ""
        self.read_vc: dict[int, int] | None = None
        self.read_sites: dict[int, tuple[str, str]] = {}


class _Detector:
    """Vector clocks per thread, clocks per sync object, FastTrack checks."""

    def __init__(self, strict: bool, full_vc: bool) -> None:
        self.strict = strict
        self.full_vc = full_vc
        self.violations: list[str] = []
        self._state_lock = _RAW_LOCK()
        self._local = threading.local()
        self._next_tid = 0
        #: tid -> (thread name, live vector clock); the clock dict is the
        #: same object the owning thread mutates, so joins at ``join()``
        #: time see the thread's final state
        self._threads: dict[int, tuple[str, dict[int, int]]] = {}
        #: id(sync object) -> (strong ref, vector clock)
        self._sync: dict[int, tuple[Any, dict[int, int]]] = {}
        self.reads_checked = 0
        self.writes_checked = 0
        self.epoch_fast_hits = 0

    # -- thread registry -----------------------------------------------------

    def _state(self) -> tuple[int, dict[int, int]]:
        """(tid, vector clock) of the calling thread, registering on first
        use. Caller holds ``self._state_lock``.

        Identity is ``get_ident()`` only — calling
        ``threading.current_thread()`` here would deadlock: a child
        thread's very first tracked access is ``Event.set`` inside
        ``_bootstrap_inner`` *before* the thread is in ``_active``, so
        ``current_thread()`` fabricates a ``_DummyThread`` whose
        ``__init__`` builds another Event → another instrumented lock →
        re-entry into this (non-reentrant) state lock."""
        state = getattr(self._local, "state", None)
        if state is None:
            tid = self._next_tid
            self._next_tid += 1
            clock: dict[int, int] = {tid: 1}
            main = threading.main_thread()
            name = main.name if main.ident == threading.get_ident() else f"thread#{tid}"
            self._threads[tid] = (name, clock)
            state = (tid, clock)
            self._local.state = state
        return state

    def register_thread(self, thread: threading.Thread) -> None:
        """Adopt the ``start()``-time parent clock snapshot; runs first on
        the child thread (the ``run()`` wrapper the patched start
        installs, i.e. after ``_bootstrap_inner`` registered the thread)."""
        with self._state_lock:
            tid, clock = self._state()
            parent = getattr(thread, "_racecheck_parent_vc", None)
            if parent is not None:
                _join(clock, parent)
            thread._racecheck_tid = tid  # type: ignore[attr-defined]
            self._threads[tid] = (thread.name, clock)

    def _thread_name(self, tid: int) -> str:
        entry = self._threads.get(tid)
        return entry[0] if entry else f"thread#{tid}"

    # -- synchronization edges ----------------------------------------------

    def _sync_vc(self, obj: Any) -> dict[int, int]:
        entry = self._sync.get(id(obj))
        if entry is None or entry[0] is not obj:
            entry = (obj, {})
            self._sync[id(obj)] = entry
        return entry[1]

    def acquire_edge(self, obj: Any) -> None:
        """Adopt the sync object's clock (lock acquire, queue get)."""
        with self._state_lock:
            _tid, clock = self._state()
            _join(clock, self._sync_vc(obj))

    def release_edge(self, obj: Any) -> None:
        """Publish the thread's clock into the sync object (lock release,
        queue put), then advance the thread's own epoch."""
        with self._state_lock:
            tid, clock = self._state()
            _join(self._sync_vc(obj), clock)
            clock[tid] += 1

    def fence(self, obj: Any) -> None:
        """Bidirectional edge for message seams: successive users of the
        seam are totally ordered (the SOE transfer / log-append shape)."""
        with self._state_lock:
            tid, clock = self._state()
            vc = self._sync_vc(obj)
            _join(clock, vc)
            _join(vc, clock)
            clock[tid] += 1

    def on_thread_start(self, thread: threading.Thread) -> None:
        with self._state_lock:
            tid, clock = self._state()
            thread._racecheck_parent_vc = dict(clock)  # type: ignore[attr-defined]
            clock[tid] += 1

    def on_thread_join(self, thread: threading.Thread) -> None:
        child_tid = getattr(thread, "_racecheck_tid", None)
        if child_tid is None:
            return  # child never touched tracked state
        with self._state_lock:
            _tid, clock = self._state()
            entry = self._threads.get(child_tid)
            if entry is not None:
                _join(clock, entry[1])

    # -- access checks (FastTrack) -------------------------------------------

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise DataRaceError(message)

    def read(self, var: _VarState) -> None:
        with self._state_lock:
            tid, clock = self._state()
            self.reads_checked += 1
            own = clock[tid]
            if not self.full_vc and var.read_epoch == (tid, own):
                self.epoch_fast_hits += 1
                return  # same-epoch read: already checked
            if not _hb(var.write_epoch, clock):
                self._fail(
                    f"data race on {var.name}: read in thread "
                    f"{self._thread_name(tid)!r} at [{_site()}] has no "
                    f"happens-before edge from the write in thread "
                    f"{var.write_thread!r} at [{var.write_site}]"
                )
            site = _site()
            if self.full_vc or var.read_vc is not None:
                if var.read_vc is None:
                    var.read_vc = {}
                    if var.read_epoch is not None:
                        var.read_vc[var.read_epoch[0]] = var.read_epoch[1]
                        var.read_sites.setdefault(
                            var.read_epoch[0], (var.read_thread, var.read_site)
                        )
                        var.read_epoch = None
                var.read_vc[tid] = own
                var.read_sites[tid] = (self._thread_name(tid), site)
            elif (
                var.read_epoch is None
                or var.read_epoch[0] == tid
                or _hb(var.read_epoch, clock)
            ):
                # the FastTrack epoch case: one reader at a time
                var.read_epoch = (tid, own)
                var.read_thread = self._thread_name(tid)
                var.read_site = site
            else:
                # two concurrent readers: promote to a read vector
                var.read_vc = {var.read_epoch[0]: var.read_epoch[1], tid: own}
                var.read_sites = {
                    var.read_epoch[0]: (var.read_thread, var.read_site),
                    tid: (self._thread_name(tid), site),
                }
                var.read_epoch = None

    def write(self, var: _VarState) -> None:
        with self._state_lock:
            tid, clock = self._state()
            self.writes_checked += 1
            own = clock[tid]
            if var.write_epoch == (tid, own):
                self.epoch_fast_hits += 1
                return  # same-epoch write: already checked
            if not _hb(var.write_epoch, clock):
                self._fail(
                    f"data race on {var.name}: write in thread "
                    f"{self._thread_name(tid)!r} at [{_site()}] has no "
                    f"happens-before edge from the write in thread "
                    f"{var.write_thread!r} at [{var.write_site}]"
                )
            if var.read_vc is not None:
                for reader, at in var.read_vc.items():
                    if at > clock.get(reader, 0):
                        name, site = var.read_sites.get(reader, ("?", "?"))
                        self._fail(
                            f"data race on {var.name}: write in thread "
                            f"{self._thread_name(tid)!r} at [{_site()}] has no "
                            f"happens-before edge from the read in thread "
                            f"{name!r} at [{site}]"
                        )
            elif not _hb(var.read_epoch, clock):
                self._fail(
                    f"data race on {var.name}: write in thread "
                    f"{self._thread_name(tid)!r} at [{_site()}] has no "
                    f"happens-before edge from the read in thread "
                    f"{var.read_thread!r} at [{var.read_site}]"
                )
            var.write_epoch = (tid, own)
            var.write_thread = self._thread_name(tid)
            var.write_site = _site()
            # after an exclusive write every earlier read happens-before it
            var.read_epoch = None
            var.read_vc = None
            var.read_sites = {}

    def stats(self) -> dict[str, int]:
        return {
            "reads_checked": self.reads_checked,
            "writes_checked": self.writes_checked,
            "epoch_fast_hits": self.epoch_fast_hits,
            "threads_seen": self._next_tid,
        }


# --------------------------------------------------------------------------
# tracked state: the Shared proxy and the @track_fields decorator
# --------------------------------------------------------------------------

#: container methods that mutate (everything else delegated is a read)
_WRITE_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "appendleft", "extendleft",
        "sort", "reverse",
    }
)

_MISSING = object()


def _on_read(var: _VarState) -> None:
    events.notify_field(var, False)


def _on_write(var: _VarState) -> None:
    events.notify_field(var, True)


def _detector_field_listener(var: _VarState, is_write: bool) -> None:
    """The race detector's tap on the shared field-access dispatch
    (:func:`repro.analysis.events.notify_field`); registered once at
    import and a no-op while the sanitizer is not installed. Other tools
    (schedcheck's scheduler) register their own listeners *in front*, so
    a schedule decision is taken before the access is checked."""
    detector = _current
    if detector is not None:
        if is_write:
            detector.write(var)
        else:
            detector.read(var)


events.add_field_listener(_detector_field_listener)


class Shared:
    """A delegating proxy that reports container reads/writes.

    Granularity is the whole container — exactly the unit the ``with
    self._lock`` convention guards — so a guarded write racing an
    unguarded read is caught regardless of which keys they touch.
    Mutating methods (``append``/``update``/``setdefault``/…) and the
    store/delete dunders count as writes; everything else is a read.
    """

    __slots__ = ("_obj", "_var")

    def __init__(self, obj: Any, name: str) -> None:
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_var", _VarState(name))

    def unwrap(self) -> Any:
        """The raw container (escape hatch; accesses are untracked)."""
        return self._obj

    def __getattr__(self, name: str) -> Any:
        target = getattr(self._obj, name)
        var = self._var
        if not callable(target):
            _on_read(var)
            return target
        if name in _WRITE_METHODS:
            @functools.wraps(target)
            def method(*args: Any, **kwargs: Any) -> Any:
                _on_write(var)
                return target(*args, **kwargs)
        else:
            @functools.wraps(target)
            def method(*args: Any, **kwargs: Any) -> Any:
                _on_read(var)
                return target(*args, **kwargs)
        return method

    def __getitem__(self, key: Any) -> Any:
        _on_read(self._var)
        return self._obj[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        _on_write(self._var)
        self._obj[key] = value

    def __delitem__(self, key: Any) -> None:
        _on_write(self._var)
        del self._obj[key]

    def __contains__(self, key: Any) -> bool:
        _on_read(self._var)
        return key in self._obj

    def __len__(self) -> int:
        _on_read(self._var)
        return len(self._obj)

    def __iter__(self) -> Iterator[Any]:
        _on_read(self._var)
        return iter(self._obj)

    def __bool__(self) -> bool:
        _on_read(self._var)
        return bool(self._obj)

    def __eq__(self, other: Any) -> bool:
        _on_read(self._var)
        if isinstance(other, Shared):
            other = other._obj
        return self._obj == other

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return f"<Shared {self._var.name} {self._obj!r}>"


def track_fields(*names: str) -> Callable[[type], type]:
    """Class decorator: wrap the named container attributes in
    :class:`Shared` proxies on construction *while racecheck is
    installed*. When the sanitizer is off, instances are built exactly as
    before — zero overhead, mirroring lockcheck's created-after-install
    rule. Apply outermost (above ``@dataclass``)::

        @track_fields("_services")
        @dataclass
        class DiscoveryService: ...

    Tracked fields must not be rebound after ``__init__`` (use
    ``.clear()``/``.update()`` instead of assigning a fresh container) or
    the proxy — and tracking — is silently dropped.
    """

    def decorate(cls: type) -> type:
        original_init = cls.__init__

        @functools.wraps(original_init)
        def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
            original_init(self, *args, **kwargs)
            # proxies are built while the detector is installed, or while
            # another events-registry consumer (schedcheck without the
            # race oracle) asked for field dispatch
            if _current is not None or events.field_proxies_requested():
                for name in names:
                    value = getattr(self, name, _MISSING)
                    if value is not _MISSING and not isinstance(value, Shared):
                        object.__setattr__(
                            self, name, Shared(value, f"{cls.__name__}.{name}")
                        )

        cls.__init__ = __init__  # type: ignore[method-assign]
        cls.__racecheck_fields__ = names  # type: ignore[attr-defined]
        return cls

    return decorate


# --------------------------------------------------------------------------
# instrumentation: locks, threads, queues, SOE seams
# --------------------------------------------------------------------------


class TrackedLock:
    """Lock wrapper contributing release→acquire happens-before edges.

    ``inner`` is whatever the previously-installed ``threading.Lock``
    factory produced — a raw lock, or lockcheck's ``InstrumentedLock``
    when both sanitizers are active (install lockcheck first)."""

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)  # repro: allow(RA102) — this IS the lock implementation
        if got:
            detector = _current
            if detector is not None:
                detector.acquire_edge(self)
        return got

    def release(self) -> None:
        # publish the clock *before* the inner release so the next
        # acquirer observes it
        detector = _current
        if detector is not None:
            detector.release_edge(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # repro: allow(RA102) — released by __exit__

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {self.name}>"


_STATE_LOCK = _RAW_LOCK()
_current: _Detector | None = None
_counter = 0
#: (owner object, attribute name, original) for every patch applied by install()
_patches: list[tuple[Any, str, Any]] = []
#: violations carried across per-test install/uninstall cycles, for the
#: end-of-session report (see write_report)
_session_violations: list[str] = []
_session_stats: dict[str, int] = {}


def _tracked_lock_factory() -> TrackedLock:
    global _counter
    frame = sys._getframe(1)
    with _STATE_LOCK:
        _counter += 1
        name = (
            f"Lock#{_counter}@{os.path.basename(frame.f_code.co_filename)}"
            f":{frame.f_lineno}"
        )
        prev_factory = _prev_lock_factory
    return TrackedLock(prev_factory(), name)


_prev_lock_factory: Callable[[], Any] = threading.Lock


def _patch(owner: Any, attr: str, replacement: Any) -> None:
    _patches.append((owner, attr, getattr(owner, attr)))
    setattr(owner, attr, replacement)


def _install_thread_hooks() -> None:
    original_start = threading.Thread.start
    original_join = threading.Thread.join

    @functools.wraps(original_start)
    def start(self: threading.Thread) -> None:
        detector = _current
        if detector is not None:
            detector.on_thread_start(self)
            original_run = self.run

            @functools.wraps(original_run)
            def run() -> None:
                inner = _current
                if inner is not None:
                    inner.register_thread(self)
                original_run()

            # instance attribute shadows the method only for this thread;
            # registration must happen on the child, after _bootstrap_inner
            # put it in threading._active
            self.run = run  # type: ignore[method-assign]
        original_start(self)

    @functools.wraps(original_join)
    def join(self: threading.Thread, timeout: float | None = None) -> None:
        original_join(self, timeout)
        detector = _current
        if detector is not None and not self.is_alive():
            detector.on_thread_join(self)

    _patch(threading.Thread, "start", start)
    _patch(threading.Thread, "join", join)


def _edge_wrapper(original: Callable[..., Any], kind: str) -> Callable[..., Any]:
    """Wrap one patchable seam with the HB edge its registry kind
    prescribes. ``release`` publishes before the operation (the next
    acquirer must see the producer's clock), ``acquire`` adopts after it
    (the consumer joins only once the handoff really happened), ``fence``
    totally orders successive users."""
    if kind == "release":

        @functools.wraps(original)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            detector = _current
            if detector is not None:
                detector.release_edge(self)
            return original(self, *args, **kwargs)

    elif kind == "acquire":

        @functools.wraps(original)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            result = original(self, *args, **kwargs)
            detector = _current
            if detector is not None:
                detector.acquire_edge(self)
            return result

    elif kind == "fence":

        @functools.wraps(original)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            detector = _current
            if detector is not None:
                detector.fence(self)
            return original(self, *args, **kwargs)

    else:  # pragma: no cover - registry misuse is a programming error
        raise ReproError(f"no edge instrumentation for seam kind {kind!r}")
    return wrapper


def _install_registry_seams() -> None:
    """Instrument every patchable seam of the shared interesting-event
    registry (:mod:`repro.analysis.events`): queue handoffs and the SOE
    message seams the chaos controller already hooks. The registry is the
    single seam table racecheck and schedcheck both consume — add a seam
    there and both tools pick it up. Thread start/join need ``run()``
    surgery and install in :func:`_install_thread_hooks`; the lock seams
    install through the ``threading.Lock`` factory."""
    for seam in events.seams(patchable=True):
        if seam.kind in ("start", "join"):
            continue  # bespoke: _install_thread_hooks
        owner, attr = events.resolve(seam)
        _patch(owner, attr, _edge_wrapper(getattr(owner, attr), seam.kind))


# --------------------------------------------------------------------------
# lifecycle
# --------------------------------------------------------------------------


def install(strict: bool = True, full_vc: bool = False) -> None:
    """Start sanitizing: locks/threads/queues/seams report HB edges and
    ``track_fields`` state constructed from now on records access epochs.

    ``strict=True`` raises :class:`DataRaceError` at the racing access;
    ``strict=False`` accumulates into :func:`violations`. ``full_vc=True``
    disables the FastTrack read-epoch optimisation (full read vectors for
    every variable — the E24 benchmark's comparison arm).
    """
    global _current, _prev_lock_factory
    with _STATE_LOCK:
        if _current is not None:
            raise DataRaceError("racecheck is already installed")
        _current = _Detector(strict, full_vc)
        _prev_lock_factory = threading.Lock
    _patch(threading, "Lock", _tracked_lock_factory)
    _install_thread_hooks()
    _install_registry_seams()


def uninstall() -> list[str]:
    """Stop sanitizing, undo every patch; returns the violations."""
    global _current
    with _STATE_LOCK:
        detector, _current = _current, None
        for owner, attr, original in reversed(_patches):
            setattr(owner, attr, original)
        _patches.clear()
    if detector is None:
        return []
    _session_violations.extend(detector.violations)
    for key, value in detector.stats().items():
        _session_stats[key] = _session_stats.get(key, 0) + value
    return list(detector.violations)


def is_installed() -> bool:
    return _current is not None


def current_detector() -> Any:
    """The installed detector, or ``None``. Semi-internal: schedcheck
    drives thread start-edge/registration through it directly so detector
    tids are assigned at policy-chosen points instead of OS-racy ones."""
    return _current


def violations() -> list[str]:
    """Violations recorded so far by the installed detector."""
    detector = _current
    return list(detector.violations) if detector else []


def stats() -> dict[str, int]:
    """Access/edge counters of the installed detector (empty when off)."""
    detector = _current
    return detector.stats() if detector else {}


def enabled_from_env() -> bool:
    """True when ``REPRO_RACECHECK`` requests sanitized test runs."""
    return os.environ.get("REPRO_RACECHECK", "").strip() in ("1", "true", "yes", "on")


def write_report(path: str | Path) -> None:
    """Dump the session-accumulated violations report as JSON (the CI
    artifact: ``REPRO_RACECHECK_REPORT=racecheck-report.json``)."""
    payload = {
        "violations": list(_session_violations),
        "violation_count": len(_session_violations),
        "stats": dict(_session_stats),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@contextmanager
def active(strict: bool = True, full_vc: bool = False) -> Iterator[None]:
    """Install for the duration of a block (the pytest-fixture shape)."""
    install(strict, full_vc)
    try:
        yield
    finally:
        uninstall()
