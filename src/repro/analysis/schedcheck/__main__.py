"""CLI: ``python -m repro.analysis.schedcheck`` — explore the protocol
harnesses, print exploration stats, and exit non-zero on any failing
schedule. The CI ``schedcheck`` job drives this with ``--all --json``.

Examples::

    python -m repro.analysis.schedcheck --list
    python -m repro.analysis.schedcheck --harness mover_flip_drain --bound 2
    python -m repro.analysis.schedcheck --all --bound 2 --wall-budget 50
    python -m repro.analysis.schedcheck --harness sequencer_append \\
        --mutation sequencer-tail-race --replay v1:1.0.1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.analysis.schedcheck.explore import explore, replay
from repro.analysis.schedcheck.harnesses import HARNESSES

MUTATION_ENV = "REPRO_SCHEDCHECK_MUTATION"


def _human(report: dict[str, Any]) -> str:
    status = "ok" if report["ok"] else "FAIL"
    line = (
        f"{report['harness']}: {status} — {report['schedules']} schedules "
        f"({report['runs']} runs) at bound {report['max_preemptions']}, "
        f"{report['pruned_branches']} sleep-pruned + "
        f"{report['budget_skipped']} budget-skipped branches "
        f"(pruning ratio {report['pruning_ratio']:.2f}), "
        f"{report['wall_seconds']:.2f}s"
        + ("" if report["complete"] else " [capped]")
    )
    for failure in report["failures"]:
        headline = failure["message"].splitlines()[0] if failure["message"] else "(no message)"
        line += (
            f"\n  failing schedule {failure['fingerprint']} "
            f"[bound {failure['bound']}]: {failure['error_type']}: {headline}"
        )
    return line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.schedcheck",
        description=(
            "Bounded model checking of the SOE protocol harnesses: explore "
            "every thread interleaving up to a preemption bound under the "
            "racecheck/lockcheck/deadlock/livelock oracles."
        ),
    )
    parser.add_argument("--harness", action="append", default=[], help="harness name (repeatable)")
    parser.add_argument("--all", action="store_true", help="run every registered harness")
    parser.add_argument("--list", action="store_true", help="list harnesses and exit")
    parser.add_argument("--bound", type=int, default=2, help="max preemptions (default 2)")
    parser.add_argument("--max-schedules", type=int, default=None, help="cap schedules per harness")
    parser.add_argument(
        "--wall-budget", type=float, default=None,
        help="wall-clock seconds per harness before the search caps itself",
    )
    parser.add_argument("--step-budget", type=int, default=20_000, help="livelock step budget per run")
    parser.add_argument("--replay", default=None, help="replay one fingerprint instead of exploring")
    parser.add_argument(
        "--mutation", default=None,
        help=f"set {MUTATION_ENV} (seeded-bug calibration, e.g. sequencer-tail-race)",
    )
    parser.add_argument("--no-racecheck", action="store_true", help="skip the race oracle")
    parser.add_argument("--no-lockcheck", action="store_true", help="skip the lock-order oracle")
    parser.add_argument("--json", dest="json_out", default=None, help="write a JSON report to this path")
    parser.add_argument(
        "--keep-going", action="store_true",
        help="explore past the first failing schedule of each harness",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, doc) in HARNESSES.items():
            print(f"{name:30s} {doc}")
        return 0

    names = list(HARNESSES) if args.all else args.harness
    if not names:
        parser.error("pick --harness NAME (repeatable), --all, or --list")
    unknown = [n for n in names if n not in HARNESSES]
    if unknown:
        parser.error(f"unknown harness(es) {unknown}; see --list")

    if args.mutation:
        os.environ[MUTATION_ENV] = args.mutation

    try:
        reports: list[dict[str, Any]] = []
        failed = False
        for name in names:
            fn = HARNESSES[name][0]
            if args.replay:
                result = replay(
                    fn,
                    args.replay,
                    step_budget=args.step_budget,
                    use_lockcheck=not args.no_lockcheck,
                    use_racecheck=not args.no_racecheck,
                )
                ok = result.failure is None
                failed = failed or not ok
                print(
                    f"{name}: replay {result.fingerprint} → "
                    + ("ok" if ok else f"{type(result.failure).__name__}: {result.failure}")
                )
                reports.append(
                    {
                        "harness": name,
                        "ok": ok,
                        "replayed": result.fingerprint,
                        "error": None if ok else str(result.failure),
                        "trace_len": len(result.trace),
                    }
                )
                continue
            report = explore(
                fn,
                name=name,
                max_preemptions=args.bound,
                step_budget=args.step_budget,
                max_schedules=args.max_schedules,
                max_seconds=args.wall_budget,
                use_lockcheck=not args.no_lockcheck,
                use_racecheck=not args.no_racecheck,
                stop_on_failure=not args.keep_going,
            )
            payload = report.to_dict()
            reports.append(payload)
            failed = failed or not report.ok
            print(_human(payload))
    finally:
        if args.mutation:
            os.environ.pop(MUTATION_ENV, None)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump({"reports": reports}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
