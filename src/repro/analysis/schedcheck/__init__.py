"""``repro.analysis.schedcheck`` — a bounded model checker for SOE protocols.

A CHESS/loom-style systematic concurrency tester: the scheduler
(:mod:`.scheduler`) serializes a multi-threaded test onto one OS thread
and yields at exactly the seams racecheck instruments (the shared
registry in :mod:`repro.analysis.events`); the explorer (:mod:`.explore`)
re-executes the test once per schedule, searching all interleavings up
to a preemption bound with sleep-set pruning, running lockcheck + strict
racecheck + built-in deadlock/livelock detection on every one. Failing
schedules come back as fingerprints that replay bit-for-bit.

Entry points:

* :func:`explore` / :func:`replay` — the library API;
* :func:`exhaustive` — the pytest decorator (honours
  ``REPRO_SCHEDCHECK_REPLAY=<fingerprint>``);
* ``python -m repro.analysis.schedcheck`` — the CLI over the protocol
  harnesses in :mod:`.harnesses`;
* see docs/ANALYSIS.md, "Systematic exploration".
"""

from repro.analysis.schedcheck.explore import (
    REPLAY_ENV,
    ExplorationReport,
    ReplayResult,
    ScheduleFailure,
    exhaustive,
    explore,
    fingerprint_of,
    parse_fingerprint,
    replay,
)
from repro.analysis.schedcheck.scheduler import (
    DeadlockError,
    LivelockError,
    Op,
    SchedCheckError,
    Scheduler,
    dependent,
    instrument,
    instrument_locks,
)

__all__ = [
    "REPLAY_ENV",
    "DeadlockError",
    "ExplorationReport",
    "LivelockError",
    "Op",
    "ReplayResult",
    "SchedCheckError",
    "ScheduleFailure",
    "Scheduler",
    "dependent",
    "exhaustive",
    "explore",
    "fingerprint_of",
    "instrument",
    "instrument_locks",
    "parse_fingerprint",
    "replay",
]
