"""Small-model harnesses: the four SOE/QoS protocols worth model-checking.

Each harness is a zero-argument callable that builds a *tiny* instance of
one protocol (model checking pays exponentially for every extra thread
and synchronization op), runs a two-to-three-thread scenario, and asserts
the protocol's invariant at the end. :func:`repro.analysis.schedcheck.explore`
re-executes the callable once per schedule; any assertion failure, oracle
error (racecheck/lockcheck strict), deadlock, or livelock on *any*
schedule is a finding.

Threads are always given explicit names — ``threading``'s default
``Thread-N`` names use a process-global counter, which would make oracle
messages differ between runs and break bit-for-bit replay.

``sequencer_append`` doubles as the seeded-mutation harness: with
``REPRO_SCHEDCHECK_MUTATION=sequencer-tail-race`` in the environment the
:class:`~repro.soe.services.shared_log.Sequencer` re-grows the unguarded
read-increment race that racecheck found in PR 4, and schedcheck must
rediscover it within the preemption-2 bound (the calibration test that
proves the explorer actually explores).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import AdmissionRejectedError


# --------------------------------------------------------------------------
# 1. PartitionMover flip/drain vs a concurrent pinned query
# --------------------------------------------------------------------------


def mover_flip_drain() -> None:
    """Five-phase online move racing a pinned read launched at the flip.

    Invariants: the move completes (never aborts), the query reads the
    complete partition from *some* owner within one catalog retry (the
    coordinator's failover discipline), and afterwards exactly one node
    owns the partition.
    """
    from repro.soe.cluster import SimulatedCluster
    from repro.soe.movement.mover import MoveJournal, PartitionMover
    from repro.soe.partitions import hash_partition_rows
    from repro.soe.replication import DataNode
    from repro.soe.services.catalog_service import CatalogService, SoeTableMeta
    from repro.soe.services.shared_log import SharedLog
    from repro.soe.services.transaction_broker import TransactionBroker

    log = SharedLog(stripes=1, replication=1)
    broker = TransactionBroker(log)
    cluster = SimulatedCluster()
    cluster.add_node("donor")
    cluster.add_node("recipient")
    catalog = CatalogService()
    columns = ["k", "v"]
    catalog.register_table(SoeTableMeta("t", columns, ["k"], 2))
    donor = DataNode("donor", broker, mode="olap")
    recipient = DataNode("recipient", broker, mode="olap")
    nodes = {"donor": donor, "recipient": recipient}
    rows = [[i, float(i)] for i in range(4)]
    parts = hash_partition_rows(rows, columns, [0], 2, "t")
    donor.own("t", parts, [0], 2)
    for part in parts:
        catalog.place_partition("t", part.partition_id, "donor")
    pid = 0
    expected_rows = len(parts[pid])

    errors: list[str] = []
    query_thread: list[threading.Thread] = []

    def pinned_read() -> None:
        # the coordinator's shape: catalog → pin → read, with one retry
        # if the partition vanished between the catalog read and the pin
        # (the donor trimmed it after the flip)
        for _ in range(2):
            owner_id = catalog.nodes_of("t", pid)[0]
            node = nodes[owner_id]
            node.pin_partition("t", pid)
            try:
                if node.store.has_partition("t", pid):
                    seen = len(node.store.partition("t", pid))
                    if seen != expected_rows:
                        errors.append(
                            f"read {seen} rows from {owner_id}, "
                            f"expected {expected_rows}"
                        )
                    return
            finally:
                node.unpin_partition("t", pid)
        errors.append("no owner served the partition within one retry")

    def hook(state: Any) -> None:
        if state.phase == "flip":
            thread = threading.Thread(target=pinned_read, name="query")
            query_thread.append(thread)
            thread.start()

    mover = PartitionMover(
        cluster,
        catalog,
        broker,
        nodes,
        journal=MoveJournal(),
        phase_hook=hook,
        max_catchup_rounds=2,
        drain_rounds=1,
    )
    state = mover.move("t", pid, "donor", "recipient")
    for thread in query_thread:
        thread.join()
    assert not state.aborted, f"move aborted: {state.error}"
    assert errors == [], errors
    assert catalog.nodes_of("t", pid) == ["recipient"]
    assert pid in recipient.owned_partitions("t")
    assert pid not in donor.owned_partitions("t")


# --------------------------------------------------------------------------
# 2. DataNode ownership install vs replication apply
# --------------------------------------------------------------------------


def ownership_install_vs_apply() -> None:
    """``install_ownership`` racing the broker's OLTP push path.

    A recipient installs a snapshot copy (taken at ``lsn``) while a
    writer commits through the broker, whose ``_on_commit`` callback
    applies into the recipient from the writer's thread. Exactly-once:
    every key must appear exactly once afterwards, no matter where the
    install lands relative to the two commits.
    """
    from repro.soe.partitions import hash_partition_rows
    from repro.soe.replication import DataNode, make_insert
    from repro.soe.services.shared_log import SharedLog
    from repro.soe.services.transaction_broker import TransactionBroker

    log = SharedLog(stripes=1, replication=1)
    broker = TransactionBroker(log)
    recipient = DataNode("recipient", broker, mode="oltp")
    donor = DataNode("donor", broker, mode="olap")
    columns = ["k", "v"]
    rows = [[i, float(i)] for i in range(2)]
    parts = hash_partition_rows(rows, columns, [0], 1, "t")
    donor.own("t", parts, [0], 1)
    clone, lsn = donor.snapshot_partition("t", 0)

    def writer() -> None:
        broker.submit([make_insert("t", [[100, 100.0]])])
        broker.submit([make_insert("t", [[101, 101.0]])])

    thread = threading.Thread(target=writer, name="writer")
    thread.start()
    recipient.install_ownership("t", clone, [0], 1, lsn)
    thread.join()
    recipient.catch_up()

    got = sorted(row[0] for row in recipient.store.partition("t", 0).rows())
    assert got == [0, 1, 100, 101], f"rows applied wrong: {got}"


# --------------------------------------------------------------------------
# 3. PlanCache concurrent bind vs invalidate
# --------------------------------------------------------------------------


def plancache_bind_invalidate() -> None:
    """Two binders racing a table invalidation on one ``PlanCache``.

    Invariants: no oracle error on any interleaving, the accounting
    stays within capacity and consistent, and the ``q1`` entry can only
    *vanish* through the one table invalidation — though it may also
    legally survive it (the invalidator can run before the binder's
    first ``put``, or the binder can re-insert after the drop).
    """
    from repro.sql.plancache import PlanCache, PlanEntry

    cache = PlanCache(capacity=2)

    def entry_for(table: str) -> PlanEntry:
        # an opaque (non-dataclass) plan object is a legal leaf: the
        # harness checks the cache's locking, not plan instantiation
        return PlanEntry(plan=object(), slots=[], tables=frozenset({table}))

    def binder() -> None:
        for _ in range(2):
            if cache.get("q1") is None:
                cache.put("q1", entry_for("t"))

    def invalidator() -> None:
        cache.invalidate_table("t")
        cache.put("q2", entry_for("u"))

    threads = [
        threading.Thread(target=binder, name="binder"),
        threading.Thread(target=invalidator, name="invalidator"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(cache) <= 2
    assert cache.get("q2") is not None, "untouched-table entry lost"
    stats = cache.stats()
    assert stats["size"] == len(cache), "size accounting drifted"
    # one invalidate_table call can drop at most the single live q1 entry
    assert stats["invalidations"] <= 1, stats
    if "q1" not in cache:
        # capacity 2 with two keys never evicts, so only the
        # invalidation can explain a missing q1
        assert stats["invalidations"] == 1, stats


# --------------------------------------------------------------------------
# 4. AdmissionController enqueue vs shed vs drain
# --------------------------------------------------------------------------


def admission_enqueue_shed() -> None:
    """A depth-1 front door: submitter racing a drainer.

    Depending on the schedule the second submit is shed (queue still
    full) or admitted (the drainer popped first) — both are legal; what
    must hold on *every* schedule is ticket conservation:
    submitted == admitted + shed, and nothing both shed and executed.
    """
    from repro.qos.admission import AdmissionConfig, AdmissionController

    controller = AdmissionController(AdmissionConfig(queue_depth=1))

    def submitter() -> None:
        for _ in range(2):
            try:
                controller.submit("olap")
            except AdmissionRejectedError:
                pass

    def drainer() -> None:
        controller.run_one()
        controller.run_one()

    threads = [
        threading.Thread(target=submitter, name="submitter"),
        threading.Thread(target=drainer, name="drainer"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    controller.run_all()

    assert controller.conserved(), controller.snapshot()
    counts = controller.counts("olap")
    assert counts["submitted"] == 2


# --------------------------------------------------------------------------
# 5. shared-log sequencer (the seeded-mutation calibration harness)
# --------------------------------------------------------------------------


def sequencer_append() -> None:
    """Two appenders on a one-stripe log: addresses must be unique and
    the tail must account for both. Clean today; under
    ``REPRO_SCHEDCHECK_MUTATION=sequencer-tail-race`` the sequencer's
    lock is bypassed and schedcheck must find the duplicate-address /
    data-race failure within two preemptions."""
    from repro.soe.services.shared_log import SharedLog

    log = SharedLog(stripes=1, replication=1)

    def appender(tag: str) -> Callable[[], None]:
        def run() -> None:
            log.append({"who": tag})

        return run

    threads = [
        threading.Thread(target=appender("a"), name="appender-a"),
        threading.Thread(target=appender("b"), name="appender-b"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert log.tail == 2, f"tail {log.tail} after two appends"
    assert log.is_written(0) and log.is_written(1)


# --------------------------------------------------------------------------
# 6. lease flip grant vs the donor's renew/validate loop
# --------------------------------------------------------------------------


def lease_flip_fencing() -> None:
    """The mover's flip-time lease grant racing the donor holder.

    Thread ``flip`` grants the recipient the next epoch (which
    supersedes the donor) and revokes whatever is left of the donor's
    lease; thread ``donor`` keeps renewing and validating its original
    epoch-1 token, recording each outcome. Legal on every schedule: any
    *prefix* of donor successes followed only by fenced outcomes — once
    fenced, never ok again (epochs are monotone, so a stale token cannot
    resurrect). Afterwards the recipient must hold epoch 2, the donor's
    token must be dead, and the journal must satisfy the
    exactly-one-holder-per-epoch invariant.
    """
    from repro.errors import FencedError
    from repro.soe.membership.leases import LeaseManager
    from repro.util.retry import SimulatedClock

    leases = LeaseManager(clock=SimulatedClock(), ttl_seconds=100.0)
    donor_token = leases.grant("t", 0, "donor").token()
    outcomes: list[str] = []

    def donor_loop() -> None:
        for _ in range(3):
            try:
                leases.renew(donor_token)
                leases.validate(donor_token)
                outcomes.append("ok")
            except FencedError:
                outcomes.append("fenced")

    def flip() -> None:
        leases.grant("t", 0, "recipient")
        # returns False — the grant already superseded the donor — but
        # must be safe to race with the donor's renews
        leases.revoke("t", 0, "donor")

    threads = [
        threading.Thread(target=donor_loop, name="donor"),
        threading.Thread(target=flip, name="flip"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    current = leases.current("t", 0)
    assert current is not None and current.holder == "recipient", current
    assert current.epoch == 2, current
    assert leases.holder("t", 0) == "recipient"
    try:
        leases.validate(donor_token)
        raise AssertionError("stale donor token validated after the flip")
    except FencedError:
        pass
    if "fenced" in outcomes:
        first = outcomes.index("fenced")
        assert all(o == "fenced" for o in outcomes[first:]), (
            f"donor came back from the dead: {outcomes}"
        )
    assert leases.exactly_one_holder_violations() == []


#: name -> (callable, one-line description); the CLI and CI job iterate this
HARNESSES: dict[str, tuple[Callable[[], None], str]] = {
    "mover_flip_drain": (
        mover_flip_drain,
        "PartitionMover flip/drain vs a concurrent pinned query",
    ),
    "ownership_install_vs_apply": (
        ownership_install_vs_apply,
        "DataNode ownership install vs broker OLTP apply push",
    ),
    "plancache_bind_invalidate": (
        plancache_bind_invalidate,
        "PlanCache concurrent bind vs table invalidation",
    ),
    "admission_enqueue_shed": (
        admission_enqueue_shed,
        "AdmissionController enqueue/shed vs drain (ticket conservation)",
    ),
    "sequencer_append": (
        sequencer_append,
        "shared-log sequencer appends (seeded-mutation calibration)",
    ),
    "lease_flip_fencing": (
        lease_flip_fencing,
        "lease flip grant vs donor renew/validate (fencing monotone)",
    ),
}
