"""The deterministic cooperative scheduler behind ``repro.analysis.schedcheck``.

A CHESS/loom-style model checker re-executes a multi-threaded test many
times, each time forcing a different interleaving. That only works if the
test's threads never actually run concurrently: this module serializes
them onto a single *runnable token*. Every thread parks on a private gate
(a raw OS lock) and only the token holder executes; at each *yield point*
— the seams in :mod:`repro.analysis.events`: lock acquire/release, thread
start/join, queue put/get, tracked-field access, ``SharedLog.append``,
``SimulatedCluster.transfer`` — the running thread asks the scheduling
*policy* which thread runs next and hands the token over. Between yield
points threads run uninstrumented straight-line code, which is sound for
the same reason racecheck only instruments these seams: interleavings of
code that touches no shared state are equivalent.

Blocking operations are *modeled*, never performed: a thread that would
block on a lock, queue, or join instead marks itself blocked and parks in
the scheduler (``block_on``), to be woken by the matching ``notify``.
Because the scheduler therefore always knows the complete blocked-set, it
detects **deadlock** exactly (every live thread blocked) and **livelock**
by step budget (the policy keeps choosing but nothing terminates). Both
are reported as failures of the schedule being explored.

Known model limits (documented, asserted nowhere):

* timed waits (``Lock.acquire(timeout=...)``, ``Queue.get(timeout=...)``,
  ``Thread.join(timeout=...)``) are modeled as untimed — time is
  simulated in this codebase, so a schedule where the timeout fires is a
  schedule where the wakeup is delayed forever, i.e. covered by deadlock
  detection;
* ``threading.Condition``/``Event`` park on raw locks the scheduler
  cannot see; harnesses must synchronize with locks, queues, joins, or
  tracked fields (everything under ``src/repro`` already does).
"""

from __future__ import annotations

import queue as queue_module
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.analysis import events, racecheck
from repro.errors import ReproError

#: raw-lock factory: gates must bypass the patched ``threading.Lock``
_RAW_LOCK = threading._allocate_lock

# our wrappers sit between user code and racecheck's site capture; hide
# them from reported access sites just like racecheck hides its own
if __file__ not in racecheck._SKIP_FILES:
    racecheck._SKIP_FILES = (*racecheck._SKIP_FILES, __file__)


class SchedCheckError(ReproError):
    """Scheduler misuse, replay divergence, or an exploration failure."""


class DeadlockError(SchedCheckError):
    """Every live thread of a schedule is blocked on a modeled wait."""


class LivelockError(SchedCheckError):
    """A schedule exhausted its step budget without terminating."""


class _SchedAbort(BaseException):
    """Unwinds a model thread while a run is torn down (failure, prune,
    or drain). A ``BaseException`` so harness code catching ``Exception``
    cannot swallow it and keep running off-schedule."""


class _PruneRun(BaseException):
    """Raised by a policy when every eligible continuation is in the
    sleep set: the rest of this run would re-execute an interleaving
    equivalence class that has already been explored."""


@dataclass(frozen=True)
class Op:
    """One pending interesting event: what a thread will do next.

    ``kind`` is a seam name from :data:`repro.analysis.events.SEAMS`
    (plus the synthetic ``"thread.begin"`` for a thread's first step);
    ``okey`` is the per-run sequential id of the sync object or tracked
    field involved (0 when there is none). Per-run ids — not object ids
    or racecheck's global lock counter — keep traces and fingerprints
    stable across repeated executions of the same program.
    """

    kind: str
    okey: int
    label: str
    is_write: bool = False


_FIELD_KINDS = frozenset({"field.read", "field.write"})
_COMMUTING_KINDS = frozenset({"thread.begin", "thread.join", "thread.start"})


def dependent(a: Op | None, b: Op | None) -> bool:
    """May the order of two pending operations matter? (the persistent-set
    independence relation used by sleep-set pruning).

    Conservative by construction: unknown pairs are dependent. Known
    commuting pairs: anything on *different* objects; read/read on the
    same tracked field; thread begin/start/join bookkeeping (their
    effects are captured by the blocked/runnable state transitions the
    scheduler models separately, and a fresh thread's first tracked
    touch is itself a yield point).
    """
    if a is None or b is None:
        return True
    if a.kind in _COMMUTING_KINDS or b.kind in _COMMUTING_KINDS:
        return False
    if a.okey != b.okey:
        return False
    if a.kind in _FIELD_KINDS and b.kind in _FIELD_KINDS:
        return a.is_write or b.is_write
    return True


class _TState:
    """Per-model-thread scheduler state."""

    __slots__ = (
        "tid", "name", "gate", "state", "waiting_on", "pending",
        "thread", "parked", "guard_depth",
    )

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.gate = _RAW_LOCK()
        self.gate.acquire()  # repro: allow(RA102) — born held: a release is a grant, never paired here
        self.state = "runnable"  # runnable | blocked | finished
        self.waiting_on: tuple | None = None
        self.pending: Op | None = None
        self.thread: threading.Thread | None = None
        self.parked = False
        self.guard_depth = 0


class Scheduler:
    """Serializes model threads onto one runnable token and consults a
    policy at every yield point. One instance per executed schedule."""

    def __init__(self, policy: Any, step_budget: int = 20_000) -> None:
        self.policy = policy
        self.step_budget = step_budget
        #: executed transitions: (tid, op.kind, op.label)
        self.trace: list[tuple[int, str, str]] = []
        self.failure: BaseException | None = None
        self.failure_tid: int | None = None
        self.pruned = False
        self.steps = 0
        self._local = threading.local()
        self._threads: list[_TState] = []
        self._by_thread: dict[int, _TState] = {}
        self._objs: dict[int, tuple[int, Any]] = {}
        self._aborting = False
        self._fail_lock = _RAW_LOCK()

    # -- identity ----------------------------------------------------------

    def me(self) -> _TState | None:
        return getattr(self._local, "st", None)

    def _active_here(self) -> _TState | None:
        """The current model thread, or ``None`` when the caller is
        untracked, inside a modeled operation (guard), or unwinding."""
        st = self.me()
        if st is None or self._aborting or st.guard_depth > 0:
            return None
        return st

    def key_of(self, obj: Any) -> int:
        """Per-run sequential id for a sync object / tracked field. Holds
        a strong reference so ``id`` reuse cannot alias two objects."""
        entry = self._objs.get(id(obj))
        if entry is None or entry[1] is not obj:
            entry = (len(self._objs) + 1, obj)
            self._objs[id(obj)] = entry
        return entry[0]

    @contextmanager
    def guard(self) -> Iterator[None]:
        """Suppress nested yield points while performing the inner
        (real) half of a modeled operation — e.g. ``Queue.put`` takes the
        queue's internal mutex, which is itself a patched lock."""
        st = self.me()
        if st is None:
            yield
            return
        st.guard_depth += 1
        try:
            yield
        finally:
            st.guard_depth -= 1

    # -- scheduling core ---------------------------------------------------

    def yield_point(self, op: Op) -> None:
        """The running thread is about to execute ``op``; let the policy
        pick who proceeds."""
        st = self._active_here()
        if st is None:
            return
        self._step(st, op)

    def block_on(self, key: tuple, op: Op) -> None:
        """The running thread cannot proceed until ``notify(key)``.
        Returns once re-scheduled; the caller re-checks its condition."""
        st = self._active_here()
        if st is None:
            return
        st.state = "blocked"
        st.waiting_on = key
        self._step(st, op)

    def notify(self, key: tuple) -> None:
        """Mark every thread blocked on ``key`` runnable again. They do
        not run until a policy chooses them."""
        if self.me() is None or self._aborting:
            return
        for other in self._threads:
            if other.state == "blocked" and other.waiting_on == key:
                other.state = "runnable"
                other.waiting_on = None

    def _step(self, st: _TState, op: Op) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            self._fail(
                LivelockError(
                    f"step budget {self.step_budget} exhausted at {op.label}: "
                    "livelock, or a model too large for exhaustive exploration"
                ),
                st,
            )
        st.pending = op
        chosen = self._choose(st)
        if chosen is not st:
            self._switch_to(st, chosen)
        # the token is (back) with st: op executes now
        st.pending = None
        self._executed(st, op)

    def _executed(self, st: _TState, op: Op) -> None:
        self.trace.append((st.tid, op.kind, op.label))
        others = {
            t.tid: t.pending
            for t in self._threads
            if t is not st and t.state == "runnable" and t.pending is not None
        }
        self.policy.on_op(st.tid, op, others)

    def _choose(self, st: _TState) -> _TState:
        enabled = [t for t in self._threads if t.state == "runnable"]
        if not enabled:
            blocked = "; ".join(
                f"thread {t.tid} ({t.name}) blocked on {t.waiting_on!r}"
                f" at {t.pending.label if t.pending else '?'}"
                for t in self._threads
                if t.state == "blocked"
            )
            self._fail(DeadlockError(f"all threads blocked: {blocked}"), st)
        try:
            chosen_tid = self.policy.choose(
                current=st.tid,
                enabled=[t.tid for t in enabled],
                pending={t.tid: t.pending for t in enabled},
            )
        except _PruneRun:
            self.pruned = True
            self._abort(exclude=st)
            raise _SchedAbort() from None
        for t in enabled:
            if t.tid == chosen_tid:
                return t
        raise SchedCheckError(
            f"policy chose thread {chosen_tid} which is not enabled "
            f"({[t.tid for t in enabled]})"
        )

    def _switch_to(self, st: _TState, chosen: _TState) -> None:
        st.parked = True
        chosen.parked = False
        chosen.gate.release()
        st.gate.acquire()  # repro: allow(RA102) — token hand-off: the next grantor releases
        st.parked = False
        if self._aborting:
            raise _SchedAbort() from None

    def _fail(self, exc: BaseException, st: _TState | None) -> None:
        """Record the first failure of this run and unwind the caller."""
        with self._fail_lock:
            if self.failure is None:
                self.failure = exc
                self.failure_tid = st.tid if st is not None else None
        self._abort(exclude=st)
        raise _SchedAbort() from None

    def _abort(self, exclude: _TState | None = None) -> None:
        """Stop scheduling and wake every parked thread so it unwinds.
        Only ever called by the token holder, so all other model threads
        are genuinely parked on their gates."""
        self._aborting = True
        for t in self._threads:
            if t is exclude or not t.parked:
                continue
            t.parked = False
            try:
                t.gate.release()
            except RuntimeError:  # pragma: no cover - already released
                pass

    # -- thread lifecycle --------------------------------------------------

    def register_thread(self, thread: threading.Thread) -> _TState:
        st = _TState(len(self._threads), thread.name)
        st.pending = Op("thread.begin", 0, f"begin:{thread.name}")
        st.thread = thread
        self._threads.append(st)
        self._by_thread[id(thread)] = st
        return st

    def state_for(self, thread: threading.Thread) -> _TState | None:
        return self._by_thread.get(id(thread))

    def gated(self, st: _TState, original_run: Callable[[], None]) -> None:
        """Body of a model thread: park until first granted, then run the
        target with failure capture, then hand the token onward."""
        self._local.st = st
        st.parked = True
        st.gate.acquire()  # repro: allow(RA102) — waits for the first grant; released on hand-off
        st.parked = False
        try:
            if not self._aborting:
                st.pending = None
                self._executed(st, Op("thread.begin", 0, f"begin:{st.name}"))
                original_run()
        except _SchedAbort:
            pass
        except BaseException as exc:  # repro: allow(RA104) — recorded in self.failure, re-raised by run()
            with self._fail_lock:
                if self.failure is None:
                    self.failure = exc
                    self.failure_tid = st.tid
            self._abort(exclude=st)
        finally:
            try:
                self._thread_finished(st)
            except _SchedAbort:
                pass
            self._local.st = None

    def _thread_finished(self, st: _TState) -> None:
        st.state = "finished"
        if self._aborting:
            return
        for other in self._threads:
            if other.state == "blocked" and other.waiting_on == ("thread.join", st.tid):
                other.state = "runnable"
                other.waiting_on = None
        root = self._threads[0]
        if (
            root.state == "blocked"
            and root.waiting_on == ("drain",)
            and all(t.state == "finished" for t in self._threads[1:])
        ):
            root.state = "runnable"
            root.waiting_on = None
        enabled = [t for t in self._threads if t.state == "runnable"]
        if not enabled:
            blocked = [t for t in self._threads if t.state == "blocked"]
            if blocked:
                self._fail(
                    DeadlockError(
                        "all threads blocked after thread "
                        f"{st.tid} ({st.name}) finished: "
                        + "; ".join(
                            f"thread {t.tid} on {t.waiting_on!r}" for t in blocked
                        )
                    ),
                    st,
                )
            return
        # forced handoff: the finishing thread grants its successor and exits
        try:
            chosen_tid = self.policy.choose(
                current=st.tid,
                enabled=[t.tid for t in enabled],
                pending={t.tid: t.pending for t in enabled},
            )
        except _PruneRun:
            self.pruned = True
            self._abort(exclude=st)
            return
        for t in enabled:
            if t.tid == chosen_tid:
                t.parked = False
                t.gate.release()
                return
        raise SchedCheckError(f"policy chose non-enabled thread {chosen_tid}")

    # -- entry point -------------------------------------------------------

    def run(self, fn: Callable[[], None]) -> None:
        """Execute ``fn`` as the root model thread under this scheduler.
        Failures (oracle errors, assertions, deadlock, livelock) land in
        ``self.failure``; sleep-set prunes set ``self.pruned``."""
        if self._threads:
            raise SchedCheckError("Scheduler instances are single-use")
        root = _TState(0, "root")
        self._threads.append(root)
        self._local.st = root
        try:
            try:
                fn()
            except _SchedAbort:
                pass
            except BaseException as exc:  # repro: allow(RA104) — recorded in self.failure, re-raised below
                with self._fail_lock:
                    if self.failure is None:
                        self.failure = exc
                        self.failure_tid = 0
                self._abort(exclude=root)
            if self.failure is None and not self._aborting:
                try:
                    self._drain(root)
                except _SchedAbort:
                    pass
        finally:
            self._local.st = None
            self._aborting = True
            self._abort(exclude=root)
            for t in self._threads[1:]:
                if t.thread is not None:
                    t.thread.join(timeout=5.0)

    def _drain(self, root: _TState) -> None:
        """Root finished its body: keep scheduling until every spawned
        thread ran to completion (a test that forgets to join still has
        its stragglers explored rather than leaked)."""
        op = Op("thread.join", 0, "drain")
        while any(t.state != "finished" for t in self._threads[1:]):
            self.block_on(("drain",), op)


# --------------------------------------------------------------------------
# instrumentation: turning the event-registry seams into yield points
# --------------------------------------------------------------------------


class SchedLock:
    """``threading.Lock`` stand-in during exploration. Wraps whatever the
    previously-installed factory builds (racecheck's ``TrackedLock`` over
    lockcheck's instrumented lock over the raw lock), yields at the
    ``lock.acquire``/``lock.release`` seams, and models contention
    cooperatively so a contending thread parks in the scheduler, never in
    the OS."""

    __slots__ = ("_inner", "_sched", "_okey")

    def __init__(self, inner: Any, sched: Scheduler) -> None:
        self._inner = inner
        self._sched = sched
        self._okey = sched.key_of(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sched = self._sched
        if sched._active_here() is None:
            return self._inner.acquire(blocking, timeout)  # repro: allow(RA102) — this IS the lock implementation
        op = Op("lock.acquire", self._okey, f"lock#{self._okey}.acquire")
        sched.yield_point(op)
        while True:
            with sched.guard():
                got = self._inner.acquire(False)  # repro: allow(RA102) — this IS the lock implementation
            if got:
                return True
            if not blocking:
                return False
            # timed acquires are modeled as untimed (simulated time)
            sched.block_on(("lock", self._okey), op)

    def release(self) -> None:
        sched = self._sched
        if sched._active_here() is None:
            self._inner.release()
            return
        sched.yield_point(Op("lock.release", self._okey, f"lock#{self._okey}.release"))
        with sched.guard():
            self._inner.release()
        sched.notify(("lock", self._okey))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # repro: allow(RA102) — released by __exit__

    def __exit__(self, *exc: Any) -> None:
        self.release()


def _fence_wrapper(inner: Any, name: str, sched: Scheduler) -> Any:
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if sched._active_here() is not None:
            sched.yield_point(Op(name, sched.key_of(self), name))
        return inner(self, *args, **kwargs)

    wrapper.__name__ = getattr(inner, "__name__", name)
    wrapper.__wrapped__ = inner
    return wrapper


def instrument_locks(sched: Scheduler) -> Callable[[], None]:
    """Install the ``SchedLock`` factory as the *innermost* lock layer
    (seams lock.acquire / lock.release).

    This must run **before** ``lockcheck.install``/``racecheck.install``
    so every instrumented lock bottoms out in a ``SchedLock`` — including
    locks built through factory references captured earlier (module
    globals, dataclass ``default_factory``). A contended acquire then
    always parks in the scheduler, never in the OS, no matter which
    sanitizer layer the caller entered through. Returns an undo callable.
    """
    prev_factory = threading.Lock

    def lock_factory() -> SchedLock:
        return SchedLock(prev_factory(), sched)

    threading.Lock = lock_factory  # type: ignore[assignment]

    def undo() -> None:
        threading.Lock = prev_factory  # type: ignore[assignment]

    return undo


def instrument(sched: Scheduler) -> Callable[[], None]:
    """Install yield points for every non-lock seam in the event registry,
    layered on top of whatever is already installed (the lock seams go in
    separately — and innermost — via :func:`instrument_locks`; then
    lockcheck, then racecheck, then this). Returns an undo callable
    restoring the previous layer exactly."""
    patches: list[tuple[Any, str, Any]] = []

    def patch(owner: Any, attr: str, replacement: Any) -> None:
        patches.append((owner, attr, owner.__dict__.get(attr, getattr(owner, attr))))
        setattr(owner, attr, replacement)

    # -- threads (seams thread.start / thread.join)
    #
    # Determinism needs surgery here. racecheck's patched ``start`` has the
    # child register with the detector the moment its OS thread spawns —
    # *before* our gate parks it — so detector tids would be assigned at
    # OS-racy times. Instead we call the *base* ``Thread.start`` directly,
    # run the detector's start edge on the token holder, and defer child
    # registration into the gate (``gated`` runs it once the child is first
    # granted, i.e. at a policy-chosen point). The ``_started`` Event
    # handshake inside ``Thread.start``/``_bootstrap_inner`` is rebuilt on a
    # raw lock for the same reason: its patched-lock ops would otherwise
    # yield and hit the detector at times the scheduler does not control.
    inner_start = threading.Thread.start
    inner_join = threading.Thread.join
    base_start = inner_start
    while hasattr(base_start, "__wrapped__"):
        base_start = base_start.__wrapped__

    def start(self: threading.Thread) -> None:
        if sched._active_here() is None:
            inner_start(self)
            return
        sched.yield_point(Op("thread.start", 0, f"start:{self.name}"))
        detector = racecheck.current_detector()
        if detector is not None:
            detector.on_thread_start(self)
        st = sched.register_thread(self)
        original_run = self.run

        def model_run() -> None:
            inner_detector = racecheck.current_detector()
            if inner_detector is not None:
                inner_detector.register_thread(self)
            original_run()

        self.run = lambda: sched.gated(st, model_run)
        self._started._cond = threading.Condition(_RAW_LOCK())
        with sched.guard():
            base_start(self)

    def join(self: threading.Thread, timeout: float | None = None) -> None:
        target = sched.state_for(self)
        if sched._active_here() is None or target is None:
            inner_join(self, timeout)
            return
        op = Op("thread.join", 0, f"join:thread#{target.tid}")
        sched.yield_point(op)
        while target.state != "finished" and not sched._aborting:
            sched.block_on(("thread.join", target.tid), op)
        with sched.guard():
            inner_join(self, 5.0)

    patch(threading.Thread, "start", start)
    patch(threading.Thread, "join", join)

    # -- queues (seams queue.put / queue.get), modeled non-blocking
    inner_put = queue_module.Queue.put
    inner_get = queue_module.Queue.get

    def put(self: Any, item: Any, block: bool = True, timeout: float | None = None) -> None:
        if sched._active_here() is None:
            inner_put(self, item, block, timeout)
            return
        okey = sched.key_of(self)
        op = Op("queue.put", okey, f"queue#{okey}.put")
        sched.yield_point(op)
        while True:
            with sched.guard():
                try:
                    inner_put(self, item, False)
                    stored = True
                except queue_module.Full:
                    stored = False
            if stored:
                sched.notify(("queue.item", okey))
                return
            if not block:
                raise queue_module.Full
            sched.block_on(("queue.space", okey), op)

    def get(self: Any, block: bool = True, timeout: float | None = None) -> Any:
        if sched._active_here() is None:
            return inner_get(self, block, timeout)
        okey = sched.key_of(self)
        op = Op("queue.get", okey, f"queue#{okey}.get")
        sched.yield_point(op)
        while True:
            with sched.guard():
                try:
                    item = inner_get(self, False)
                    found = True
                except queue_module.Empty:
                    found = False
                    item = None
            if found:
                sched.notify(("queue.space", okey))
                return item
            if not block:
                raise queue_module.Empty
            sched.block_on(("queue.item", okey), op)

    patch(queue_module.Queue, "put", put)
    patch(queue_module.Queue, "get", get)

    # -- message fences from the registry (SharedLog.append, transfer)
    for seam in events.seams(kind="fence", patchable=True):
        owner, attr = events.resolve(seam)
        patch(owner, attr, _fence_wrapper(getattr(owner, attr), seam.name, sched))

    # -- tracked-field accesses, via the shared dispatch. front=True so
    # the scheduler yields *before* the race detector observes the access.
    def field_listener(var: Any, is_write: bool) -> None:
        st = sched._active_here()
        if st is None:
            return
        kind = "field.write" if is_write else "field.read"
        sched.yield_point(Op(kind, sched.key_of(var), var.name, is_write))

    events.add_field_listener(field_listener, front=True)
    events.request_field_proxies()

    def undo() -> None:
        events.release_field_proxies()
        events.remove_field_listener(field_listener)
        for owner, attr, original in reversed(patches):
            setattr(owner, attr, original)

    return undo
