"""Schedule exploration: bounded DFS over the scheduler's decision tree.

:func:`explore` re-executes a test function once per schedule, driving the
:class:`~repro.analysis.schedcheck.scheduler.Scheduler` with a tree policy
that replays a recorded decision prefix and extends it at the frontier.
Three classic model-checking techniques bound the search:

* **Iterative preemption bounding** (CHESS): schedules are explored in
  rounds of at most 0, then 1, then ``max_preemptions`` preemptions — a
  *preemption* being a switch away from a thread that could have
  continued. Forced switches (the current thread blocked or finished)
  are free. Most concurrency bugs need very few preemptions, so the
  cheap rounds find most bugs and the bound caps the blow-up.
* **Sleep sets** (a DPOR-family pruning): after exploring child ``c`` of
  a decision node, sibling branches may skip any thread whose pending
  operation is *independent* of every operation tried before it —
  running it first would commute into an already-explored interleaving.
  A run whose every eligible continuation is asleep is abandoned early
  (it cannot reveal new behaviour).
* **Step budgets** turn non-termination into a reported livelock.

Every executed schedule runs under the existing oracles — lockcheck and
strict racecheck are reinstalled *fresh per run* so detector thread ids
and messages are schedule-deterministic — plus the scheduler's own
deadlock detector. A failing schedule yields a **fingerprint**: the
sequence of thread choices taken at real decision points, serialized as
``v1:<tid>.<tid>...``. :func:`replay` (or the ``REPRO_SCHEDCHECK_REPLAY``
environment variable through the :func:`exhaustive` decorator) feeds the
same choices back through the same policy, reproducing the failure
bit-for-bit — same trace, same oracle message.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis import lockcheck, racecheck
from repro.analysis.schedcheck.scheduler import (
    DeadlockError,
    LivelockError,
    Op,
    SchedCheckError,
    Scheduler,
    _PruneRun,
    dependent,
    instrument,
    instrument_locks,
)

_FINGERPRINT_VERSION = "v1"


# --------------------------------------------------------------------------
# the decision tree
# --------------------------------------------------------------------------


@dataclass
class _Node:
    """One decision point on the current DFS path: ≥2 eligible threads."""

    enabled: list[int]
    eligible: list[int]
    pending: dict[int, Op]
    current: int
    budget_before: int
    sleep_in: frozenset[int]
    tried: list[int] = field(default_factory=list)
    sleep_after: dict[int, frozenset[int]] = field(default_factory=dict)
    path_choice: int = -1


class _TreePolicy:
    """Replays the recorded prefix of ``nodes`` and extends the frontier.

    The same class serves DFS exploration (``forced=None``; the frontier
    default prefers the current thread, i.e. depth-first with zero-cost
    choices first) and fingerprint replay (``forced`` pins every frontier
    choice). Sleep sets are maintained identically in both modes so a
    replayed run passes through the very same decision points.
    """

    def __init__(
        self,
        nodes: list[_Node],
        budget: int,
        forced: list[int] | None = None,
    ) -> None:
        self.nodes = nodes
        self.budget = budget
        self.forced = forced
        self.depth = 0
        self.run_sleep: set[int] = set()
        self.choices: list[int] = []

    # -- scheduler callbacks ----------------------------------------------

    def choose(self, current: int, enabled: list[int], pending: dict[int, Op]) -> int:
        eligible = [t for t in enabled if t not in self.run_sleep]
        if not eligible:
            raise _PruneRun()
        if len(eligible) == 1:
            return eligible[0]

        if self.depth < len(self.nodes):
            # replaying the recorded path prefix
            node = self.nodes[self.depth]
            if sorted(node.enabled) != sorted(enabled):
                raise SchedCheckError(
                    "nondeterministic test: enabled threads diverged while "
                    f"replaying decision {self.depth} (recorded "
                    f"{sorted(node.enabled)}, observed {sorted(enabled)}); "
                    "schedcheck requires the test body to be deterministic "
                    "apart from scheduling"
                )
            chosen = node.path_choice
            self.run_sleep = set(node.sleep_after[chosen])
            self._charge(node, chosen)
            self.depth += 1
            self.choices.append(chosen)
            return chosen

        # the frontier: a fresh decision point
        node = _Node(
            enabled=list(enabled),
            eligible=list(eligible),
            pending=dict(pending),
            current=current,
            budget_before=self.budget,
            sleep_in=frozenset(self.run_sleep),
        )
        if self.forced is not None and len(self.choices) < len(self.forced):
            chosen = self.forced[len(self.choices)]
            if chosen not in eligible:
                raise SchedCheckError(
                    f"replay diverged: fingerprint chooses thread {chosen} at "
                    f"decision {len(self.choices)} but eligible threads are "
                    f"{eligible}"
                )
        else:
            chosen = current if current in eligible else eligible[0]
        commit_choice(node, chosen)
        self._charge(node, chosen)
        self.nodes.append(node)
        self.depth += 1
        self.choices.append(chosen)
        self.run_sleep = set(node.sleep_after[chosen])
        return chosen

    def on_op(self, tid: int, op: Op, pending: dict[int, Op]) -> None:
        # wake any sleeper whose pending operation the executed op could
        # interact with — its order relative to the path is no longer
        # covered by a previously-explored sibling
        if self.run_sleep:
            self.run_sleep = {
                u
                for u in self.run_sleep
                if u != tid and not dependent(pending.get(u), op)
            }

    # -- internals ---------------------------------------------------------

    def _charge(self, node: _Node, chosen: int) -> None:
        if preemption_cost(node, chosen):
            self.budget -= 1


def preemption_cost(node: _Node, choice: int) -> int:
    """1 when taking ``choice`` preempts a continuable current thread."""
    return 1 if (node.current in node.eligible and choice != node.current) else 0


def commit_choice(node: _Node, chosen: int) -> None:
    """Record ``chosen`` as the branch the next run will take, computing
    the child's sleep set: previously-tried siblings (and inherited
    sleepers) stay asleep iff their pending op is independent of the op
    now being executed."""
    op_chosen = node.pending[chosen]
    basis = set(node.sleep_in) | set(node.tried)
    node.sleep_after[chosen] = frozenset(
        u
        for u in basis
        if u != chosen and not dependent(node.pending.get(u), op_chosen)
    )
    if chosen not in node.tried:
        node.tried.append(chosen)
    node.path_choice = chosen


def fingerprint_of(choices: list[int]) -> str:
    return _FINGERPRINT_VERSION + ":" + ".".join(str(c) for c in choices)


def parse_fingerprint(fingerprint: str) -> list[int]:
    version, _, body = fingerprint.partition(":")
    if version != _FINGERPRINT_VERSION:
        raise SchedCheckError(
            f"unknown fingerprint version {version!r} (expected "
            f"{_FINGERPRINT_VERSION!r})"
        )
    if not body:
        return []
    try:
        return [int(part) for part in body.split(".")]
    except ValueError:
        raise SchedCheckError(f"malformed fingerprint {fingerprint!r}") from None


# --------------------------------------------------------------------------
# reports
# --------------------------------------------------------------------------


@dataclass
class ScheduleFailure:
    """One failing schedule, replayable via its fingerprint."""

    fingerprint: str
    bound: int
    error_type: str
    message: str
    trace: list[tuple[int, str, str]]
    error: BaseException | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "bound": self.bound,
            "error_type": self.error_type,
            "message": self.message,
            "trace_len": len(self.trace),
        }


@dataclass
class ExplorationReport:
    """What :func:`explore` did and found."""

    harness: str = ""
    schedules: int = 0  #: distinct complete schedules executed
    runs: int = 0  #: total executions (incl. sleep-pruned partial runs)
    decisions: int = 0  #: decision points expanded across the search
    pruned_branches: int = 0  #: branches skipped because asleep
    budget_skipped: int = 0  #: branches skipped by the preemption bound
    sleep_pruned_runs: int = 0  #: runs abandoned with all-eligible asleep
    deadlocks: int = 0
    livelocks: int = 0
    failures: list[ScheduleFailure] = field(default_factory=list)
    per_bound: dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    complete: bool = True  #: False when a max_schedules/max_seconds cap hit
    max_preemptions: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def pruning_ratio(self) -> float:
        """Fraction of considered branches the search did not have to
        execute (sleep-set + preemption-bound savings)."""
        skipped = self.pruned_branches + self.budget_skipped
        considered = self.schedules + skipped
        return skipped / considered if considered else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "harness": self.harness,
            "ok": self.ok,
            "schedules": self.schedules,
            "runs": self.runs,
            "decisions": self.decisions,
            "pruned_branches": self.pruned_branches,
            "budget_skipped": self.budget_skipped,
            "sleep_pruned_runs": self.sleep_pruned_runs,
            "pruning_ratio": round(self.pruning_ratio, 4),
            "deadlocks": self.deadlocks,
            "livelocks": self.livelocks,
            "failures": [f.to_dict() for f in self.failures],
            "per_bound": {str(k): v for k, v in self.per_bound.items()},
            "wall_seconds": round(self.wall_seconds, 3),
            "complete": self.complete,
            "max_preemptions": self.max_preemptions,
        }


@dataclass
class ReplayResult:
    """Outcome of replaying one fingerprint."""

    fingerprint: str
    failure: BaseException | None
    trace: list[tuple[int, str, str]]
    steps: int

    @property
    def ok(self) -> bool:
        return self.failure is None


# --------------------------------------------------------------------------
# one instrumented execution (the oracle sandwich)
# --------------------------------------------------------------------------


@dataclass
class _RunOutcome:
    failure: BaseException | None
    pruned: bool
    trace: list[tuple[int, str, str]]
    steps: int


def _run_once(
    fn: Callable[[], None],
    policy: _TreePolicy,
    *,
    step_budget: int,
    use_lockcheck: bool,
    use_racecheck: bool,
) -> _RunOutcome:
    """Execute ``fn`` once under ``policy`` with fresh oracles.

    The ambient sanitizers (conftest may have lockcheck/racecheck
    installed session-wide) are torn down and re-installed afterwards:
    a shared detector would accumulate thread ids across runs and make
    failure messages schedule-dependent. Install order puts the
    scheduler's lock layer *innermost* — ``instrument_locks`` first, then
    lockcheck, then racecheck, then the remaining yield points — so
    ``TrackedLock`` wraps the instrumented lock wraps ``SchedLock``, and a
    contended acquire parks in the scheduler (never the OS) even through
    lock factories captured before exploration started.
    """
    ambient_race = racecheck.is_installed()
    ambient_lock = lockcheck.is_installed()
    if ambient_race:
        racecheck.uninstall()
    if ambient_lock:
        lockcheck.uninstall()
    # the lock-name counter is cosmetic but appears in oracle messages;
    # pin it so replays reproduce failures bit-for-bit
    prev_counter = racecheck._counter
    racecheck._counter = 0
    sched = Scheduler(policy, step_budget=step_budget)
    undo_locks = instrument_locks(sched)
    if use_lockcheck:
        lockcheck.install(strict=True)
    if use_racecheck:
        racecheck.install(strict=True)
    undo = instrument(sched)
    try:
        sched.run(fn)
    finally:
        undo()
        if use_racecheck and racecheck.is_installed():
            racecheck.uninstall()
        if use_lockcheck and lockcheck.is_installed():
            lockcheck.uninstall()
        undo_locks()
        racecheck._counter = prev_counter
        if ambient_lock:
            lockcheck.install(strict=True)
        if ambient_race:
            racecheck.install(strict=True)
    return _RunOutcome(sched.failure, sched.pruned, sched.trace, sched.steps)


# --------------------------------------------------------------------------
# the DFS driver
# --------------------------------------------------------------------------


def _backtrack(nodes: list[_Node], report: ExplorationReport) -> bool:
    """Rewind the path stack to the deepest node with an affordable,
    untried, awake sibling and commit that branch for the next run.
    Returns False when the tree for this bound is exhausted."""
    while nodes:
        node = nodes[-1]
        alternatives = [
            t
            for t in node.eligible
            if t not in node.tried
            and preemption_cost(node, t) <= node.budget_before
        ]
        if alternatives:
            commit_choice(node, alternatives[0])
            return True
        report.decisions += 1
        for t in node.enabled:
            if t in node.tried:
                continue
            if t in node.sleep_in:
                report.pruned_branches += 1
            else:
                report.budget_skipped += 1
        nodes.pop()
    return False


def explore(
    fn: Callable[[], None],
    *,
    name: str = "",
    max_preemptions: int = 2,
    step_budget: int = 20_000,
    max_schedules: int | None = None,
    max_seconds: float | None = None,
    use_lockcheck: bool = True,
    use_racecheck: bool = True,
    stop_on_failure: bool = True,
) -> ExplorationReport:
    """Exhaustively explore ``fn``'s schedules up to ``max_preemptions``.

    Bounds are iterative: the search completes every schedule with 0
    preemptions, then every additional one reachable with 1, and so on —
    re-executions of schedules already seen at a lower bound are detected
    by fingerprint and not double-counted. ``max_schedules`` and
    ``max_seconds`` cap the search (``report.complete`` turns False).
    """
    report = ExplorationReport(
        harness=name or getattr(fn, "__name__", "harness"),
        max_preemptions=max_preemptions,
    )
    seen: set[str] = set()
    failed: set[str] = set()
    started = time.monotonic()  # repro: allow(RA101) — wall budget for the search itself

    for bound in range(max_preemptions + 1):
        report.per_bound.setdefault(bound, 0)
        nodes: list[_Node] = []
        more = True
        while more:
            if max_schedules is not None and report.schedules >= max_schedules:
                report.complete = False
                more = False
                break
            if (
                max_seconds is not None
                and time.monotonic() - started > max_seconds  # repro: allow(RA101)
            ):
                report.complete = False
                more = False
                break
            policy = _TreePolicy(nodes, bound)
            outcome = _run_once(
                fn,
                policy,
                step_budget=step_budget,
                use_lockcheck=use_lockcheck,
                use_racecheck=use_racecheck,
            )
            report.runs += 1
            fp = fingerprint_of(policy.choices)
            if outcome.pruned:
                report.sleep_pruned_runs += 1
            elif fp not in seen:
                seen.add(fp)
                report.schedules += 1
                report.per_bound[bound] += 1
            if outcome.failure is not None and fp not in failed:
                failed.add(fp)
                if isinstance(outcome.failure, DeadlockError):
                    report.deadlocks += 1
                elif isinstance(outcome.failure, LivelockError):
                    report.livelocks += 1
                report.failures.append(
                    ScheduleFailure(
                        fingerprint=fp,
                        bound=bound,
                        error_type=type(outcome.failure).__name__,
                        message=str(outcome.failure),
                        trace=outcome.trace,
                        error=outcome.failure,
                    )
                )
                if stop_on_failure:
                    report.decisions += len(nodes)
                    report.wall_seconds = time.monotonic() - started  # repro: allow(RA101)
                    return report
            more = _backtrack(nodes, report)
        if not report.complete:
            break

    report.wall_seconds = time.monotonic() - started  # repro: allow(RA101)
    return report


def replay(
    fn: Callable[[], None],
    fingerprint: str,
    *,
    step_budget: int = 20_000,
    use_lockcheck: bool = True,
    use_racecheck: bool = True,
) -> ReplayResult:
    """Re-execute ``fn`` under the exact schedule ``fingerprint`` encodes.

    The choices are fed back through the same policy machinery that
    produced them (sleep sets and all), so the run passes through the
    identical sequence of decision points — and, the test body being
    deterministic, produces the identical trace and failure.
    """
    choices = parse_fingerprint(fingerprint)
    policy = _TreePolicy([], budget=1_000_000_000, forced=choices)
    outcome = _run_once(
        fn,
        policy,
        step_budget=step_budget,
        use_lockcheck=use_lockcheck,
        use_racecheck=use_racecheck,
    )
    return ReplayResult(
        fingerprint=fingerprint,
        failure=outcome.failure,
        trace=outcome.trace,
        steps=outcome.steps,
    )


# --------------------------------------------------------------------------
# the pytest-facing decorator
# --------------------------------------------------------------------------

#: set to a failing fingerprint to rerun exactly that schedule
REPLAY_ENV = "REPRO_SCHEDCHECK_REPLAY"


def exhaustive(
    max_preemptions: int = 2,
    *,
    step_budget: int = 20_000,
    max_schedules: int | None = None,
    max_seconds: float | None = None,
    use_lockcheck: bool = True,
    use_racecheck: bool = True,
) -> Callable[[Callable[[], None]], Callable[[], None]]:
    """Run a zero-argument test body under exhaustive schedule
    exploration; fail with the first failing schedule's fingerprint.

    With ``REPRO_SCHEDCHECK_REPLAY=<fingerprint>`` in the environment the
    test instead replays that single schedule — the debugging loop for a
    fingerprint reported by CI.
    """

    def decorate(fn: Callable[[], None]) -> Callable[[], None]:
        def wrapper() -> None:
            override = os.environ.get(REPLAY_ENV)
            if override:
                result = replay(
                    fn,
                    override,
                    step_budget=step_budget,
                    use_lockcheck=use_lockcheck,
                    use_racecheck=use_racecheck,
                )
                if result.failure is not None:
                    raise result.failure
                return
            report = explore(
                fn,
                name=fn.__name__,
                max_preemptions=max_preemptions,
                step_budget=step_budget,
                max_schedules=max_schedules,
                max_seconds=max_seconds,
                use_lockcheck=use_lockcheck,
                use_racecheck=use_racecheck,
                stop_on_failure=True,
            )
            if report.failures:
                failure = report.failures[0]
                raise SchedCheckError(
                    f"schedule {failure.fingerprint} fails with "
                    f"{failure.error_type}: {failure.message}\n"
                    f"(replay with {REPLAY_ENV}={failure.fingerprint}; "
                    f"{report.schedules} schedules explored at bound "
                    f"{report.max_preemptions})"
                ) from failure.error

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate
