"""The shared interesting-event registry: one table of concurrency seams.

Every dynamic concurrency tool in ``repro.analysis`` cares about the same
small set of *interesting events* — the synchronization and shared-state
operations where thread interleavings can matter:

* ``threading.Lock`` acquire/release,
* ``threading.Thread`` start/join,
* ``queue.Queue`` put/get,
* reads/writes of ``Shared``/``@track_fields`` containers,
* the SOE message seams the chaos controller already hooks
  (``SharedLog.append``, ``SimulatedCluster.transfer``).

Before this module, :mod:`repro.analysis.racecheck` hard-coded that list
in its installer functions; :mod:`repro.analysis.schedcheck` needs the
*same* list as its yield points (a schedule decision is only worth taking
where an interesting event happens). Defining the table twice would let
the two tools silently drift — a seam racecheck fences but schedcheck
never yields at is a schedule the model checker cannot reach. So the
table lives here, once:

* :data:`SEAMS` names every seam with its happens-before ``kind``
  (acquire / release / fence / start / join / read / write) and, for the
  seams installed by monkey-patching a concrete attribute, a resolvable
  ``target`` — racecheck derives its edge instrumentation from it and
  schedcheck derives its yield points;
* the **field-access dispatch** (:func:`notify_field` and the listener
  registry) is the single hook the :class:`~repro.analysis.racecheck.Shared`
  proxy calls on every tracked container access. racecheck registers its
  detector as a listener at import time; schedcheck prepends its
  scheduler while exploring; future tools plug in the same way.

The registry is declarative: it does not patch anything itself. Each
tool still owns *how* it wraps a seam (racecheck adds vector-clock
edges, schedcheck adds scheduling points) — what they share is *which*
operations count.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass
from typing import Any, Callable

#: raw lock for listener-registry swaps (never the patched factory)
_RAW_LOCK = threading._allocate_lock


@dataclass(frozen=True)
class Seam:
    """One interesting event: where interleavings can matter and why."""

    #: stable dotted name, e.g. ``"lock.acquire"`` — tools key on this
    name: str
    #: happens-before role: ``acquire`` | ``release`` | ``fence`` |
    #: ``start`` | ``join`` | ``read`` | ``write``
    kind: str
    #: may the operation block the calling thread? (a deterministic
    #: scheduler must model blocking seams so a serialized thread never
    #: actually parks in the OS)
    blocking: bool
    #: ``"module.path:Attr.path"`` of the attribute a tool patches to
    #: observe this seam, or ``""`` for seams reached another way (the
    #: lock *factory* and the ``Shared`` field dispatch)
    target: str
    #: one-line rationale, surfaced by docs and ``--list`` style CLIs
    doc: str


#: the canonical seam table — extend HERE, not in individual tools
SEAMS: tuple[Seam, ...] = (
    Seam(
        "lock.acquire", "acquire", True, "",
        "mutex acquire; installed via the threading.Lock factory",
    ),
    Seam(
        "lock.release", "release", False, "",
        "mutex release publishes the holder's writes to the next acquirer",
    ),
    Seam(
        "thread.start", "start", False, "threading:Thread.start",
        "parent's pre-start writes happen-before everything in the child",
    ),
    Seam(
        "thread.join", "join", True, "threading:Thread.join",
        "everything in the child happens-before the joiner's continuation",
    ),
    Seam(
        "queue.put", "release", True, "queue:Queue.put",
        "producer publishes to whoever gets the item (release edge)",
    ),
    Seam(
        "queue.get", "acquire", True, "queue:Queue.get",
        "consumer adopts the producer's clock (acquire edge)",
    ),
    Seam(
        "field.read", "read", False, "",
        "tracked-container read via the Shared proxy / notify_field",
    ),
    Seam(
        "field.write", "write", False, "",
        "tracked-container write via the Shared proxy / notify_field",
    ),
    Seam(
        "soe.log_append", "fence", False,
        "repro.soe.services.shared_log:SharedLog.append",
        "the CORFU append is the serialisation point of the write path",
    ),
    Seam(
        "soe.cluster_transfer", "fence", False,
        "repro.soe.cluster:SimulatedCluster.transfer",
        "node-to-node shipping totally orders successive seam users",
    ),
)

_BY_NAME: dict[str, Seam] = {s.name: s for s in SEAMS}


def seams(kind: str | None = None, patchable: bool | None = None) -> tuple[Seam, ...]:
    """The registry, optionally filtered by ``kind`` and patchability."""
    found = SEAMS
    if kind is not None:
        found = tuple(s for s in found if s.kind == kind)
    if patchable is not None:
        found = tuple(s for s in found if bool(s.target) == patchable)
    return found


def seam(name: str) -> Seam:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown seam {name!r}; registered: {sorted(_BY_NAME)}") from None


def resolve(target_seam: Seam) -> tuple[Any, str]:
    """(owner object, attribute name) to patch for a patchable seam.

    Imports the owning module lazily so the registry itself never drags
    SOE modules in at ``repro.analysis`` import time.
    """
    if not target_seam.target:
        raise ValueError(f"seam {target_seam.name!r} has no patchable target")
    module_path, _, attr_path = target_seam.target.partition(":")
    owner: Any = importlib.import_module(module_path)
    parts = attr_path.split(".")
    for part in parts[:-1]:
        owner = getattr(owner, part)
    return owner, parts[-1]


# --------------------------------------------------------------------------
# field-access dispatch (the Shared proxy's single hook)
# --------------------------------------------------------------------------

#: listener(var, is_write) — ``var`` is the racecheck ``_VarState`` of the
#: tracked container (``var.name`` is its display name). Swapped as an
#: immutable tuple so dispatch is a lock-free read.
FieldListener = Callable[[Any, bool], None]

_listener_lock = _RAW_LOCK()
_field_listeners: tuple[FieldListener, ...] = ()
#: tools that want Shared proxies created even while racecheck is off
#: (schedcheck explores without the race oracle on request)
_proxy_requests = 0


def add_field_listener(listener: FieldListener, *, front: bool = False) -> None:
    """Register for every tracked-field access. ``front=True`` runs the
    listener before previously-registered ones — a scheduler must yield
    *before* the race detector checks the access, so the detector sees
    the access ordering the chosen schedule actually produced."""
    global _field_listeners
    with _listener_lock:
        remaining = tuple(l for l in _field_listeners if l is not listener)
        _field_listeners = (listener, *remaining) if front else (*remaining, listener)


def remove_field_listener(listener: FieldListener) -> None:
    global _field_listeners
    with _listener_lock:
        _field_listeners = tuple(l for l in _field_listeners if l is not listener)


def notify_field(var: Any, is_write: bool) -> None:
    """Dispatch one tracked-container access to every listener."""
    for listener in _field_listeners:
        listener(var, is_write)


def request_field_proxies() -> None:
    """Ask ``@track_fields`` to build ``Shared`` proxies even while the
    race detector is not installed (paired with :func:`release_field_proxies`)."""
    global _proxy_requests
    with _listener_lock:
        _proxy_requests += 1


def release_field_proxies() -> None:
    global _proxy_requests
    with _listener_lock:
        _proxy_requests = max(0, _proxy_requests - 1)


def field_proxies_requested() -> bool:
    return _proxy_requests > 0
