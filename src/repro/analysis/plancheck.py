"""repro.analysis.plancheck — static verification of the QueryPlan IR.

PR 6 shipped two plan-level bugs (a frozen-plan mutation and a
scan-memo keying collision) that were caught by review, not tooling.
This module is the tooling: a verifier that walks any
:class:`~repro.sql.planner.QueryPlan` and proves the invariants every
consumer of the IR — the engines, the plan cache, the feedback loop, and
the upcoming compiled pipelines — silently relies on:

* **schema soundness** — every column an operator references is
  producible from its children (per the catalog at the leaves), and
  projections/aggregates emit exactly the names their parents consume.
  The model mirrors :meth:`repro.sql.expressions.Batch.resolve`: scans
  emit ``alias.column`` keys, projections rename to bare output names,
  an unqualified reference needs a bare hit or a *unique* suffix match.
* **estimate sanity** — every ``estimated_rows`` is finite and
  non-negative; ``LIMIT``/``OFFSET`` counts are non-negative; a
  Limit/Distinct node that carries its own estimate stays monotone
  (never claims more rows than its child).
* **cache safety** — a frozen :class:`~repro.sql.plancache.PlanEntry`
  aliases no mutable non-plan state, its literal slots match the
  fingerprint's slot arity, every slot is actually reachable from the
  plan (an unreachable slot means :func:`~repro.sql.plancache.instantiate`
  would silently keep a stale constant — wrong results, not a miss),
  and an instantiated binding shares no container that sits on the
  frozen spine above a changed literal.
* **charge coverage** — every row-producing node type maps to a known
  governor charge point (:data:`CHARGE_POINTS`), so a new operator
  cannot slip past the QoS accounting unnoticed.

Wiring (same pattern as :mod:`repro.analysis.lockcheck` /
:mod:`repro.analysis.racecheck`):

* ``Database._cache_plan`` verifies every entry at plan-cache insert and
  refuses to cache a plan that fails (``sql.plancheck.rejected``);
* ``REPRO_PLANCHECK=1`` turns the soft reject into a hard
  :class:`PlanCheckError` and additionally verifies every freshly
  planned query and every cache-hit binding — the autouse fixture in
  ``tests/conftest.py`` runs the whole suite this way in CI;
* ``python -m tools.analyze --plan-corpus`` verifies the plan corpus of
  a seeded query generator (:mod:`repro.workloads.querygen`).
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import PlanError, TableNotFoundError
from repro.sql import ast
from repro.sql import plancache
from repro.sql.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SortNode,
    SubqueryScanNode,
    UnionNode,
)

__all__ = [
    "PlanCheckError",
    "PlanFinding",
    "CHARGE_POINTS",
    "verify_plan",
    "verify_entry",
    "verify_binding",
    "check_plan",
    "entry_seal",
    "enabled",
    "enabled_from_env",
    "is_installed",
    "install",
    "uninstall",
    "active",
]


class PlanCheckError(PlanError):
    """A plan (or cache entry) violates an IR invariant.

    Subclasses :class:`~repro.errors.PlanError`: a plan that fails
    verification is exactly a statement for which no valid plan exists,
    and callers that already catch planner errors keep working under
    ``REPRO_PLANCHECK=1``.
    """

    def __init__(self, findings: list["PlanFinding"]) -> None:
        self.findings = findings
        lines = "\n".join(f"  - {finding}" for finding in findings)
        super().__init__(f"plancheck: {len(findings)} violation(s)\n{lines}")


@dataclass(frozen=True)
class PlanFinding:
    """One invariant violation at one plan node."""

    check: str  # "schema" | "estimates" | "cache" | "charge"
    node: str  # plan-node type name ("" for entry-level findings)
    message: str

    def __str__(self) -> str:
        where = f" at {self.node}" if self.node else ""
        return f"[{self.check}]{where}: {self.message}"


# --------------------------------------------------------------------------
# enable/disable (lockcheck-style)
# --------------------------------------------------------------------------

_ENV_VAR = "REPRO_PLANCHECK"
_installed = False


def enabled_from_env() -> bool:
    """Did the environment (``REPRO_PLANCHECK=1``) request verification?"""
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def is_installed() -> bool:
    return _installed


def install() -> None:
    """Turn on strict per-query verification process-wide."""
    global _installed
    _installed = True


def uninstall() -> None:
    global _installed
    _installed = False


@contextmanager
def active() -> Iterator[None]:
    """Strict verification for the duration of the block (test fixture)."""
    install()
    try:
        yield
    finally:
        uninstall()


def enabled() -> bool:
    """Should the database hooks verify (installed or env-requested)?"""
    return _installed or enabled_from_env()


# --------------------------------------------------------------------------
# charge coverage registry
# --------------------------------------------------------------------------

#: Every row-producing plan-node type and where its output is charged to
#: the per-query :class:`~repro.qos.governor.ResourceGovernor`. A node
#: type missing from this registry fails verification: new operators must
#: document their charge point before they can appear in a plan.
CHARGE_POINTS: dict[str, str] = {
    "ScanNode": (
        "executor._execute_scan_uncached charges surviving positions per "
        "partition; volcano._iter_scan yields under a should_stop gate"
    ),
    "SubqueryScanNode": "pass-through rename; inner plan already charged",
    "FilterNode": "reduces charged input; never produces new rows",
    "JoinNode": (
        "joins recombine charged inputs; volcano charges each emitted row "
        "in execute_volcano's drive loop"
    ),
    "AggregateNode": "folds charged input; output rows bounded by input",
    "ProjectNode": "per-column rewrite of charged input; row count unchanged",
    "SortNode": "reorders charged input; row count unchanged",
    "DistinctNode": "drops duplicates from charged input",
    "LimitNode": "truncates charged input",
    "UnionNode": "concatenates charged inputs",
}


# --------------------------------------------------------------------------
# schema soundness
# --------------------------------------------------------------------------


def _resolve(name: str, table: str | None, available: set[str]) -> str | None:
    """Mirror Batch.resolve: exact qualified, bare, or unique suffix.
    Returns an error message, or None when the reference resolves."""
    name = name.lower()
    if table is not None:
        key = f"{table.lower()}.{name}"
        if key in available:
            return None
        return f"column {table}.{name} not producible (have {sorted(available)})"
    if name in available:
        return None
    matches = [key for key in available if key.endswith(f".{name}")]
    if len(matches) == 1:
        return None
    if not matches:
        return f"column {name} not producible (have {sorted(available)})"
    return f"ambiguous column {name}: {sorted(matches)}"


def _check_expr(
    expr: ast.Expr | None,
    available: set[str],
    node: PlanNode,
    what: str,
    findings: list[PlanFinding],
) -> None:
    if expr is None:
        return
    for ref in ast.collect_column_refs(expr):
        error = _resolve(ref.name, ref.table, available)
        if error is not None:
            findings.append(
                PlanFinding("schema", type(node).__name__, f"{what}: {error}")
            )


def _catalog_columns(catalog: Any, table: str) -> set[str] | None:
    """Lower-cased catalog columns of ``table``; None when unknown.
    Accepts both a raw Catalog and a planner CatalogView."""
    if catalog is None:
        return None
    if hasattr(catalog, "columns_of"):  # planner.CatalogView
        try:
            return set(catalog.columns_of(table))
        except TableNotFoundError:
            return None
    if not catalog.has_table(table):
        return None
    return {name.lower() for name in catalog.table(table).schema.column_names}


def _scan_outputs(node: ScanNode, catalog: Any, findings: list[PlanFinding]) -> set[str]:
    if not node.table:  # FROM-less SELECT: one virtual row, no columns
        return set()
    known = _catalog_columns(catalog, node.table)
    if known is not None:
        missing = [column for column in node.columns if column.lower() not in known]
        if missing:
            findings.append(
                PlanFinding(
                    "schema",
                    "ScanNode",
                    f"scan of {node.table} selects column(s) {missing} the "
                    f"catalog does not define (have {sorted(known)})",
                )
            )
    return {f"{node.alias.lower()}.{column.lower()}" for column in node.columns}


def _node_outputs(
    node: PlanNode, catalog: Any, findings: list[PlanFinding]
) -> set[str]:
    """Bottom-up schema walk: verify the node, return its output columns."""
    if isinstance(node, ScanNode):
        available = _scan_outputs(node, catalog, findings)
        _check_expr(node.predicate, available, node, "scan predicate", findings)
        return available
    if isinstance(node, SubqueryScanNode):
        inner = _node_outputs(node.plan, catalog, findings)
        for column in node.columns:
            if column not in inner:
                findings.append(
                    PlanFinding(
                        "schema",
                        "SubqueryScanNode",
                        f"derived table {node.alias} expects column {column!r} "
                        f"its subplan does not emit (emits {sorted(inner)})",
                    )
                )
        return {f"{node.alias}.{column}" for column in node.columns}
    if isinstance(node, FilterNode):
        available = _node_outputs(node.child, catalog, findings)
        _check_expr(node.predicate, available, node, "filter predicate", findings)
        return available
    if isinstance(node, JoinNode):
        left = _node_outputs(node.left, catalog, findings)
        right = _node_outputs(node.right, catalog, findings)
        overlap = left & right
        if overlap:
            findings.append(
                PlanFinding(
                    "schema",
                    "JoinNode",
                    f"join sides both emit {sorted(overlap)} — one side would "
                    "silently shadow the other in the merged batch",
                )
            )
        for left_expr, right_expr in node.equi:
            _check_expr(left_expr, left, node, "equi key (left side)", findings)
            _check_expr(right_expr, right, node, "equi key (right side)", findings)
        _check_expr(node.residual, left | right, node, "residual predicate", findings)
        return left | right
    if isinstance(node, AggregateNode):
        available = _node_outputs(node.child, catalog, findings)
        outputs: set[str] = set()
        for expr, name in node.group:
            _check_expr(expr, available, node, f"group key {name!r}", findings)
            outputs.add(name)
        for call, name in node.aggregates:
            _check_expr(call, available, node, f"aggregate {name!r}", findings)
            outputs.add(name)
        return outputs
    if isinstance(node, ProjectNode):
        available = _node_outputs(node.child, catalog, findings)
        outputs = set()
        for expr, name in list(node.items) + list(node.hidden):
            _check_expr(expr, available, node, f"projection {name!r}", findings)
            if name in outputs:
                findings.append(
                    PlanFinding(
                        "schema",
                        "ProjectNode",
                        f"duplicate output column {name!r} — the second "
                        "definition would silently win",
                    )
                )
            outputs.add(name)
        return outputs
    if isinstance(node, SortNode):
        available = _node_outputs(node.child, catalog, findings)
        for name, _ascending in node.keys:
            if name not in available:
                findings.append(
                    PlanFinding(
                        "schema",
                        "SortNode",
                        f"sort key {name!r} is not an output of the child "
                        f"(have {sorted(available)})",
                    )
                )
        return available
    if isinstance(node, (DistinctNode, LimitNode)):
        return _node_outputs(node.child, catalog, findings)
    if isinstance(node, UnionNode):
        if len(node.inputs) != len(node.input_names):
            findings.append(
                PlanFinding(
                    "schema",
                    "UnionNode",
                    f"{len(node.inputs)} inputs but {len(node.input_names)} "
                    "name lists",
                )
            )
        arities = {len(names) for names in node.input_names}
        if len(arities) > 1:
            findings.append(
                PlanFinding(
                    "schema",
                    "UnionNode",
                    f"branches disagree on arity: {sorted(arities)}",
                )
            )
        for index, (input_node, names) in enumerate(zip(node.inputs, node.input_names)):
            emitted = _node_outputs(input_node, catalog, findings)
            for name in names:
                if name not in emitted:
                    findings.append(
                        PlanFinding(
                            "schema",
                            "UnionNode",
                            f"branch {index} does not emit column {name!r} "
                            f"(emits {sorted(emitted)})",
                        )
                    )
        return set(node.input_names[0]) if node.input_names else set()
    # an unknown node type is reported by the charge-coverage pass; emit
    # nothing so parents fail loudly rather than on a guessed schema
    return set()


# --------------------------------------------------------------------------
# estimate sanity
# --------------------------------------------------------------------------


def _check_estimates(node: PlanNode, findings: list[PlanFinding]) -> None:
    estimate = getattr(node, "estimated_rows", None)
    if estimate is not None:
        if not isinstance(estimate, (int, float)) or isinstance(estimate, bool):
            findings.append(
                PlanFinding(
                    "estimates",
                    type(node).__name__,
                    f"estimated_rows is {type(estimate).__name__}, not a number",
                )
            )
        elif not math.isfinite(float(estimate)) or float(estimate) < 0:
            findings.append(
                PlanFinding(
                    "estimates",
                    type(node).__name__,
                    f"estimated_rows {estimate!r} is not finite and non-negative",
                )
            )
    if isinstance(node, LimitNode):
        for label, value in (("limit", node.limit), ("offset", node.offset)):
            if value is not None and (not isinstance(value, int) or value < 0):
                findings.append(
                    PlanFinding(
                        "estimates", "LimitNode", f"{label} {value!r} is negative or non-integer"
                    )
                )
    # monotonicity: a Limit/Distinct carrying its own estimate may never
    # claim more rows than its child (and a Limit no more than its limit)
    if isinstance(node, (LimitNode, DistinctNode)) and isinstance(estimate, (int, float)):
        child_estimate = getattr(node.child, "estimated_rows", None)
        if child_estimate is not None and float(estimate) > float(child_estimate):
            findings.append(
                PlanFinding(
                    "estimates",
                    type(node).__name__,
                    f"estimated_rows {estimate!r} exceeds the child's "
                    f"{child_estimate!r} — {type(node).__name__} can only shrink",
                )
            )
        if isinstance(node, LimitNode) and node.limit is not None and float(estimate) > float(node.limit):
            findings.append(
                PlanFinding(
                    "estimates",
                    "LimitNode",
                    f"estimated_rows {estimate!r} exceeds the LIMIT {node.limit}",
                )
            )
    for child in node.children():
        _check_estimates(child, findings)


# --------------------------------------------------------------------------
# charge coverage
# --------------------------------------------------------------------------


def _check_charges(node: PlanNode, findings: list[PlanFinding]) -> None:
    type_name = type(node).__name__
    if type_name not in CHARGE_POINTS:
        findings.append(
            PlanFinding(
                "charge",
                type_name,
                f"row-producing node type {type_name} has no registered "
                "governor charge point — add it to plancheck.CHARGE_POINTS "
                "with the engine location that charges its output",
            )
        )
    for child in node.children():
        _check_charges(child, findings)


# --------------------------------------------------------------------------
# cache safety
# --------------------------------------------------------------------------

#: object kinds a frozen plan may consist of; anything else is aliasing
_LEAF_TYPES = (str, int, float, bool, bytes, type(None))


def _iter_graph(value: Any) -> Iterator[Any]:
    """Every object reachable from a plan tree, dataclass-field-wise."""
    stack = [value]
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        yield current
        if isinstance(current, _LEAF_TYPES):
            continue
        if isinstance(current, (list, tuple)):
            stack.extend(current)
            continue
        names = plancache._field_names(type(current))
        if names is not None:
            stack.extend(getattr(current, name) for name in names)


def _reachable_ids(value: Any) -> set[int]:
    return {id(obj) for obj in _iter_graph(value)}


def _check_aliasing(plan: Any, findings: list[PlanFinding]) -> None:
    """A frozen plan must consist solely of plan nodes, AST expressions,
    containers, and scalars — anything else (a live batch, a table, an
    execution context) would be shared, mutable session state."""
    for obj in _iter_graph(plan):
        if isinstance(obj, _LEAF_TYPES) or isinstance(obj, (list, tuple)):
            continue
        if plancache._field_names(type(obj)) is not None:
            continue  # a dataclass: plan node, QueryPlan, or AST expression
        findings.append(
            PlanFinding(
                "cache",
                type(obj).__name__,
                f"frozen plan aliases a mutable non-plan object of type "
                f"{type(obj).__name__} — cache entries must be pure IR",
            )
        )


def entry_seal(entry: Any) -> tuple:
    """Value fingerprint of an entry's literal slots. Recorded at insert;
    a later mismatch proves the frozen entry was mutated in place."""
    return tuple(
        (type(slot.value).__name__, repr(slot.value)) for slot in entry.slots
    )


def verify_entry(
    entry: Any,
    statement: "ast.SelectStatement | ast.UnionStatement | None" = None,
    key: str | None = None,
    catalog: Any = None,
) -> list[PlanFinding]:
    """Cache-safety verification of a :class:`~repro.sql.plancache.PlanEntry`
    (plus a full plan verification of the frozen plan itself)."""
    findings = verify_plan(entry.plan, catalog)
    _check_aliasing(entry.plan, findings)
    if key is not None and key.count("?") != len(entry.slots):
        findings.append(
            PlanFinding(
                "cache",
                "",
                f"entry has {len(entry.slots)} literal slot(s) but the "
                f"fingerprint renders {key.count('?')} — a hit would bind "
                "constants into the wrong positions",
            )
        )
    if statement is not None:
        fresh = plancache.collect_literals(statement)
        if len(fresh) != len(entry.slots):
            findings.append(
                PlanFinding(
                    "cache",
                    "",
                    f"entry has {len(entry.slots)} slot(s) but the statement "
                    f"carries {len(fresh)} literal(s)",
                )
            )
    reachable = _reachable_ids(entry.plan)
    for index, slot in enumerate(entry.slots):
        if id(slot) not in reachable:
            findings.append(
                PlanFinding(
                    "cache",
                    "",
                    f"slot {index} (value {slot.value!r}) is not reachable "
                    "from the frozen plan — instantiate would silently keep "
                    "the cached constant instead of binding the new one",
                )
            )
    return findings


def verify_binding(
    entry: Any,
    bound: Any,
    statement: "ast.SelectStatement | ast.UnionStatement",
) -> list[PlanFinding]:
    """Verify one :func:`~repro.sql.plancache.instantiate` result.

    Proves the frozen entry was not mutated (slot-value seal), that every
    changed literal was actually replaced in the bound copy, and that the
    bound copy shares no container sitting on the frozen spine above a
    changed literal (the PR 6 frozen-plan invariant).
    """
    findings: list[PlanFinding] = []
    seal = getattr(entry, "seal", None)
    if seal is not None and entry_seal(entry) != seal:
        findings.append(
            PlanFinding(
                "cache",
                "",
                "frozen entry's literal slots changed since insert — the "
                "cached plan was mutated in place instead of copied",
            )
        )
    fresh = plancache.collect_literals(statement)
    if len(fresh) != len(entry.slots):
        findings.append(
            PlanFinding(
                "cache",
                "",
                f"binding arity mismatch: {len(entry.slots)} slot(s) vs "
                f"{len(fresh)} statement literal(s)",
            )
        )
        return findings
    changed = [
        (cached, source)
        for cached, source in zip(entry.slots, fresh)
        if type(cached.value) is not type(source.value) or cached.value != source.value
    ]
    if not changed:
        return findings
    if bound is entry.plan:
        findings.append(
            PlanFinding(
                "cache",
                "",
                "constants changed but instantiate returned the frozen plan "
                "itself instead of a substitution copy",
            )
        )
        return findings
    bound_ids = _reachable_ids(bound)
    for cached, source in changed:
        if id(cached) in bound_ids:
            findings.append(
                PlanFinding(
                    "cache",
                    "",
                    f"stale literal {cached.value!r} still reachable from the "
                    f"bound plan — {source.value!r} was not bound",
                )
            )
    dirty_spine = plancache.slot_spine(entry.plan, [cached for cached, _ in changed])
    shared = bound_ids & set(dirty_spine)
    if shared:
        findings.append(
            PlanFinding(
                "cache",
                "",
                f"bound plan shares {len(shared)} container(s) that lie on "
                "the frozen spine above a changed literal — mutating session "
                "state would leak into the cached entry",
            )
        )
    return findings


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def verify_plan(plan: "QueryPlan | PlanNode", catalog: Any = None) -> list[PlanFinding]:
    """Walk a plan (or bare node tree) and return every invariant violation."""
    findings: list[PlanFinding] = []
    if isinstance(plan, QueryPlan):
        root = plan.root
        outputs = _node_outputs(root, catalog, findings)
        for name in plan.output_names:
            if name not in outputs:
                findings.append(
                    PlanFinding(
                        "schema",
                        "QueryPlan",
                        f"declared output {name!r} is not produced by the "
                        f"root (produces {sorted(outputs)})",
                    )
                )
    else:
        root = plan
        _node_outputs(root, catalog, findings)
    _check_estimates(root, findings)
    _check_charges(root, findings)
    return findings


def check_plan(plan: "QueryPlan | PlanNode", catalog: Any = None) -> None:
    """Raise :class:`PlanCheckError` when a plan violates any invariant."""
    findings = verify_plan(plan, catalog)
    if findings:
        raise PlanCheckError(findings)
