"""Small array utilities shared across the storage layer."""

from __future__ import annotations

import numpy as np


class GrowableInt64:
    """An append-friendly int64 array with amortised O(1) growth.

    The MVCC visibility vectors (``created`` / ``deleted`` commit ids) grow
    by one on every insert; a plain ``np.append`` would be O(n) per row.
    This wrapper doubles capacity and exposes a zero-copy ``view()`` of the
    live prefix for vectorised visibility checks.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, initial: np.ndarray | None = None, capacity: int = 16) -> None:
        if initial is not None:
            initial = np.asarray(initial, dtype=np.int64)
            capacity = max(capacity, len(initial), 1)
            self._data = np.empty(capacity, dtype=np.int64)
            self._data[: len(initial)] = initial
            self._size = len(initial)
        else:
            self._data = np.empty(max(capacity, 1), dtype=np.int64)
            self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: int) -> int:
        """Append ``value``; returns the position it was stored at."""
        if self._size == len(self._data):
            grown = np.empty(len(self._data) * 2, dtype=np.int64)
            grown[: self._size] = self._data
            self._data = grown
        self._data[self._size] = value
        self._size += 1
        return self._size - 1

    def extend(self, values: np.ndarray) -> None:
        """Append many values at once."""
        values = np.asarray(values, dtype=np.int64)
        needed = self._size + len(values)
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = values
        self._size = needed

    def view(self) -> np.ndarray:
        """Zero-copy view of the live prefix. Do not resize while held."""
        return self._data[: self._size]

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(index)
        return int(self._data[index])

    def __setitem__(self, index: int, value: int) -> None:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(index)
        self._data[index] = value
