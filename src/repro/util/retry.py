"""Deterministic retry/backoff primitives for the failure-aware layers.

The SOE coordinator, the transaction broker, and the federation frontend
all retry transient failures (:class:`repro.errors.RetryableError`). Two
properties are non-negotiable for a reproducible system:

* **bounded** — every retry loop has an attempt cap (linter rule RA107
  flags unbounded ``while True`` retry shapes), and
* **simulated time** — backoff is charged to a :class:`SimulatedClock`,
  never the wall clock, so an identical fault schedule yields an
  identical recovery trace (and tests never sleep).

Backoff is exponential *without jitter*: jitter exists to de-correlate
real fleets; here determinism is the point.

Retryability is **type-driven** (:func:`is_retryable`), never matched on
message strings, and the split is deliberate at both poles:

* partition message drops (:class:`~repro.errors.NetworkPartitionedError`,
  a ``TransferDroppedError``) ARE retryable — the link may heal, so the
  sender backs off and resends;
* fencing (:class:`~repro.errors.FencedError`, incl. lease expiry) is
  NOT retryable and punches straight through :meth:`RetryPolicy.call`,
  exactly like ``CircuitOpenError``: a stale-epoch writer re-presenting
  the same token can never succeed, and burning backoff budget on it
  only widens the split-brain window. Re-acquiring a lease is a new
  decision, not a retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, TypeVar

from repro.errors import ReproError, RetryableError

T = TypeVar("T")


def is_retryable(exc: BaseException) -> bool:
    """The single retry gate: transient errors opt in via the
    :class:`~repro.errors.RetryableError` mixin. Terminal-by-design
    errors (``FencedError``, ``CircuitOpenError``, ``BudgetExceededError``,
    ``DeadlineExceededError``) deliberately do not."""
    return isinstance(exc, RetryableError)


class SimulatedClock:
    """Monotonic simulated seconds; advanced by backoff and chaos delays."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Charge ``seconds`` of simulated time; returns the new now."""
        if seconds < 0:
            raise ReproError("cannot advance the simulated clock backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, for at most ``max_attempts`` total tries."""

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ReproError("invalid backoff parameters")

    def delay_before(self, attempt: int) -> float:
        """Backoff charged before try number ``attempt`` (try 0 is free)."""
        if attempt <= 0:
            return 0.0
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def schedule(self) -> Iterator[tuple[int, float]]:
        """``(attempt, delay_before)`` pairs: (0, 0.0), (1, d1), (2, d2)…"""
        for attempt in range(self.max_attempts):
            yield attempt, self.delay_before(attempt)

    def total_backoff(self) -> float:
        """Simulated seconds a fully-exhausted retry sequence charges."""
        return sum(delay for _attempt, delay in self.schedule())

    def call(
        self,
        fn: Callable[[], T],
        *,
        clock: SimulatedClock,
        on_retry: Callable[[int, RetryableError], None] | None = None,
    ) -> T:
        """Run ``fn`` under this policy; backoff is charged to ``clock``.

        Only errors passing :func:`is_retryable` trigger a retry;
        anything else — including ``FencedError`` — propagates
        immediately with zero backoff charged. After the last attempt the
        final transient error is re-raised unchanged, so callers still
        see the subsystem type (``ClusterError``, ``LogError``, …).
        """
        last: RetryableError | None = None
        for attempt, delay in self.schedule():
            if attempt:
                clock.advance(delay)
                if on_retry is not None:
                    on_retry(attempt, last)  # type: ignore[arg-type]
            try:
                return fn()
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                last = exc  # type: ignore[assignment]
        assert last is not None
        raise last
