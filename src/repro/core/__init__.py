"""Core: types, schema, catalog, database, session, ecosystem."""

from repro.core.catalog import Catalog
from repro.core.database import Database
from repro.core.result import QueryResult
from repro.core.schema import ColumnSpec, TableSchema, schema
from repro.core.session import Session

__all__ = ["Catalog", "Database", "QueryResult", "ColumnSpec", "TableSchema", "schema", "Session"]
