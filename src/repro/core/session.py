"""Sessions: connection-like objects with explicit transaction control."""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.database import Database
from repro.core.result import QueryResult
from repro.errors import InvalidTransactionStateError
from repro.sql import ast
from repro.sql.parser import parse
from repro.transaction.manager import Transaction


class Session:
    """One client session against a :class:`Database`.

    Supports both API-level transaction control (:meth:`begin`,
    :meth:`commit`, :meth:`rollback`) and the SQL statements ``BEGIN`` /
    ``COMMIT`` / ``ROLLBACK``. Without an open transaction, statements
    auto-commit. Usable as a context manager (commits on clean exit,
    rolls back on exception).
    """

    def __init__(self, database: Database, parameters: Mapping[str, Any] | None = None) -> None:
        self.database = database
        self.parameters: dict[str, Any] = dict(parameters or {})
        self._txn: Transaction | None = None

    # -- transaction control ------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.is_active

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise InvalidTransactionStateError("transaction already open")
        self._txn = self.database.begin()
        return self._txn

    def commit(self) -> None:
        if not self.in_transaction:
            raise InvalidTransactionStateError("no open transaction")
        assert self._txn is not None
        self.database.commit(self._txn)
        self._txn = None

    def rollback(self) -> None:
        if not self.in_transaction:
            raise InvalidTransactionStateError("no open transaction")
        assert self._txn is not None
        self.database.rollback(self._txn)
        self._txn = None

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str, parameters: Mapping[str, Any] | None = None) -> QueryResult:
        """Execute one SQL statement within the session's transaction."""
        statement = parse(sql)
        if isinstance(statement, ast.TransactionStatement):
            if statement.action == "begin":
                self.begin()
            elif statement.action == "commit":
                self.commit()
            else:
                self.rollback()
            return QueryResult([], [], rowcount=0)
        merged = dict(self.parameters)
        if parameters:
            merged.update(parameters)
        return self.database.execute_statement(statement, self._txn, merged or None)

    def query(self, sql: str, **parameters: Any) -> QueryResult:
        """Convenience SELECT wrapper."""
        return self.execute(sql, parameters or None)

    def profile(self, sql: str, **parameters: Any) -> Any:
        """Execute a SELECT with per-operator profiling.

        Returns a :class:`repro.obs.Profile` whose plan tree carries
        rows and wall-time per operator (``profile.render()`` prints it);
        runs inside the session's open transaction, if any.
        """
        merged = dict(self.parameters)
        merged.update(parameters)
        return self.database.profile(sql, self._txn, merged or None)

    # -- context manager -----------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.in_transaction:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
