"""The catalog: one namespace for every engine's objects.

The paper's thesis is "one central repository for business objects" across
all engines (Section V). Accordingly this catalog holds not only relational
tables (column or row store) but also registered graph views, hierarchy
views, text indexes, virtual (federated) tables, and the business-semantics
annotations the engines share.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import DuplicateObjectError, TableNotFoundError


class Catalog:
    """Case-insensitive name → object registry with per-kind views."""

    def __init__(self) -> None:
        self._tables: dict[str, Any] = {}
        self._views: dict[str, Any] = {}          # graph / hierarchy views
        self._semantics: dict[str, dict[str, Any]] = {}  # business annotations

    # -- tables -------------------------------------------------------------

    def register_table(self, table: Any) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise DuplicateObjectError(f"table already exists: {table.name!r}")
        self._tables[key] = table

    def replace_table(self, table: Any) -> None:
        """Register-or-replace (used by recovery and data movement)."""
        self._tables[table.name.lower()] = table

    def drop_table(self, name: str) -> None:
        if self._tables.pop(name.lower(), None) is None:
            raise TableNotFoundError(name)
        self._semantics.pop(name.lower(), None)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Any:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise TableNotFoundError(name) from None

    def tables(self) -> Iterator[Any]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- engine views -----------------------------------------------------------

    def register_view(self, name: str, view: Any) -> None:
        key = name.lower()
        if key in self._views:
            raise DuplicateObjectError(f"view already exists: {name!r}")
        self._views[key] = view

    def drop_view(self, name: str) -> None:
        self._views.pop(name.lower(), None)

    def view(self, name: str) -> Any:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    # -- business semantics --------------------------------------------------------

    def annotate(self, table: str, key: str, value: Any) -> None:
        """Attach application knowledge to a table (aging rules, key-
        generation hints, index configuration — Section III)."""
        self._semantics.setdefault(table.lower(), {})[key] = value

    def annotation(self, table: str, key: str, default: Any = None) -> Any:
        return self._semantics.get(table.lower(), {}).get(key, default)

    def annotations(self, table: str) -> dict[str, Any]:
        return dict(self._semantics.get(table.lower(), {}))
