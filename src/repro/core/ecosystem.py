"""The ecosystem orchestrator — the paper's thesis made concrete.

Section V asks for "(b) one single and coherent operational environment:
one central repository for business objects ..., single interface for a
central administration of all components", and the summary demands "(3) a
powerful orchestration ... a single point of entry as well as a single
semantic understanding".

:class:`Ecosystem` is that single point of entry: it owns the HANA core
:class:`~repro.core.database.Database` and lazily attaches the other
landscape components — an SOE cluster, an HDFS cluster with Hive and YARN,
SDA federation, streaming — registering everything in one place and
offering one monitoring/administration surface plus a business-object
repository shared by all engines.
"""

from __future__ import annotations

from typing import Any

from repro.core.database import Database
from repro.core.session import Session
from repro.errors import ReproError


class Ecosystem:
    """One coherent data-management landscape."""

    def __init__(self, name: str = "ecosystem", data_dir: str | None = None) -> None:
        self.name = name
        self.hana = Database(name=f"{name}-hana", data_dir=data_dir)
        self._soe: Any = None
        self._hdfs: Any = None
        self._hive: Any = None
        self._yarn: Any = None
        self._sda: Any = None
        #: the central business-object repository (deployed to all engines)
        self._business_objects: dict[str, dict[str, Any]] = {}
        # hierarchy SQL functions are part of the baseline experience
        from repro.engines.graph.hierarchy import register_hierarchy_functions

        register_hierarchy_functions(self.hana)

    # -- component attachment (lazy, one instance each) -----------------------------

    def session(self, **parameters: Any) -> Session:
        """A session against the HANA core."""
        return Session(self.hana, parameters or None)

    def attach_soe(self, node_count: int = 4, **kwargs: Any) -> Any:
        """Deploy (or return) the scale-out extension."""
        if self._soe is None:
            from repro.soe.engine import SoeEngine

            self._soe = SoeEngine(node_count=node_count, **kwargs)
        return self._soe

    @property
    def soe(self) -> Any:
        if self._soe is None:
            raise ReproError("no SOE attached; call attach_soe() first")
        return self._soe

    def attach_hadoop(
        self,
        datanodes: int = 3,
        block_size_lines: int = 1000,
        replication: int = 2,
        containers_per_node: int = 2,
    ) -> Any:
        """Deploy (or return) the Hadoop substrate (HDFS + YARN + Hive)."""
        if self._hdfs is None:
            from repro.hadoop.hdfs import HdfsCluster
            from repro.hadoop.hive import HiveServer
            from repro.hadoop.yarn import ResourceManager

            self._hdfs = HdfsCluster(
                datanode_ids=datanodes,
                block_size_lines=block_size_lines,
                replication=replication,
            )
            self._hive = HiveServer(self._hdfs)
            self._yarn = ResourceManager(
                {node_id: containers_per_node for node_id in self._hdfs.datanodes}
            )
        return self._hdfs

    @property
    def hdfs(self) -> Any:
        if self._hdfs is None:
            raise ReproError("no Hadoop attached; call attach_hadoop() first")
        return self._hdfs

    @property
    def hive(self) -> Any:
        if self._hive is None:
            raise ReproError("no Hadoop attached; call attach_hadoop() first")
        return self._hive

    @property
    def yarn(self) -> Any:
        if self._yarn is None:
            raise ReproError("no Hadoop attached; call attach_hadoop() first")
        return self._yarn

    @property
    def sda(self) -> Any:
        """The federation frontend (created on first use)."""
        if self._sda is None:
            from repro.federation.sda import SmartDataAccess

            self._sda = SmartDataAccess(self.hana)
        return self._sda

    def federate_hive(self, source_name: str = "hadoop") -> Any:
        """Register the attached Hive server as an SDA source."""
        from repro.federation.adapters import HiveAdapter

        adapter = HiveAdapter(source_name, self.hive)
        self.sda.register_source(adapter)
        return adapter

    def federate_soe(self, source_name: str = "soe") -> Any:
        """Register the attached SOE cluster as an SDA source."""
        from repro.federation.adapters import SoeAdapter

        adapter = SoeAdapter(source_name, self.soe)
        self.sda.register_source(adapter)
        return adapter

    # -- business-object repository ---------------------------------------------------

    def deploy_business_object(self, name: str, definition: dict[str, Any]) -> None:
        """Register a business object once; every engine sees the same
        semantics (the "common repository for higher-level business
        concepts" of §I.A). The definition may carry table names, key
        columns, aging rules, text/geo annotations, hierarchies, ..."""
        self._business_objects[name.lower()] = dict(definition)
        for table in definition.get("tables", []):
            self.hana.catalog.annotate(table, "business_object", name.lower())

    def business_object(self, name: str) -> dict[str, Any]:
        try:
            return dict(self._business_objects[name.lower()])
        except KeyError:
            raise ReproError(f"unknown business object {name!r}") from None

    def business_objects(self) -> list[str]:
        return sorted(self._business_objects)

    # -- the single administration surface ----------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """One monitoring snapshot across every attached component."""
        stats: dict[str, Any] = {"hana": self.hana.statistics()}
        if self._soe is not None:
            stats["soe"] = self._soe.statistics()
        if self._hdfs is not None:
            stats["hdfs"] = self._hdfs.statistics()
        if self._yarn is not None:
            stats["yarn"] = self._yarn.statistics()
        if self._hive is not None:
            stats["hive"] = {
                "queries_run": self._hive.queries_run,
                "external_tables": self._hive.tables(),
            }
        if self._sda is not None:
            stats["sda"] = {
                "sources": self._sda.sources(),
                "rows_transferred": self._sda.ledger.rows,
                "bytes_transferred": self._sda.ledger.bytes,
            }
        stats["business_objects"] = self.business_objects()
        return stats

    def health_check(self) -> dict[str, str]:
        """Cheap liveness probe per component."""
        health = {"hana": "ok"}
        if self._soe is not None:
            dead = [
                node_id
                for node_id, node in self._soe.cluster.nodes.items()
                if not node.alive
            ]
            health["soe"] = "ok" if not dead else f"degraded (down: {dead})"
        if self._hdfs is not None:
            dead = [
                node_id
                for node_id, node in self._hdfs.datanodes.items()
                if not node.alive
            ]
            health["hdfs"] = "ok" if not dead else f"degraded (down: {dead})"
        return health
