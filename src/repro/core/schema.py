"""Table schemas: column specifications, keys, and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.types import DataType
from repro.errors import ColumnNotFoundError, SchemaError


@dataclass(frozen=True)
class ColumnSpec:
    """Declaration of one column: name, type, and constraints."""

    name: str
    dtype: DataType
    nullable: bool = True
    default: Any = None

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` for this column, applying NULL rules."""
        if value is None:
            if self.default is not None:
                value = self.default
            elif not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            else:
                return None
        return self.dtype.coerce(value)


@dataclass
class TableSchema:
    """An ordered collection of :class:`ColumnSpec` plus key metadata.

    ``primary_key`` lists the columns forming the primary key (possibly
    empty). ``metadata`` is a free-form dict the higher layers use to attach
    application knowledge — aging rules (Section III), key-generation hints
    for the delta merge, text-index configuration, and so on. Storing such
    knowledge *in the table metadata* is exactly the paper's "listening to
    the application" mechanism.
    """

    columns: list[ColumnSpec]
    primary_key: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for spec in self.columns:
            lowered = spec.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column name: {spec.name!r}")
            seen.add(lowered)
        for key_col in self.primary_key:
            if key_col.lower() not in seen:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
        self._index = {
            spec.name.lower(): position for position, spec in enumerate(self.columns)
        }

    # -- lookup -----------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Declared column names, in order."""
        return [spec.name for spec in self.columns]

    def has_column(self, name: str) -> bool:
        """Case-insensitive membership test."""
        return name.lower() in self._index

    def position(self, name: str) -> int:
        """Ordinal position of ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise ColumnNotFoundError("<schema>", name) from None

    def column(self, name: str) -> ColumnSpec:
        """The :class:`ColumnSpec` for ``name`` (case-insensitive)."""
        return self.columns[self.position(name)]

    # -- mutation (flexible tables) ----------------------------------------

    def add_column(self, spec: ColumnSpec) -> None:
        """Append a column; used by flexible tables (Section II.H)."""
        if self.has_column(spec.name):
            raise SchemaError(f"duplicate column name: {spec.name!r}")
        self.columns.append(spec)
        self._index[spec.name.lower()] = len(self.columns) - 1

    # -- row handling -------------------------------------------------------

    def coerce_row(self, row: Sequence[Any] | Mapping[str, Any]) -> list[Any]:
        """Validate and coerce one row to schema order.

        Accepts either a positional sequence matching the column order or a
        mapping from column name to value (missing names become NULL or the
        column default).
        """
        if isinstance(row, Mapping):
            unknown = [name for name in row if not self.has_column(name)]
            if unknown:
                raise SchemaError(f"unknown columns in row: {unknown}")
            values = [row.get(spec.name, row.get(spec.name.lower())) for spec in self.columns]
        else:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row has {len(row)} values, schema has {len(self.columns)} columns"
                )
            values = list(row)
        return [spec.coerce(value) for spec, value in zip(self.columns, values)]

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract the primary-key tuple from a schema-ordered row."""
        return tuple(row[self.position(name)] for name in self.primary_key)


def schema(*specs: tuple[str, DataType] | ColumnSpec, primary_key: Iterable[str] = ()) -> TableSchema:
    """Convenience constructor.

    >>> from repro.core import types
    >>> sch = schema(("id", types.INTEGER), ("name", types.VARCHAR), primary_key=["id"])
    >>> sch.column_names
    ['id', 'name']
    """
    columns = [
        spec if isinstance(spec, ColumnSpec) else ColumnSpec(spec[0], spec[1])
        for spec in specs
    ]
    return TableSchema(columns, primary_key=tuple(primary_key))
