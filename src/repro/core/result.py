"""Query results: a small, convenient rowset container."""

from __future__ import annotations

from typing import Any, Iterator


class QueryResult:
    """Column names plus materialised rows, with convenience accessors."""

    def __init__(
        self,
        columns: list[str],
        rows: list[list[Any]],
        rowcount: int | None = None,
        degraded: bool = False,
        degraded_reasons: list[str] | None = None,
        reoptimizations: int = 0,
    ) -> None:
        self.columns = columns
        self.rows = rows
        #: affected-row count for DML; defaults to len(rows) for queries
        self.rowcount = rowcount if rowcount is not None else len(rows)
        #: True when a resource-governor soft limit truncated the answer —
        #: the rows are a correct prefix, not the complete result (same
        #: contract as the coordinator's staleness-bounded failover reads)
        self.degraded = degraded
        #: which budget dimensions latched ("rows", "bytes", "seconds")
        self.degraded_reasons = degraded_reasons or []
        #: how many mid-query re-optimizations this execution performed
        #: (docs/OPTIMIZER.md; mirrors ``PlanCost.reoptimizations``)
        self.reoptimizations = reoptimizations

    def __iter__(self) -> Iterator[list[Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> list[Any] | None:
        """The first row or ``None``."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row/one-column result (else None)."""
        if self.rows and self.rows[0]:
            return self.rows[0][0]
        return None

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def format_table(self, max_rows: int = 20) -> str:
        """ASCII rendering for examples and debugging."""
        shown = self.rows[:max_rows]
        cells = [[str(c) for c in self.columns]] + [
            ["NULL" if value is None else str(value) for value in row] for row in shown
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))] if self.columns else []
        lines = []
        for row_index, row in enumerate(cells):
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
            if row_index == 0:
                lines.append("-+-".join("-" * width for width in widths))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        suffix = ", degraded=True" if self.degraded else ""
        return f"QueryResult({len(self.rows)} rows, columns={self.columns}{suffix})"
