"""The database facade: DDL, DML, queries, merge, durability, monitoring.

:class:`Database` wires the substrates together the way Figure 2 wires the
HANA system: the column/row store, the transaction manager, the SQL stack
(parser → planner → vectorised executor), the function registry, the text
indexes, the semantic pruning hooks of the aging subsystem, and optional
file persistence. The specialised engines (graph, geo, time series, ...)
operate on the same catalog and transaction manager.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.analysis import plancheck
from repro.columnstore.merge import MergeStats, merge_table
from repro.columnstore.partition import (
    HashPartitioning,
    PartitionSpec,
    RangePartitioning,
)
from repro.columnstore.persistence import PersistenceManager
from repro.columnstore.rowstore import RowTable
from repro.columnstore.table import ColumnTable
from repro.core import types as dt
from repro.core.catalog import Catalog
from repro.core.result import QueryResult
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import DuplicateObjectError, PlanError, TableNotFoundError
from repro.sql import ast
from repro.sql import plancache
from repro.sql.context import ExecutionContext
from repro.sql.executor import execute as execute_plan
from repro.sql.expressions import Batch, evaluate
from repro.sql.feedback import CardinalityFeedback, ReplanSignal
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse
from repro.sql.planner import QueryPlan, plan_select
from repro.transaction.manager import Transaction, TransactionManager

PruningHook = Callable[[ColumnTable, list[ast.Expr], ExecutionContext], set[int] | None]

#: simulated optimizer cost charged to the query budget per re-planning pass
REPLAN_PLANNING_SECONDS = 0.005


class Database:
    """One in-memory database instance (the HANA core of the ecosystem)."""

    def __init__(
        self,
        name: str = "hana",
        data_dir: str | os.PathLike[str] | None = None,
        persist_feedback: bool = True,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.persistence: PersistenceManager | None = (
            PersistenceManager(data_dir) if data_dir is not None else None
        )
        self.txn_manager = TransactionManager(
            redo_writer=self.persistence.write_redo if self.persistence else None
        )
        #: (table, column) -> inverted index, maintained by the text engine
        self.text_indexes: dict[tuple[str, str], Any] = {}
        #: semantic partition-pruning hooks (installed by repro.aging)
        self.pruning_hooks: list[PruningHook] = []
        #: session defaults copied into every execution context
        self.parameters: dict[str, Any] = {}
        #: observed cardinalities per operator signature (docs/OPTIMIZER.md)
        self.feedback = CardinalityFeedback()
        #: compiled logical plans keyed by query-shape fingerprint
        self.plan_cache = plancache.PlanCache()
        #: master switches for the adaptive optimizer — benchmarks flip
        #: these to measure static vs. adaptive planning (E26)
        self.plan_cache_enabled = True
        self.adaptive_planning = True
        #: mid-query re-optimizations allowed per statement execution
        self.max_reoptimizations = 1
        #: learned cardinalities survive restarts (ROADMAP item 1): the
        #: feedback store autoloads here and autosaves at every savepoint,
        #: so a recovered instance plans with its pre-crash estimates
        #: instead of re-learning from scratch. ``persist_feedback=False``
        #: opts out (e.g. benchmarks that want a cold optimizer).
        self._feedback_path = (
            self.persistence.directory / "feedback.json"
            if self.persistence is not None and persist_feedback
            else None
        )
        if self._feedback_path is not None and self._feedback_path.exists():
            self.feedback.load(self._feedback_path)
        if self.persistence is not None:
            self._recover()

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start an explicit transaction."""
        return self.txn_manager.begin()

    def commit(self, txn: Transaction) -> int:
        return self.txn_manager.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)

    # -- DDL ---------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        partitioning: PartitionSpec | None = None,
        store: str = "column",
        flexible: bool = False,
        sorted_dictionaries: bool = True,
    ) -> Any:
        """Create and register a table; returns the table object."""
        if store == "row":
            table: Any = RowTable(name.lower(), schema)
        else:
            table = ColumnTable(
                name.lower(),
                schema,
                partitioning=partitioning,
                flexible=flexible,
                sorted_dictionaries=sorted_dictionaries,
            )
        self.catalog.register_table(table)
        # DDL invalidation: a (re)created table voids plans that read it
        self.plan_cache.invalidate_table(name.lower())
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.text_indexes = {
            key: index for key, index in self.text_indexes.items() if key[0] != name.lower()
        }
        # DDL invalidation: cached plans and learned cardinalities both die
        self.plan_cache.invalidate_table(name.lower())
        self.feedback.forget_table(name.lower())

    def table(self, name: str) -> Any:
        return self.catalog.table(name)

    # -- SQL entry point ------------------------------------------------------------

    def execute(
        self,
        sql: str,
        txn: Transaction | None = None,
        parameters: Mapping[str, Any] | None = None,
        budget: Any = None,
    ) -> QueryResult:
        """Parse and execute one SQL statement.

        Without an explicit transaction, writes auto-commit and reads use
        the freshest committed snapshot. ``budget`` (a
        :class:`repro.qos.QueryBudget`) governs SELECTs: crossing a soft
        limit returns a truncated result with ``QueryResult.degraded``
        set; crossing a hard limit raises
        :class:`~repro.errors.BudgetExceededError`.
        """
        statement = parse(sql)
        return self.execute_statement(statement, txn, parameters, budget)

    def execute_statement(
        self,
        statement: ast.Statement,
        txn: Transaction | None = None,
        parameters: Mapping[str, Any] | None = None,
        budget: Any = None,
    ) -> QueryResult:
        if isinstance(statement, (ast.SelectStatement, ast.UnionStatement)):
            return self._execute_select(statement, txn, parameters, budget)
        if isinstance(statement, ast.InsertStatement):
            return self._autocommit(statement, txn, self._execute_insert, parameters)
        if isinstance(statement, ast.UpdateStatement):
            return self._autocommit(statement, txn, self._execute_update, parameters)
        if isinstance(statement, ast.DeleteStatement):
            return self._autocommit(statement, txn, self._execute_delete, parameters)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTableStatement):
            try:
                self.drop_table(statement.table)
            except TableNotFoundError:
                if not statement.if_exists:
                    raise
            return QueryResult([], [], rowcount=0)
        if isinstance(statement, ast.MergeDeltaStatement):
            stats = self.merge(statement.table)
            return QueryResult(
                ["rows_merged", "columns_remapped"],
                [[stats.rows_merged, stats.columns_remapped]],
            )
        if isinstance(statement, ast.TransactionStatement):
            raise PlanError(
                "BEGIN/COMMIT/ROLLBACK are session-level statements; "
                "use a Session or the begin()/commit()/rollback() API"
            )
        raise PlanError(f"unsupported statement {type(statement).__name__}")

    # -- query ------------------------------------------------------------------------

    def _context(
        self, txn: Transaction | None, parameters: Mapping[str, Any] | None
    ) -> ExecutionContext:
        merged = dict(self.parameters)
        if parameters:
            merged.update(parameters)
        if txn is not None:
            return ExecutionContext(
                database=self,
                snapshot_cid=txn.snapshot_cid,
                own_tid=txn.tid,
                functions=self.functions,
                parameters=merged,
            )
        return ExecutionContext(
            database=self,
            snapshot_cid=self.txn_manager.last_committed_cid,
            own_tid=0,
            functions=self.functions,
            parameters=merged,
        )

    def _plan_with_cache(
        self, statement: "ast.SelectStatement | ast.UnionStatement"
    ) -> tuple[QueryPlan, str | None]:
        """Plan through the plan cache (docs/OPTIMIZER.md).

        A hit binds a *private copy* of the cached plan to this
        statement's constants and skips planning entirely (the entry is
        never mutated, so concurrent sessions can hit the same shape); a
        miss (or a stale entry whose feedback versions moved) plans with
        the current feedback store and caches the result.
        """
        if not self.plan_cache_enabled:
            plan = plan_select(statement, self.catalog, feedback=self.feedback)
            if plancheck.enabled():
                plancheck.check_plan(plan, self.catalog)
            return plan, None
        key = plancache.fingerprint(statement)
        entry = self.plan_cache.get(key, self.feedback)
        if entry is not None:
            bound = plancache.instantiate(entry, statement)
            if bound is not None:
                if plancheck.enabled():
                    findings = plancheck.verify_binding(entry, bound, statement)
                    if findings:
                        raise plancheck.PlanCheckError(findings)
                return bound, key
        with obs.latency("sql.plan_seconds"):
            plan = plan_select(statement, self.catalog, feedback=self.feedback)
        self._cache_plan(key, statement, plan)
        return plan, key

    def _cache_plan(
        self,
        key: str,
        statement: "ast.SelectStatement | ast.UnionStatement",
        plan: QueryPlan,
    ) -> None:
        tables = plancache.plan_tables(plan.root)
        entry = plancache.PlanEntry(
            plan=plan,
            slots=plancache.collect_literals(statement),
            tables=tables,
            versions=self.feedback.versions(tables),
        )
        findings = plancheck.verify_entry(entry, statement, key, self.catalog)
        if findings:
            # a plan that fails verification is never cached: the fresh
            # plan still answers this query, the shape just replans on
            # every execution. Genuine IR corruption (anything beyond a
            # cache-suitability finding) is a planner bug and escalates
            # to a hard error under REPRO_PLANCHECK.
            obs.count("sql.plancheck.rejected")
            if plancheck.enabled() and any(f.check != "cache" for f in findings):
                raise plancheck.PlanCheckError(findings)
            return
        entry.seal = plancheck.entry_seal(entry)
        self.plan_cache.put(key, entry)

    def _execute_select(
        self,
        statement: "ast.SelectStatement | ast.UnionStatement",
        txn: Transaction | None,
        parameters: Mapping[str, Any] | None,
        budget: Any = None,
    ) -> QueryResult:
        with obs.latency("sql.select_seconds"):
            plan, cache_key = self._plan_with_cache(statement)
            context = self._context(txn, parameters)
            context.feedback = self.feedback
            governor = None
            if budget is not None:
                from repro.qos.governor import ResourceGovernor

                governor = ResourceGovernor(budget)
                context.governor = governor
            reoptimizations = 0
            if self.adaptive_planning:
                context.replans_remaining = self.max_reoptimizations
                context.scan_cache = {}
            while True:
                try:
                    batch = execute_plan(plan, context)
                    break
                except ReplanSignal:
                    # mid-query re-optimization: the aborted attempt's
                    # actuals are already in the feedback store, and its
                    # completed scans stay memoised on context.scan_cache,
                    # so the re-planned attempt resumes rather than redoes
                    reoptimizations += 1
                    context.replans_remaining -= 1
                    obs.count("sql.reopt.replans")
                    if governor is not None:
                        governor.charge_planning(REPLAN_PLANNING_SECONDS)
                    with obs.latency("sql.plan_seconds"):
                        plan = plan_select(
                            statement, self.catalog, feedback=self.feedback
                        )
                    if cache_key is not None:
                        self._cache_plan(cache_key, statement, plan)
            if reoptimizations:
                context.bump("reoptimizations", reoptimizations)
            if governor is not None and governor.degraded:
                return QueryResult(
                    plan.output_names,
                    batch.rows(),
                    degraded=True,
                    degraded_reasons=list(governor.degraded_reasons),
                    reoptimizations=reoptimizations,
                )
            return QueryResult(
                plan.output_names, batch.rows(), reoptimizations=reoptimizations
            )

    def query(self, sql: str, **parameters: Any) -> QueryResult:
        """Convenience: execute a SELECT with keyword parameters."""
        return self.execute(sql, parameters=parameters or None)

    def profile(
        self,
        sql: str,
        txn: Transaction | None = None,
        parameters: Mapping[str, Any] | None = None,
    ) -> "obs.Profile":
        """Execute a SELECT with per-operator profiling (EXPLAIN PROFILE).

        Returns a :class:`repro.obs.Profile`: the executed plan tree where
        every operator node carries its output row count and wall time,
        plus the ordinary query result and the execution-context counters.
        Works regardless of whether global observability is enabled — the
        profiler is installed on this one execution's context.
        """
        statement = parse(sql)
        if not isinstance(statement, (ast.SelectStatement, ast.UnionStatement)):
            raise PlanError("profile() supports SELECT statements only")
        plan = plan_select(statement, self.catalog, feedback=self.feedback)
        context = self._context(txn, parameters)
        # profiled runs do not auto-record feedback: a profile is a
        # measurement, and feeding it back is the caller's explicit call
        # (``database.feedback.harvest(profile.root)``) — so profiling a
        # query never changes how its next plain execution is planned
        profiler = obs.QueryProfiler()
        context.profiler = profiler
        with obs.span("sql.profile", sql=sql.strip()):
            batch = execute_plan(plan, context)
        result = QueryResult(plan.output_names, batch.rows())
        root = profiler.root
        assert root is not None  # the executor always visits plan.root
        return obs.Profile(
            sql=sql, root=root, result=result, metrics=dict(context.metrics)
        )

    # -- DML ---------------------------------------------------------------------------

    def _autocommit(
        self,
        statement: Any,
        txn: Transaction | None,
        runner: Callable[[Any, Transaction, Mapping[str, Any] | None], int],
        parameters: Mapping[str, Any] | None,
    ) -> QueryResult:
        own = txn is None
        active = txn if txn is not None else self.begin()
        try:
            count = runner(statement, active, parameters)
        except Exception:
            obs.count("core.dml_rollbacks")
            if own:
                self.rollback(active)
            raise
        if own:
            self.commit(active)
        return QueryResult([], [], rowcount=count)

    def _const_value(self, expr: ast.Expr, context: ExecutionContext) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        array = evaluate(expr, Batch({}, 1), context)
        value = array[0]
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float) and value != value:
            return None
        return value

    def _execute_insert(
        self,
        statement: ast.InsertStatement,
        txn: Transaction,
        parameters: Mapping[str, Any] | None,
    ) -> int:
        table = self.catalog.table(statement.table)
        context = self._context(txn, parameters)
        if statement.select is not None:
            plan = plan_select(statement.select, self.catalog)
            batch = execute_plan(plan, context)
            source_rows: Iterable[Sequence[Any]] = batch.rows()
        else:
            source_rows = [
                [self._const_value(expr, context) for expr in row]
                for row in statement.rows
            ]
        count = 0
        for row in source_rows:
            if statement.columns is not None:
                mapping = dict(zip(statement.columns, row))
                if isinstance(table, ColumnTable):
                    table.ensure_columns(mapping, dt.VARCHAR)
                table.insert(mapping, txn)
            else:
                table.insert(list(row), txn)
            count += 1
        return count

    def _matching_positions(
        self,
        table: ColumnTable,
        where: ast.Expr | None,
        context: ExecutionContext,
    ) -> list[tuple[int, int]]:
        """(partition ordinal, position) of visible rows matching WHERE."""
        matches: list[tuple[int, int]] = []
        for ordinal, partition in enumerate(table.partitions):
            positions = partition.visible_positions(context.snapshot_cid, context.own_tid)
            if len(positions) == 0:
                continue
            if where is not None:
                columns = {
                    name.lower(): partition.column_array(name)[positions]
                    for name in table.schema.column_names
                }
                batch = Batch(columns, len(positions))
                mask = np.asarray(evaluate(where, batch, context), dtype=bool)
                positions = positions[mask]
            matches.extend((ordinal, int(position)) for position in positions)
        return matches

    def _execute_update(
        self,
        statement: ast.UpdateStatement,
        txn: Transaction,
        parameters: Mapping[str, Any] | None,
    ) -> int:
        table = self.catalog.table(statement.table)
        context = self._context(txn, parameters)
        if isinstance(table, RowTable):
            return self._update_rowstore(table, statement, txn, context)
        matches = self._matching_positions(table, statement.where, context)
        count = 0
        for ordinal, position in matches:
            partition = table.partitions[ordinal]
            row_values = partition.rows_at(np.asarray([position]))[0]
            row_batch = Batch(
                {
                    name.lower(): np.asarray([value], dtype=object)
                    for name, value in zip(table.schema.column_names, row_values)
                },
                1,
            )
            changes = {
                column: self._unbox(evaluate(expr, row_batch, context)[0])
                for column, expr in statement.assignments
            }
            table.update_at(ordinal, position, changes, txn)
            count += 1
        return count

    def _update_rowstore(
        self,
        table: RowTable,
        statement: ast.UpdateStatement,
        txn: Transaction,
        context: ExecutionContext,
    ) -> int:
        positions = table.visible_positions(context.snapshot_cid, context.own_tid)
        count = 0
        for position in positions:
            row = table.rows[int(position)]
            row_batch = Batch(
                {
                    name.lower(): np.asarray([value], dtype=object)
                    for name, value in zip(table.schema.column_names, row)
                },
                1,
            )
            if statement.where is not None:
                keep = bool(np.asarray(evaluate(statement.where, row_batch, context), dtype=bool)[0])
                if not keep:
                    continue
            new_row = list(row)
            for column, expr in statement.assignments:
                new_row[table.schema.position(column)] = self._unbox(
                    evaluate(expr, row_batch, context)[0]
                )
            table.delete_at(int(position), txn)
            table.insert(new_row, txn)
            count += 1
        return count

    @staticmethod
    def _unbox(value: Any) -> Any:
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float) and value != value:
            return None
        return value

    def _execute_delete(
        self,
        statement: ast.DeleteStatement,
        txn: Transaction,
        parameters: Mapping[str, Any] | None,
    ) -> int:
        table = self.catalog.table(statement.table)
        context = self._context(txn, parameters)
        if isinstance(table, RowTable):
            positions = table.visible_positions(context.snapshot_cid, context.own_tid)
            count = 0
            for position in positions:
                row = table.rows[int(position)]
                if statement.where is not None:
                    row_batch = Batch(
                        {
                            name.lower(): np.asarray([value], dtype=object)
                            for name, value in zip(table.schema.column_names, row)
                        },
                        1,
                    )
                    if not bool(np.asarray(evaluate(statement.where, row_batch, context), dtype=bool)[0]):
                        continue
                table.delete_at(int(position), txn)
                count += 1
            return count
        matches = self._matching_positions(table, statement.where, context)
        for ordinal, position in matches:
            table.delete_at(ordinal, position, txn)
        return len(matches)

    # -- DDL from AST ----------------------------------------------------------------------

    def _execute_create(self, statement: ast.CreateTableStatement) -> QueryResult:
        if self.catalog.has_table(statement.table):
            if statement.if_not_exists:
                return QueryResult([], [], rowcount=0)
            raise DuplicateObjectError(f"table already exists: {statement.table!r}")
        specs = [
            ColumnSpec(
                column.name.lower(),
                dt.type_from_name(
                    column.type_name,
                    length=column.length,
                    precision=column.precision,
                    scale=column.scale,
                ),
                nullable=column.nullable,
                default=column.default,
            )
            for column in statement.columns
        ]
        schema = TableSchema(specs, primary_key=tuple(c.lower() for c in statement.primary_key))
        partitioning: PartitionSpec | None = None
        if statement.partition_kind == "hash":
            partitioning = HashPartitioning(
                [c.lower() for c in statement.partition_columns],
                statement.partition_count or 1,
            )
        elif statement.partition_kind == "range":
            partitioning = RangePartitioning(
                statement.partition_columns[0].lower(), statement.partition_boundaries
            )
        table = self.create_table(
            statement.table,
            schema,
            partitioning=partitioning,
            store=statement.store,
            flexible=statement.flexible,
        )
        if self.persistence is not None:
            self.persistence.write_redo(
                [
                    {
                        "op": "create_table",
                        "table": table.name,
                        "ddl": _describe_table(table),
                    }
                ],
                cid=self.txn_manager.last_committed_cid + 1,
            )
        return QueryResult([], [], rowcount=0)

    # -- maintenance --------------------------------------------------------------------------

    def merge(self, table_name: str, compact: bool = False) -> MergeStats:
        """Run the delta merge on one table."""
        table = self.catalog.table(table_name)
        if not isinstance(table, ColumnTable):
            return MergeStats()
        stats = merge_table(table, compact=compact)
        # a delta merge changes partition layout and the cost picture:
        # plans against the pre-merge shape must be re-planned
        self.plan_cache.invalidate_table(table.name)
        if compact and self.persistence is not None:
            # compaction invalidates nothing logically, but take a savepoint
            # so the (logical) log stays small
            self.savepoint()
        return stats

    def merge_all(self, compact: bool = False) -> MergeStats:
        """Merge every column table."""
        total = MergeStats()
        for table in list(self.catalog.tables()):
            if isinstance(table, ColumnTable):
                total.merge(merge_table(table, compact=compact))
                self.plan_cache.invalidate_table(table.name)
        return total

    # -- durability ------------------------------------------------------------------------------

    def physical_savepoint(self) -> None:
        """SOFORT-style savepoint: persist the table *data structures*.

        Recovery from a physical savepoint re-attaches fragments instead of
        re-inserting rows — the fast-restart design of the paper's NVM
        trend paragraph (§IV.A, ref [10]). Compare benchmark E19.
        """
        if self.persistence is None:
            return
        tables = {
            table.name: table
            for table in self.catalog.tables()
            if isinstance(table, (ColumnTable, RowTable))
        }
        self.persistence.write_physical_savepoint(
            tables, self.txn_manager.last_committed_cid
        )
        self._save_feedback()

    def savepoint(self) -> None:
        """Write a logical snapshot of all committed data; truncate the log."""
        if self.persistence is None:
            return
        snapshot_cid = self.txn_manager.last_committed_cid
        tables_payload: dict[str, Any] = {}
        for table in self.catalog.tables():
            if isinstance(table, (ColumnTable, RowTable)):
                if isinstance(table, ColumnTable):
                    rows = table.scan_rows(snapshot_cid)
                else:
                    rows = table.scan(snapshot_cid)
                tables_payload[table.name] = {
                    "ddl": _describe_table(table),
                    "rows": rows,
                }
        self.persistence.write_savepoint({"cid": snapshot_cid, "tables": tables_payload})
        self._save_feedback()

    def _save_feedback(self) -> None:
        """Persist the cardinality feedback store next to the savepoint."""
        if self._feedback_path is not None:
            self.feedback.save(self._feedback_path)

    def _recover(self) -> None:
        """Load the latest savepoint and replay the redo-log tail.

        The log tail is materialised *before* the savepoint load: loading
        goes through regular (logged) inserts, so reading the file lazily
        would re-observe those writes and double-apply rows. After replay a
        fresh savepoint re-baselines the on-disk state.
        """
        assert self.persistence is not None
        commits = self.persistence.read_redo()
        physical = self.persistence.read_physical_savepoint()
        if physical is not None:
            # SOFORT path: re-attach the data structures, replay the tail
            for _name, table in physical["tables"].items():
                _scrub_in_flight_stamps(table)
                self.catalog.replace_table(table)
            # resume commit ids where the previous incarnation stopped, so
            # the re-attached MVCC stamps stay meaningful
            self.txn_manager._last_committed_cid = physical["cid"]
            for _cid, records in commits:
                txn = self.txn_manager.begin()
                for record in records:
                    self._replay(record, txn)
                self.txn_manager.commit(txn)
            if commits:
                self.physical_savepoint()
            return
        snapshot = self.persistence.read_savepoint()
        if snapshot is not None:
            for name, payload in snapshot["tables"].items():
                table = _table_from_description(name, payload["ddl"])
                self.catalog.replace_table(table)
                txn = self.txn_manager.begin()
                table.insert_many(payload["rows"], txn)
                self.txn_manager.commit(txn)
        for _cid, records in commits:
            # Logical replay: records carry table names and full rows.
            txn = self.txn_manager.begin()
            try:
                for record in records:
                    self._replay(record, txn)
                self.txn_manager.commit(txn)
            except Exception:
                obs.count("core.recovery_rollbacks")
                self.txn_manager.rollback(txn)
                raise
        if snapshot is not None or commits:
            self.savepoint()

    def _replay(self, record: dict[str, Any], txn: Transaction) -> None:
        operation = record.get("op")
        if operation == "create_table":
            if not self.catalog.has_table(record["table"]):
                table = _table_from_description(record["table"], record["ddl"])
                self.catalog.register_table(table)
            return
        table = self.catalog.table(record["table"])
        if operation == "insert":
            table.insert(record["row"], txn)
        elif operation == "delete":
            target = table.schema.coerce_row(record["row"])
            if isinstance(table, ColumnTable):
                matches = table.find_rows(
                    lambda row: row == target, txn.snapshot_cid, txn.tid
                )
                if matches:
                    ordinal, position, _row = matches[0]
                    table.partitions[ordinal].mark_deleted(position, txn)
            else:
                positions = table.visible_positions(txn.snapshot_cid, txn.tid)
                for position in positions:
                    if table.rows[int(position)] == target:
                        table.delete_at(int(position), txn)
                        break

    # -- monitoring (the "one administration experience") --------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Instance-wide monitoring snapshot."""
        tables = [
            table.statistics() if isinstance(table, ColumnTable) else {
                "table": table.name,
                "rows": len(table),
                "store": "row",
            }
            for table in self.catalog.tables()
        ]
        return {
            "name": self.name,
            "tables": tables,
            "commits": self.txn_manager.commits,
            "aborts": self.txn_manager.aborts,
            "active_transactions": self.txn_manager.active_count,
            "last_committed_cid": self.txn_manager.last_committed_cid,
            "text_indexes": len(self.text_indexes),
            "observability": {
                "enabled": obs.enabled(),
                "metrics_collected": len(obs.registry()) if obs.enabled() else 0,
            },
        }


def _scrub_in_flight_stamps(table: Any) -> None:
    """Resolve MVCC stamps of transactions that died with the old process.

    Uncommitted creations (negative stamps) become tombstones; uncommitted
    deletions are undone — the standard crash-recovery outcome for
    transactions that never reached their commit record.
    """
    from repro.transaction.mvcc import INF_CID

    if isinstance(table, ColumnTable):
        partitions = table.partitions
    elif isinstance(table, RowTable):
        partitions = [table]
    else:
        return
    for partition in partitions:
        created = partition.created.view()
        deleted = partition.deleted.view()
        created[created < 0] = INF_CID
        deleted[deleted < 0] = INF_CID


def _describe_table(table: Any) -> dict[str, Any]:
    """Serialisable DDL description for savepoints."""
    schema: TableSchema = table.schema
    return {
        "store": "row" if isinstance(table, RowTable) else "column",
        "flexible": getattr(table, "flexible", False),
        "columns": [
            {
                "name": spec.name,
                "type": spec.dtype.code.value,
                "nullable": spec.nullable,
            }
            for spec in schema.columns
        ],
        "primary_key": list(schema.primary_key),
    }


def _table_from_description(name: str, ddl: dict[str, Any]) -> Any:
    specs = [
        ColumnSpec(column["name"], dt.type_from_name(column["type"]), nullable=column["nullable"])
        for column in ddl["columns"]
    ]
    schema = TableSchema(specs, primary_key=tuple(ddl.get("primary_key", [])))
    if ddl.get("store") == "row":
        return RowTable(name, schema)
    return ColumnTable(name, schema, flexible=ddl.get("flexible", False))
