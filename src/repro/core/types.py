"""SQL data types of the repro engine.

The column store is typed: every column declares a :class:`DataType` which
controls coercion on insert, the NumPy dtype used for encoded vectors, and
which specialised engine (geo, time series, document) interprets the values.

Types mirror the paper's Section II: the classical relational types plus the
"more semantics to the data" types — ``GEOMETRY`` (Section II.F), ``DOCUMENT``
(Section II.H JSON documents), and ``TIMESERIES`` (Section II.F).
"""

from __future__ import annotations

import datetime as _dt
import enum
import json
import math
from typing import Any

from repro.errors import TypeMismatchError


class TypeCode(enum.Enum):
    """Wire-level codes for the supported SQL types."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    GEOMETRY = "GEOMETRY"
    DOCUMENT = "DOCUMENT"
    TIMESERIES = "TIMESERIES"


_NUMERIC_CODES = {
    TypeCode.INTEGER,
    TypeCode.BIGINT,
    TypeCode.DOUBLE,
    TypeCode.DECIMAL,
}

_EPOCH_DATE = _dt.date(1970, 1, 1)


class DataType:
    """A concrete SQL type with coercion and ordering semantics.

    Instances are lightweight and hashable; use the module-level singletons
    (:data:`INTEGER`, :data:`VARCHAR`, ...) rather than constructing new
    ones unless a parameterised type (``DECIMAL(p, s)``, ``VARCHAR(n)``) is
    required.
    """

    __slots__ = ("code", "length", "precision", "scale")

    def __init__(
        self,
        code: TypeCode,
        length: int | None = None,
        precision: int | None = None,
        scale: int | None = None,
    ) -> None:
        self.code = code
        self.length = length
        self.precision = precision
        self.scale = scale

    # -- identity ---------------------------------------------------------

    def __repr__(self) -> str:
        if self.code is TypeCode.VARCHAR and self.length is not None:
            return f"VARCHAR({self.length})"
        if self.code is TypeCode.DECIMAL and self.precision is not None:
            return f"DECIMAL({self.precision},{self.scale or 0})"
        return self.code.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and self.code is other.code

    def __hash__(self) -> int:
        return hash(self.code)

    # -- classification ---------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        """True for types that participate in arithmetic."""
        return self.code in _NUMERIC_CODES

    @property
    def is_temporal(self) -> bool:
        """True for DATE and TIMESTAMP."""
        return self.code in (TypeCode.DATE, TypeCode.TIMESTAMP)

    @property
    def is_engine_type(self) -> bool:
        """True for types interpreted by a specialised engine."""
        return self.code in (
            TypeCode.GEOMETRY,
            TypeCode.DOCUMENT,
            TypeCode.TIMESERIES,
        )

    # -- coercion ---------------------------------------------------------

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type's canonical Python representation.

        ``None`` always passes through (SQL NULL). Raises
        :class:`TypeMismatchError` when the value cannot be represented.
        """
        if value is None:
            return None
        try:
            return _COERCERS[self.code](self, value)
        except TypeMismatchError:
            raise
        except (TypeError, ValueError, OverflowError) as exc:
            raise TypeMismatchError(
                f"cannot coerce {value!r} to {self!r}: {exc}"
            ) from exc

    def sort_key(self, value: Any) -> Any:
        """Return a totally-ordered key for dictionary sorting."""
        return value


def _coerce_integer(dtype: DataType, value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        result = value
    elif isinstance(value, float):
        if not value.is_integer():
            raise TypeMismatchError(f"non-integral float {value!r} for {dtype!r}")
        result = int(value)
    elif isinstance(value, str):
        result = int(value.strip())
    else:
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to {dtype!r}")
    if dtype.code is TypeCode.INTEGER and not -(2**31) <= result < 2**31:
        raise TypeMismatchError(f"INTEGER out of range: {result}")
    if not -(2**63) <= result < 2**63:
        raise TypeMismatchError(f"BIGINT out of range: {result}")
    return result


def _coerce_double(dtype: DataType, value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        result = float(value.strip())
        if math.isnan(result):
            raise TypeMismatchError("NaN is not a valid DOUBLE literal")
        return result
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to {dtype!r}")


def _coerce_decimal(dtype: DataType, value: Any) -> float:
    # Decimals are carried as floats rounded to the declared scale; exact
    # decimal arithmetic is out of scope for the reproduction.
    result = _coerce_double(dtype, value)
    if dtype.scale is not None:
        result = round(result, dtype.scale)
    return result


def _coerce_varchar(dtype: DataType, value: Any) -> str:
    if isinstance(value, str):
        result = value
    elif isinstance(value, (int, float, bool)):
        result = str(value)
    else:
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to {dtype!r}")
    if dtype.length is not None and len(result) > dtype.length:
        raise TypeMismatchError(
            f"value of length {len(result)} exceeds VARCHAR({dtype.length})"
        )
    return result


def _coerce_boolean(dtype: DataType, value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1"):
            return True
        if lowered in ("false", "f", "0"):
            return False
    raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")


def _coerce_date(dtype: DataType, value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return _dt.date.fromisoformat(value.strip())
    if isinstance(value, int):
        return _EPOCH_DATE + _dt.timedelta(days=value)
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to DATE")


def _coerce_timestamp(dtype: DataType, value: Any) -> _dt.datetime:
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value.strip())
    if isinstance(value, (int, float)):
        return _dt.datetime(1970, 1, 1) + _dt.timedelta(seconds=float(value))
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to TIMESTAMP")


def _coerce_geometry(dtype: DataType, value: Any) -> Any:
    # Geometries are stored as their WKT string; the geo engine parses them
    # lazily. Accept geometry objects exposing .wkt() or WKT strings.
    wkt = getattr(value, "wkt", None)
    if callable(wkt):
        return wkt()
    if isinstance(value, str):
        return value
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to GEOMETRY")


def _coerce_document(dtype: DataType, value: Any) -> str:
    # Documents are stored as canonical JSON text (sorted keys) so that
    # equal documents dictionary-encode to the same value id.
    if isinstance(value, str):
        value = json.loads(value)
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def _coerce_timeseries(dtype: DataType, value: Any) -> Any:
    # The time-series engine owns this representation; values are opaque
    # here (typically a repro.engines.timeseries.TimeSeries or its encoded
    # string form).
    return value


_COERCERS = {
    TypeCode.INTEGER: _coerce_integer,
    TypeCode.BIGINT: _coerce_integer,
    TypeCode.DOUBLE: _coerce_double,
    TypeCode.DECIMAL: _coerce_decimal,
    TypeCode.VARCHAR: _coerce_varchar,
    TypeCode.BOOLEAN: _coerce_boolean,
    TypeCode.DATE: _coerce_date,
    TypeCode.TIMESTAMP: _coerce_timestamp,
    TypeCode.GEOMETRY: _coerce_geometry,
    TypeCode.DOCUMENT: _coerce_document,
    TypeCode.TIMESERIES: _coerce_timeseries,
}


# Singleton instances for the non-parameterised types.
INTEGER = DataType(TypeCode.INTEGER)
BIGINT = DataType(TypeCode.BIGINT)
DOUBLE = DataType(TypeCode.DOUBLE)
DECIMAL = DataType(TypeCode.DECIMAL)
VARCHAR = DataType(TypeCode.VARCHAR)
BOOLEAN = DataType(TypeCode.BOOLEAN)
DATE = DataType(TypeCode.DATE)
TIMESTAMP = DataType(TypeCode.TIMESTAMP)
GEOMETRY = DataType(TypeCode.GEOMETRY)
DOCUMENT = DataType(TypeCode.DOCUMENT)
TIMESERIES = DataType(TypeCode.TIMESERIES)

_BY_NAME = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "REAL": DOUBLE,
    "DECIMAL": DECIMAL,
    "NUMERIC": DECIMAL,
    "VARCHAR": VARCHAR,
    "NVARCHAR": VARCHAR,
    "STRING": VARCHAR,
    "TEXT": VARCHAR,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "DATE": DATE,
    "TIMESTAMP": TIMESTAMP,
    "DATETIME": TIMESTAMP,
    "GEOMETRY": GEOMETRY,
    "ST_GEOMETRY": GEOMETRY,
    "DOCUMENT": DOCUMENT,
    "JSON": DOCUMENT,
    "TIMESERIES": TIMESERIES,
}


def type_from_name(
    name: str,
    length: int | None = None,
    precision: int | None = None,
    scale: int | None = None,
) -> DataType:
    """Resolve a SQL type name (case-insensitive) to a :class:`DataType`.

    >>> type_from_name("varchar", length=10)
    VARCHAR(10)
    """
    try:
        base = _BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown SQL type: {name!r}") from None
    if length is None and precision is None and scale is None:
        return base
    return DataType(base.code, length=length, precision=precision, scale=scale)
