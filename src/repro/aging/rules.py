"""Application-defined aging rules (§III "data aging").

"By letting the application define the aging rules and storing them in the
metadata of the database, the aging mechanism acquires a semantic meaning
which allows for much better partition pruning than any approach purely
based on access statistics."

An :class:`AgingRule` carries

* a SQL predicate describing which rows may age (evaluated row-wise when
  the aging run executes),
* the **facts** automatically derived from the predicate's simple
  conjuncts — invariants true of every aged row, which the semantic pruner
  (:mod:`repro.aging.pruning`) checks queries against, and
* optional **dependencies** implementing the paper's order/invoice
  example: "an invoice can only be aged, if the corresponding sales order
  is also aged". Dependencies form a graph that must stay acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import AgingError
from repro.sql import ast
from repro.sql.context import ExecutionContext
from repro.sql.expressions import Batch, evaluate
from repro.sql.parser import parse_expression


@dataclass(frozen=True)
class Fact:
    """A simple invariant over aged rows: column <op> value."""

    column: str
    op: str  # "=", "<", "<=", ">", ">="
    value: Any


@dataclass(frozen=True)
class AgingDependency:
    """Child rows may age only if the referenced parent row is aged."""

    parent_table: str
    child_key_column: str     # FK column on the child table
    parent_key_column: str    # key column on the parent table


@dataclass
class AgingRule:
    """One table's aging rule."""

    table: str
    predicate_sql: str
    dependencies: list[AgingDependency] = field(default_factory=list)
    predicate: ast.Expr = field(init=False)
    facts: list[Fact] = field(init=False)

    def __post_init__(self) -> None:
        self.predicate = parse_expression(self.predicate_sql)
        self.facts = extract_facts(self.predicate)

    def eligible_mask(self, batch: Batch, context: ExecutionContext) -> np.ndarray:
        """Which rows of ``batch`` the predicate allows to age."""
        return np.asarray(evaluate(self.predicate, batch, context), dtype=bool)


def extract_facts(predicate: ast.Expr) -> list[Fact]:
    """Derive invariants from the predicate's simple AND-ed conjuncts.

    Only conjuncts of the form ``column <op> literal`` (or reversed)
    contribute; everything else is soundly ignored (fewer facts only means
    less pruning, never wrong pruning).
    """
    facts: list[Fact] = []
    for conjunct in ast.split_conjuncts(predicate):
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            if (
                isinstance(conjunct.operand, ast.ColumnRef)
                and isinstance(conjunct.low, ast.Literal)
                and isinstance(conjunct.high, ast.Literal)
            ):
                facts.append(Fact(conjunct.operand.name, ">=", conjunct.low.value))
                facts.append(Fact(conjunct.operand.name, "<=", conjunct.high.value))
            continue
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            facts.append(Fact(left.name, op, right.value))
        elif isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            facts.append(Fact(right.name, flipped, left.value))
    return facts


def contradicts(fact: Fact, conjunct: ast.Expr) -> bool:
    """True when a query conjunct can never hold for rows satisfying
    ``fact`` — the core of semantic pruning.

    Sound but incomplete: only simple column-vs-literal conjuncts are
    analysed; anything unrecognised returns False (no pruning).
    """
    query_facts = extract_facts(conjunct)
    for query in query_facts:
        if query.column != fact.column:
            continue
        try:
            if _ranges_disjoint(fact, query):
                return True
        except TypeError:
            continue
    return False


def _ranges_disjoint(a: Fact, b: Fact) -> bool:
    """Do the two single-column constraints exclude each other?"""
    # equality vs equality
    if a.op == "=" and b.op == "=":
        return a.value != b.value
    # equality vs range
    for eq, rng in ((a, b), (b, a)):
        if eq.op == "=" and rng.op != "=":
            return not _satisfies(eq.value, rng.op, rng.value)
    # range vs range: a < x vs b > y etc.
    upper = {"<": 0, "<=": 1}
    lower = {">": 0, ">=": 1}
    if a.op in upper and b.op in lower:
        return a.value < b.value or (a.value == b.value and (a.op == "<" or b.op == ">"))
    if a.op in lower and b.op in upper:
        return b.value < a.value or (b.value == a.value and (b.op == "<" or a.op == ">"))
    return False


def _satisfies(value: Any, op: str, bound: Any) -> bool:
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    return value == bound


class RuleSet:
    """All registered rules plus the dependency graph."""

    def __init__(self) -> None:
        self._rules: dict[str, AgingRule] = {}

    def register(self, rule: AgingRule) -> None:
        self._rules[rule.table.lower()] = rule
        self._check_acyclic()

    def rule_for(self, table: str) -> AgingRule | None:
        return self._rules.get(table.lower())

    def tables(self) -> list[str]:
        return sorted(self._rules)

    def _check_acyclic(self) -> None:
        """Reject dependency cycles (paper: "there is no cycle in the
        dependency graph")."""
        colors: dict[str, int] = {}

        def visit(table: str, stack: list[str]) -> None:
            state = colors.get(table, 0)
            if state == 1:
                cycle = " -> ".join(stack + [table])
                raise AgingError(f"cyclic aging dependencies: {cycle}")
            if state == 2:
                return
            colors[table] = 1
            rule = self._rules.get(table)
            if rule is not None:
                for dependency in rule.dependencies:
                    visit(dependency.parent_table.lower(), stack + [table])
            colors[table] = 2

        for table in self._rules:
            visit(table, [])

    def aging_order(self) -> list[str]:
        """Tables in dependency order: parents before children."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(table: str) -> None:
            if table in seen:
                return
            seen.add(table)
            rule = self._rules.get(table)
            if rule is not None:
                for dependency in rule.dependencies:
                    visit(dependency.parent_table.lower())
            if table in self._rules:
                order.append(table)

        for table in self._rules:
            visit(table)
        return order
