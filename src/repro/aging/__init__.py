"""Data aging: rules, temperature tiers, semantic pruning."""

from repro.aging.pruning import AgingManager
from repro.aging.rules import AgingDependency, AgingRule

__all__ = ["AgingManager", "AgingDependency", "AgingRule"]
