"""Semantic partition pruning driven by aging rules (§III).

The pruner is installed as a scan hook on the database: for every scan of
an aged table it checks whether any query conjunct *contradicts* a fact
that holds for all aged rows; if so, the aged partitions cannot contain
qualifying rows and are skipped. This is the "much better partition
pruning than any approach purely based on access statistics" the paper
argues for — it prunes even on the very first query, because the knowledge
comes from the application, not from observed access patterns.

Join pruning (the order/invoice example): when the child table's rule
carries a dependency "child ages only if its parent aged", a join whose
parent side is provably hot-only can also skip the child's aged
partitions — see :meth:`AgingManager.join_prunable`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.aging.rules import AgingDependency, AgingRule, RuleSet, contradicts
from repro.aging.tiering import (
    aged_ordinals,
    ensure_aged_partition,
    hot_ordinals,
    move_rows_to_aged,
)
from repro.columnstore.table import ColumnTable
from repro.errors import AgingError
from repro.sql import ast
from repro.sql.context import ExecutionContext
from repro.sql.expressions import Batch


class AgingManager:
    """Owns the rule set, runs aging, and installs the semantic pruner."""

    def __init__(self, database: Any) -> None:
        self.database = database
        self.rules = RuleSet()
        #: aged primary keys per table (drives dependency checks)
        self._aged_keys: dict[str, set[Any]] = {}
        database.pruning_hooks.append(self._pruning_hook)

    # -- registration ------------------------------------------------------------

    def define_rule(
        self,
        table: str,
        predicate_sql: str,
        dependencies: list[AgingDependency] | None = None,
    ) -> AgingRule:
        """Register an aging rule; stored in the catalog metadata."""
        target = self.database.catalog.table(table)
        if not isinstance(target, ColumnTable):
            raise AgingError("aging requires a column table")
        rule = AgingRule(table.lower(), predicate_sql, dependencies or [])
        self.rules.register(rule)
        self.database.catalog.annotate(table, "aging_rule", rule)
        ensure_aged_partition(target)
        self._aged_keys.setdefault(table.lower(), set())
        return rule

    # -- the aging run -------------------------------------------------------------

    def run(self, table: str | None = None) -> dict[str, int]:
        """Execute aging for one table or, in dependency order, for all.

        Returns rows moved per table.
        """
        tables = [table.lower()] if table is not None else self.rules.aging_order()
        moved: dict[str, int] = {}
        for name in tables:
            rule = self.rules.rule_for(name)
            if rule is None:
                raise AgingError(f"no aging rule for table {name!r}")
            moved[name] = self._age_table(rule)
        return moved

    def _age_table(self, rule: AgingRule) -> int:
        database = self.database
        table = database.catalog.table(rule.table)
        snapshot = database.txn_manager.last_committed_cid
        context = ExecutionContext(
            database=database,
            snapshot_cid=snapshot,
            functions=database.functions,
            parameters=dict(database.parameters),
        )
        key_columns = list(table.schema.primary_key) or [table.schema.column_names[0]]

        positions_by_ordinal: dict[int, np.ndarray] = {}
        aged_key_values: list[Any] = []
        for ordinal in hot_ordinals(table):
            partition = table.partitions[ordinal]
            positions = partition.visible_positions(snapshot)
            if len(positions) == 0:
                continue
            columns = {
                name.lower(): partition.column_array(name)[positions]
                for name in table.schema.column_names
            }
            batch = Batch(columns, len(positions))
            mask = rule.eligible_mask(batch, context)
            if rule.dependencies:
                mask &= self._dependency_mask(rule, table, batch)
            if not mask.any():
                continue
            selected = positions[mask]
            positions_by_ordinal[ordinal] = selected
            key_rows = [
                partition.values_at(column, selected) for column in key_columns
            ]
            aged_key_values.extend(zip(*key_rows))

        if not positions_by_ordinal:
            return 0
        moved = move_rows_to_aged(database, table, positions_by_ordinal)
        self._aged_keys.setdefault(rule.table, set()).update(aged_key_values)
        return moved

    def _dependency_mask(
        self, rule: AgingRule, table: ColumnTable, batch: Batch
    ) -> np.ndarray:
        """Rows whose every dependency parent is already aged."""
        mask = np.ones(len(batch), dtype=bool)
        for dependency in rule.dependencies:
            parent_keys = self._aged_keys.get(dependency.parent_table.lower(), set())
            child_values = batch.column(dependency.child_key_column)
            allowed = np.fromiter(
                ((value,) in parent_keys for value in child_values),
                dtype=bool,
                count=len(batch),
            )
            mask &= allowed
        return mask

    def aged_keys(self, table: str) -> set[Any]:
        """Primary keys moved to the aged tier so far."""
        return set(self._aged_keys.get(table.lower(), set()))

    # -- semantic pruning -------------------------------------------------------------

    def _pruning_hook(
        self,
        table: ColumnTable,
        conjuncts: list[ast.Expr],
        context: ExecutionContext,
    ) -> set[int] | None:
        rule = self.rules.rule_for(table.name)
        if rule is None or not conjuncts:
            return None
        aged = set(aged_ordinals(table))
        if not aged:
            return None
        for conjunct in conjuncts:
            for fact in rule.facts:
                if contradicts(fact, conjunct):
                    context.bump("semantic_prunes")
                    return set(range(len(table.partitions))) - aged
        return None

    def join_prunable(self, child_table: str, parent_hot_only: bool) -> list[int]:
        """Partitions of ``child_table`` a join must read.

        With a dependency rule ("child ages only if parent aged") and a
        parent side already restricted to hot rows, the aged child
        partitions cannot produce join matches and are skipped — the
        paper's extended order/invoice example. Without the dependency,
        every partition must be read.
        """
        table = self.database.catalog.table(child_table)
        rule = self.rules.rule_for(child_table)
        if parent_hot_only and rule is not None and rule.dependencies:
            return hot_ordinals(table)
        return list(range(len(table.partitions)))

    # -- statistics-based proposal (paper: "statistical methods can be used
    # to propose new application rules") ------------------------------------------

    def propose_rule(self, table: str, date_column: str, quantile: float = 0.5) -> str:
        """Suggest a predicate from the column's value distribution."""
        target = self.database.catalog.table(table)
        snapshot = self.database.txn_manager.last_committed_cid
        values = [
            row[0]
            for row in target.scan_rows(snapshot, columns=[date_column])
            if row[0] is not None
        ]
        if not values:
            raise AgingError(f"no data in {table}.{date_column} to analyse")
        values.sort()
        cutoff = values[int(len(values) * quantile)]
        literal = f"DATE '{cutoff.isoformat()}'" if hasattr(cutoff, "isoformat") else repr(cutoff)
        return f"{date_column} < {literal}"
