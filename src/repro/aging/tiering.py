"""Dynamic tiering: temperature partitions and extended storage (Fig. 1).

The aging run moves eligible rows from a table's *hot* partitions into a
dedicated *aged* partition. Aged partitions may additionally be evicted to
**extended storage** — a file-backed tier that reloads transparently on
access while charging simulated cold reads — or exported to the HDFS tier
(see :mod:`repro.hadoop.connectors`). This is the paper's "data aging /
temperature" pipeline: In-Memory → Extended Storage → HDFS.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.columnstore.column import DeltaColumn, MainColumn
from repro.columnstore.table import ColumnTable, TablePartition
from repro.errors import AgingError

from repro.util.arrays import GrowableInt64

AGED_TAG = "aged"


def ensure_aged_partition(table: ColumnTable) -> TablePartition:
    """Get or create the table's aged partition (tagged metadata)."""
    for partition in table.partitions:
        if partition.metadata.get("tag") == AGED_TAG:
            return partition
    partition = TablePartition(
        table.schema,
        name=f"{table.name}_aged",
        sorted_dictionaries=table.sorted_dictionaries,
        metadata={"tag": AGED_TAG},
    )
    table.partitions.append(partition)
    return partition


def hot_ordinals(table: ColumnTable) -> list[int]:
    """Ordinals of non-aged partitions."""
    return [
        ordinal
        for ordinal, partition in enumerate(table.partitions)
        if partition.metadata.get("tag") != AGED_TAG
    ]


def aged_ordinals(table: ColumnTable) -> list[int]:
    """Ordinals of aged partitions."""
    return [
        ordinal
        for ordinal, partition in enumerate(table.partitions)
        if partition.metadata.get("tag") == AGED_TAG
    ]


def move_rows_to_aged(
    database: Any,
    table: ColumnTable,
    positions_by_ordinal: dict[int, np.ndarray],
) -> int:
    """Transactionally move rows into the aged partition.

    The move is a delete from the source partition plus an insert into the
    aged partition within one transaction, so concurrent readers see either
    the hot or the aged version, never both or neither.
    """
    aged = ensure_aged_partition(table)
    txn = database.begin()
    moved = 0
    with obs.latency("aging.migration_seconds", table=table.name):
        try:
            for ordinal, positions in positions_by_ordinal.items():
                partition = table.partitions[ordinal]
                if partition is aged:
                    continue
                rows = partition.rows_at(positions)
                for position, row in zip(positions, rows):
                    partition.mark_deleted(int(position), txn)
                    new_position = aged.insert_row(row, txn)
                    _unused = new_position
                    moved += 1
        except Exception:
            obs.count("aging.tiering_rollbacks")
            database.rollback(txn)
            raise
        database.commit(txn)
    obs.count("aging.rows_moved", moved, table=table.name)
    return moved


# --------------------------------------------------------------------------
# extended storage (file-backed tier)
# --------------------------------------------------------------------------


def evict_partition(partition: TablePartition, directory: str | Path) -> Path:
    """Write the partition's fragments to disk and release the memory."""
    if partition.n_delta:
        raise AgingError("merge the delta before evicting a partition")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{partition.name}.tier"
    payload = {
        "main": partition.main,
        "created": partition.created.view().copy(),
        "deleted": partition.deleted.view().copy(),
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    obs.count("aging.partitions_evicted")
    partition.storage_path = str(path)
    partition.tier = "extended"
    partition.is_loaded = False
    empty_main = {
        key: MainColumn(column.dtype) for key, column in partition.main.items()
    }
    partition.main = empty_main
    partition.delta = {
        key: DeltaColumn(column.dtype) for key, column in partition.delta.items()
    }
    partition.created = GrowableInt64()
    partition.deleted = GrowableInt64()
    return path


def reload_partition(partition: TablePartition) -> None:
    """Reload an evicted partition from its backing file (lazy, on touch)."""
    if partition.is_loaded:
        return
    if partition.storage_path is None:
        raise AgingError(f"partition {partition.name!r} has no backing file")
    with obs.latency("aging.reload_seconds", partition=partition.name):
        with open(partition.storage_path, "rb") as handle:
            payload = pickle.load(handle)
        partition.main = payload["main"]
        partition.created = GrowableInt64(payload["created"])
        partition.deleted = GrowableInt64(payload["deleted"])
        partition.is_loaded = True
    obs.count("aging.partitions_reloaded")


def rehydrate_partition(partition: TablePartition) -> None:
    """Bring a partition fully back to the hot tier."""
    if not partition.is_loaded:
        reload_partition(partition)
    partition.tier = "hot"
    partition.storage_path = None
