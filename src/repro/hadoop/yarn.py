"""A YARN-style resource manager: containers, applications, scheduling.

The Hadoop ecosystem components "share ... the resource management
services (Yarn)" (§I.A), and Figure 4 runs the SOE "within YARN stack".
The manager tracks per-node container capacity, grants containers to
applications (FIFO with locality preference), and releases them on task
completion. The MapReduce runner and the SOE-on-Hadoop deployment both
allocate through it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.errors import YarnError


@dataclass(frozen=True)
class Container:
    """One granted execution slot."""

    container_id: int
    node_id: str
    application_id: int


@dataclass
class Application:
    """A registered application and its accounting."""

    application_id: int
    name: str
    containers: set[int] = field(default_factory=set)
    state: str = "RUNNING"  # RUNNING | FINISHED | KILLED


class ResourceManager:
    """Grants containers against per-node capacity."""

    def __init__(self, node_capacity: dict[str, int]) -> None:
        if not node_capacity:
            raise YarnError("need at least one node")
        self._capacity = dict(node_capacity)
        self._used: dict[str, int] = {node: 0 for node in node_capacity}
        self._applications: dict[int, Application] = {}
        self._containers: dict[int, Container] = {}
        self._app_ids = itertools.count(1)
        self._container_ids = itertools.count(1)
        #: FIFO of (application_id, preferred_node) waiting for capacity
        self._pending: deque[tuple[int, str | None]] = deque()
        self.granted_local = 0
        self.granted_remote = 0

    # -- applications ------------------------------------------------------------

    def submit_application(self, name: str) -> Application:
        application = Application(next(self._app_ids), name)
        self._applications[application.application_id] = application
        return application

    def application(self, application_id: int) -> Application:
        try:
            return self._applications[application_id]
        except KeyError:
            raise YarnError(f"unknown application {application_id}") from None

    def finish_application(self, application_id: int) -> None:
        application = self.application(application_id)
        for container_id in list(application.containers):
            self.release(container_id)
        application.state = "FINISHED"

    # -- containers ---------------------------------------------------------------

    def available(self, node_id: str) -> int:
        return self._capacity[node_id] - self._used[node_id]

    def total_available(self) -> int:
        return sum(self.available(node) for node in self._capacity)

    def allocate(
        self, application_id: int, preferred_node: str | None = None
    ) -> Container | None:
        """Grant one container, preferring ``preferred_node`` (data
        locality); returns ``None`` and queues the request when the cluster
        is full."""
        application = self.application(application_id)
        if application.state != "RUNNING":
            raise YarnError(f"application {application_id} is {application.state}")
        node_id = self._pick_node(preferred_node)
        if node_id is None:
            self._pending.append((application_id, preferred_node))
            return None
        if preferred_node is not None:
            if node_id == preferred_node:
                self.granted_local += 1
            else:
                self.granted_remote += 1
        self._used[node_id] += 1
        container = Container(next(self._container_ids), node_id, application_id)
        self._containers[container.container_id] = container
        application.containers.add(container.container_id)
        return container

    def _pick_node(self, preferred_node: str | None) -> str | None:
        if preferred_node is not None and preferred_node in self._capacity:
            if self.available(preferred_node) > 0:
                return preferred_node
        candidates = [node for node in self._capacity if self.available(node) > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda node: self.available(node))

    def release(self, container_id: int) -> None:
        container = self._containers.pop(container_id, None)
        if container is None:
            raise YarnError(f"unknown container {container_id}")
        self._used[container.node_id] -= 1
        self._applications[container.application_id].containers.discard(container_id)
        self._drain_pending()

    def _drain_pending(self) -> None:
        requeue: deque[tuple[int, str | None]] = deque()
        while self._pending:
            application_id, preferred = self._pending.popleft()
            application = self._applications.get(application_id)
            if application is None or application.state != "RUNNING":
                continue
            granted = self.allocate(application_id, preferred)
            if granted is None:
                # allocate() re-queued it; stop to avoid spinning
                break
        self._pending.extend(requeue)

    # -- stats -----------------------------------------------------------------------

    def statistics(self) -> dict[str, object]:
        return {
            "capacity": dict(self._capacity),
            "used": dict(self._used),
            "pending": len(self._pending),
            "applications": len(self._applications),
            "locality": {
                "local": self.granted_local,
                "remote": self.granted_remote,
            },
        }
