"""HANA ↔ HDFS connectors (§IV.C: the three integration paths, plus the
three ways to *store* on HDFS).

* :func:`load_hdfs_csv_into_database` / :func:`load_hdfs_csv_into_soe` —
  the **standard file reader** (integration path 1).
* :class:`HdfsSegmentStore` — "we implement one version of the distributed
  log on top of HDFS": a shared-log segment store persisting entries as
  HDFS file lines (storage way 3).
* :func:`export_aged_partition_to_hdfs` — "HDFS is used as an aging store
  for HANA, where aged data is stored on a cheap storage mechanism"
  (storage way 2).
* :func:`deploy_soe_on_datanodes` — "we allow to install the low footprint
  SAP HANA SOE on each Hadoop node": builds an SOE landscape whose workers
  are the HDFS datanodes, then loads files block-by-block *locally*
  (no network charge when the block replica is on the worker).

Integration path 2 (RDD wrapping) lives in :mod:`repro.hadoop.rdd`; path 3
(distributed SQL over both stores in one plan) in
:mod:`repro.federation.sda`.
"""

from __future__ import annotations

import json
from typing import Any

from repro import obs
from repro.aging.tiering import aged_ordinals
from repro.columnstore.table import ColumnTable
from repro.core.database import Database
from repro.errors import HadoopError, LogError, LogSealedError
from repro.hadoop.hdfs import HdfsCluster
from repro.soe.cluster import NetworkModel
from repro.soe.engine import SoeEngine


def _parse_csv_line(line: str, delimiter: str = ",") -> list[Any]:
    return [None if field == "" else field for field in line.split(delimiter)]


def load_hdfs_csv_into_database(
    database: Database,
    hdfs: HdfsCluster,
    path: str,
    table: str,
    delimiter: str = ",",
) -> int:
    """File-reader connector: HDFS CSV → existing HANA table (coerced)."""
    target = database.catalog.table(table)
    txn = database.begin()
    count = 0
    try:
        for line in hdfs.read_file(path):
            if not line.strip():
                continue
            target.insert(_parse_csv_line(line, delimiter), txn)
            count += 1
    except Exception:
        obs.count("hadoop.import_rollbacks")
        database.rollback(txn)
        raise
    database.commit(txn)
    return count


def load_hdfs_csv_into_soe(
    soe: SoeEngine,
    hdfs: HdfsCluster,
    path: str,
    table: str,
    delimiter: str = ",",
    types: list[type] | None = None,
) -> int:
    """File-reader connector: HDFS CSV → SOE table (bulk import)."""
    rows = []
    for line in hdfs.read_file(path):
        if not line.strip():
            continue
        values = _parse_csv_line(line, delimiter)
        if types is not None:
            values = [
                None if value is None else caster(value)
                for caster, value in zip(types, values)
            ]
        rows.append(values)
    return soe.load(table, rows)


# --------------------------------------------------------------------------
# shared log on HDFS
# --------------------------------------------------------------------------


class HdfsSegmentStore:
    """A shared-log segment replica persisting entries to an HDFS file.

    Entries append as JSON lines to ``/soelog/<segment name>``; an
    in-memory index mirrors the addresses for reads (a real implementation
    would rebuild it from the file on restart — :meth:`recover` does).
    """

    #: the HDFS cluster new instances attach to (set by make_factory)
    def __init__(self, name: str, hdfs: HdfsCluster, directory: str = "/soelog") -> None:
        self.name = name
        self.hdfs = hdfs
        self.path = f"{directory.rstrip('/')}/{name}"
        self._entries: dict[int, Any] = {}
        self.sealed_at: int | None = None
        if not hdfs.exists(self.path):
            hdfs.write_file(self.path, [])

    @classmethod
    def make_factory(cls, hdfs: HdfsCluster, directory: str = "/soelog"):
        """A store factory suitable for :class:`SharedLog`."""

        def factory(name: str) -> "HdfsSegmentStore":
            return cls(name, hdfs, directory)

        return factory

    def write(self, address: int, payload: Any) -> None:
        if self.sealed_at is not None and address >= self.sealed_at:
            raise LogSealedError(f"segment {self.name} sealed at {self.sealed_at}")
        if address in self._entries:
            raise LogError(f"address {address} already written in {self.name}")
        self.hdfs.append(self.path, [json.dumps({"a": address, "p": payload})])
        self._entries[address] = payload

    def read(self, address: int) -> Any:
        try:
            return self._entries[address]
        except KeyError:
            raise LogError(f"address {address} not written in {self.name}") from None

    def has(self, address: int) -> bool:
        return address in self._entries

    def trim(self, up_to: int) -> int:
        dropped = [address for address in self._entries if address < up_to]
        for address in dropped:
            del self._entries[address]
        surviving = [
            json.dumps({"a": address, "p": payload})
            for address, payload in sorted(self._entries.items())
        ]
        self.hdfs.write_file(self.path, surviving, overwrite=True)
        return len(dropped)

    def seal(self, at_address: int) -> None:
        self.sealed_at = at_address

    def recover(self) -> int:
        """Rebuild the in-memory index from the HDFS file."""
        self._entries = {}
        for line in self.hdfs.read_file(self.path):
            if not line.strip():
                continue
            record = json.loads(line)
            self._entries[record["a"]] = record["p"]
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------------------
# aging store on HDFS
# --------------------------------------------------------------------------


def export_aged_partition_to_hdfs(
    database: Database,
    table: str,
    hdfs: HdfsCluster,
    path: str,
    delimiter: str = ",",
) -> int:
    """Move a table's aged rows to HDFS (the cheapest tier of Figure 1).

    The aged partition's committed rows are written as CSV and deleted
    from the in-memory store; a catalog annotation records where they
    went so federation can still reach them.
    """
    target = database.catalog.table(table)
    if not isinstance(target, ColumnTable):
        raise HadoopError("aging export requires a column table")
    ordinals = aged_ordinals(target)
    if not ordinals:
        raise HadoopError(f"table {table!r} has no aged partition")
    snapshot = database.txn_manager.last_committed_cid
    lines: list[str] = []
    txn = database.begin()
    exported = 0
    try:
        for ordinal in ordinals:
            partition = target.partitions[ordinal]
            positions = partition.visible_positions(snapshot, txn.tid)
            rows = partition.rows_at(positions)
            for position, row in zip(positions, rows):
                lines.append(
                    delimiter.join("" if value is None else str(value) for value in row)
                )
                partition.mark_deleted(int(position), txn)
                exported += 1
    except Exception:
        obs.count("hadoop.export_rollbacks")
        database.rollback(txn)
        raise
    hdfs.write_file(path, lines, overwrite=True)
    database.commit(txn)
    database.catalog.annotate(table, "hdfs_aged_path", path)
    return exported


# --------------------------------------------------------------------------
# SOE on the datanodes
# --------------------------------------------------------------------------


def deploy_soe_on_datanodes(
    hdfs: HdfsCluster,
    network: NetworkModel | None = None,
    node_modes: str = "olap",
) -> SoeEngine:
    """Build an SOE landscape with one worker per HDFS datanode."""
    soe = SoeEngine(node_count=len(hdfs.datanodes), node_modes=node_modes, network=network)
    # remember the datanode each worker is colocated with
    soe.colocation = dict(zip(soe.worker_ids, sorted(hdfs.datanodes)))  # type: ignore[attr-defined]
    return soe


def load_hdfs_file_colocated(
    soe: SoeEngine,
    hdfs: HdfsCluster,
    path: str,
    table: str,
    types: list[type] | None = None,
    delimiter: str = ",",
) -> dict[str, int]:
    """Load an HDFS file into SOE with block locality.

    Each block is parsed on the worker colocated with a replica-holding
    datanode and lands in a partition owned by that worker; only blocks
    without a local replica pay a network transfer. Returns
    ``{"local_blocks": ..., "remote_blocks": ..., "rows": ...}``.
    """
    colocation: dict[str, str] = getattr(soe, "colocation", {})
    if not colocation:
        raise HadoopError("deploy the SOE with deploy_soe_on_datanodes first")
    datanode_to_worker = {dn: worker for worker, dn in colocation.items()}
    meta = soe.catalog.table(table.lower())
    from repro.soe.partitions import PrepackagedPartition

    stats = {"local_blocks": 0, "remote_blocks": 0, "rows": 0}
    file_meta = hdfs.file_meta(path)
    next_partition = 0
    for block in file_meta.blocks:
        local_workers = [
            datanode_to_worker[replica]
            for replica in block.replicas
            if replica in datanode_to_worker
        ]
        if local_workers:
            worker = local_workers[0]
            lines, _served = hdfs.read_block(block, prefer_node=colocation[worker])
            stats["local_blocks"] += 1
        else:
            worker = soe.worker_ids[next_partition % len(soe.worker_ids)]
            lines, _served = hdfs.read_block(block)
            payload = sum(len(line) + 1 for line in lines)
            soe.cluster.transfer("hdfs", worker, payload)
            stats["remote_blocks"] += 1
        partition = PrepackagedPartition(meta.name, next_partition, meta.columns)
        for line in lines:
            if not line.strip():
                continue
            values = _parse_csv_line(line, delimiter)
            if types is not None:
                values = [
                    None if value is None else caster(value)
                    for caster, value in zip(types, values)
                ]
            partition.append_row(values)
            stats["rows"] += 1
        soe.data_nodes[worker].own(
            meta.name, [partition], meta.key_positions, meta.partition_count
        )
        soe.catalog.place_partition(meta.name, next_partition, worker)
        next_partition += 1
    # the table's partition count must cover the blocks we created
    meta.partition_count = max(meta.partition_count, next_partition)
    return stats
