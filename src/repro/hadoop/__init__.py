"""The simulated Hadoop substrate: HDFS, YARN, MapReduce, RDD, Hive."""

from repro.hadoop.hdfs import HdfsCluster
from repro.hadoop.hive import HiveServer
from repro.hadoop.mapreduce import MapReduceJob, word_count_job
from repro.hadoop.rdd import Rdd, soe_table_rdd
from repro.hadoop.yarn import ResourceManager

__all__ = ["HdfsCluster", "HiveServer", "MapReduceJob", "word_count_job", "Rdd", "soe_table_rdd", "ResourceManager"]
