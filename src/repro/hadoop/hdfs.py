"""Simulated HDFS: namenode, datanodes, blocks, replication, locality.

Substitution (DESIGN.md): the paper's Hadoop integration claims only need
HDFS *semantics* — files split into replicated blocks spread over
datanodes, with block-location metadata that lets computation move to the
data. This module provides exactly that, storing block payloads as lists
of text lines (the natural unit for the MapReduce runner and the CSV
connectors).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import HdfsError


@dataclass
class BlockMeta:
    """One block's identity and placement."""

    block_id: int
    replicas: list[str]
    line_count: int
    byte_size: int


@dataclass
class FileMeta:
    """Namenode entry for one file."""

    path: str
    blocks: list[BlockMeta] = field(default_factory=list)

    @property
    def byte_size(self) -> int:
        return sum(block.byte_size for block in self.blocks)

    @property
    def line_count(self) -> int:
        return sum(block.line_count for block in self.blocks)


class HdfsDataNode:
    """Stores block payloads (lines of text)."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._blocks: dict[int, list[str]] = {}
        self.alive = True

    def store(self, block_id: int, lines: list[str]) -> None:
        self._blocks[block_id] = list(lines)

    def read(self, block_id: int) -> list[str]:
        if not self.alive:
            raise HdfsError(f"datanode {self.node_id} is down")
        try:
            return self._blocks[block_id]
        except KeyError:
            raise HdfsError(
                f"datanode {self.node_id} has no block {block_id}"
            ) from None

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)

    def block_count(self) -> int:
        return len(self._blocks)


class HdfsCluster:
    """Namenode + datanodes in one object."""

    def __init__(
        self,
        datanode_ids: Iterable[str] | int = 3,
        block_size_lines: int = 1000,
        replication: int = 2,
    ) -> None:
        if isinstance(datanode_ids, int):
            datanode_ids = [f"dn{i}" for i in range(datanode_ids)]
        ids = list(datanode_ids)
        if not ids:
            raise HdfsError("need at least one datanode")
        if replication > len(ids):
            raise HdfsError("replication factor exceeds datanode count")
        self.block_size_lines = block_size_lines
        self.replication = replication
        self.datanodes: dict[str, HdfsDataNode] = {
            node_id: HdfsDataNode(node_id) for node_id in ids
        }
        self._namespace: dict[str, FileMeta] = {}
        self._block_ids = itertools.count(1)
        self._placement_cursor = 0

    # -- namespace -----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def list_dir(self, prefix: str) -> list[str]:
        prefix = prefix.rstrip("/") + "/"
        return sorted(
            path for path in self._namespace if path.startswith(prefix)
        )

    def file_meta(self, path: str) -> FileMeta:
        try:
            return self._namespace[path]
        except KeyError:
            raise HdfsError(f"no such file: {path}") from None

    def delete(self, path: str) -> None:
        meta = self.file_meta(path)
        for block in meta.blocks:
            for node_id in block.replicas:
                self.datanodes[node_id].drop(block.block_id)
        del self._namespace[path]

    # -- write path ------------------------------------------------------------------

    def _place_replicas(self) -> list[str]:
        ids = list(self.datanodes)
        chosen = []
        for offset in range(self.replication):
            chosen.append(ids[(self._placement_cursor + offset) % len(ids)])
        self._placement_cursor += 1
        return chosen

    def write_file(self, path: str, lines: Iterable[str], overwrite: bool = False) -> FileMeta:
        """Create a file from text lines, splitting into replicated blocks."""
        if self.exists(path):
            if not overwrite:
                raise HdfsError(f"file exists: {path}")
            self.delete(path)
        meta = FileMeta(path)
        buffer: list[str] = []
        for line in lines:
            buffer.append(line)
            if len(buffer) >= self.block_size_lines:
                self._seal_block(meta, buffer)
                buffer = []
        if buffer or not meta.blocks:
            self._seal_block(meta, buffer)
        self._namespace[path] = meta
        return meta

    def append(self, path: str, lines: Iterable[str]) -> FileMeta:
        """Append lines (creates the file if missing)."""
        if not self.exists(path):
            return self.write_file(path, lines)
        meta = self.file_meta(path)
        buffer = list(lines)
        while buffer:
            chunk, buffer = buffer[: self.block_size_lines], buffer[self.block_size_lines :]
            self._seal_block(meta, chunk)
        return meta

    def _seal_block(self, meta: FileMeta, lines: list[str]) -> None:
        block_id = next(self._block_ids)
        replicas = self._place_replicas()
        for node_id in replicas:
            self.datanodes[node_id].store(block_id, lines)
        meta.blocks.append(
            BlockMeta(
                block_id=block_id,
                replicas=replicas,
                line_count=len(lines),
                byte_size=sum(len(line) + 1 for line in lines),
            )
        )

    # -- read path --------------------------------------------------------------------

    def read_block(self, block: BlockMeta, prefer_node: str | None = None) -> tuple[list[str], str]:
        """Read one block; returns (lines, serving node). Prefers the local
        replica when ``prefer_node`` holds one (data locality)."""
        order = list(block.replicas)
        if prefer_node in order:
            order.remove(prefer_node)
            order.insert(0, prefer_node)
        errors: list[str] = []
        for node_id in order:
            datanode = self.datanodes[node_id]
            if not datanode.alive:
                errors.append(f"{node_id} down")
                continue
            try:
                return datanode.read(block.block_id), node_id
            except HdfsError as exc:
                errors.append(str(exc))
        raise HdfsError(f"block {block.block_id} unreadable: {errors}")

    def read_file(self, path: str) -> Iterator[str]:
        """Stream a file's lines."""
        for block in self.file_meta(path).blocks:
            lines, _node = self.read_block(block)
            yield from lines

    # -- failure handling ------------------------------------------------------------------

    def kill_datanode(self, node_id: str) -> None:
        self.datanodes[node_id].alive = False

    def revive_datanode(self, node_id: str) -> None:
        self.datanodes[node_id].alive = True

    def re_replicate(self) -> int:
        """Restore the replication factor after datanode failures;
        returns blocks copied."""
        copied = 0
        live = [n for n in self.datanodes.values() if n.alive]
        for meta in self._namespace.values():
            for block in meta.blocks:
                live_replicas = [
                    node_id
                    for node_id in block.replicas
                    if self.datanodes[node_id].alive
                ]
                if not live_replicas:
                    raise HdfsError(f"block {block.block_id} lost all replicas")
                while len(live_replicas) < min(self.replication, len(live)):
                    source = self.datanodes[live_replicas[0]]
                    candidates = [
                        n for n in live if n.node_id not in live_replicas
                    ]
                    if not candidates:
                        break
                    target = min(candidates, key=lambda n: n.block_count())
                    target.store(block.block_id, source.read(block.block_id))
                    live_replicas.append(target.node_id)
                    copied += 1
                block.replicas = live_replicas
        return copied

    # -- stats ---------------------------------------------------------------------------------

    def statistics(self) -> dict[str, object]:
        return {
            "files": len(self._namespace),
            "blocks": sum(len(m.blocks) for m in self._namespace.values()),
            "bytes": sum(m.byte_size for m in self._namespace.values()),
            "datanodes": {
                node_id: node.block_count() for node_id, node in self.datanodes.items()
            },
        }
