"""Hive-flavoured SQL over HDFS files (the federation pushdown target).

"The most simple way of integration is a federated approach which is
pushing down SQL statements from HANA into Hive or similar frameworks. The
queries on HDFS data are executed on Hadoop and the results are combined
in the HANA layer." (§IV.C)

:class:`HiveServer` keeps a metastore of *external tables* (HDFS path +
schema), and answers SQL by loading the referenced files into a scratch
in-memory engine and delegating to the repro SQL stack. Every query is
charged a configurable job-start latency (simulated seconds) — the cost
profile that makes "push one aggregating query down" beat "ship the raw
file" in benchmark E9.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core import types as dt
from repro.core.database import Database
from repro.core.result import QueryResult
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import HadoopError
from repro.hadoop.hdfs import HdfsCluster


@dataclass
class ExternalTable:
    """Metastore entry: schema over an HDFS CSV file."""

    name: str
    path: str
    columns: list[tuple[str, str]]  # (name, type name)
    delimiter: str = ","

    def schema(self) -> TableSchema:
        return TableSchema(
            [ColumnSpec(name.lower(), dt.type_from_name(type_name)) for name, type_name in self.columns]
        )


class HiveServer:
    """SQL endpoint over external HDFS tables."""

    def __init__(self, hdfs: HdfsCluster, job_latency_seconds: float = 2.0) -> None:
        self.hdfs = hdfs
        self.job_latency_seconds = job_latency_seconds
        self._metastore: dict[str, ExternalTable] = {}
        self.queries_run = 0
        self.simulated_seconds = 0.0
        self.rows_scanned = 0

    # -- metastore ----------------------------------------------------------------

    def create_external_table(
        self,
        name: str,
        path: str,
        columns: list[tuple[str, str]],
        delimiter: str = ",",
    ) -> ExternalTable:
        if name.lower() in self._metastore:
            raise HadoopError(f"external table exists: {name}")
        if not self.hdfs.exists(path):
            raise HadoopError(f"no such HDFS file: {path}")
        table = ExternalTable(name.lower(), path, columns, delimiter)
        self._metastore[name.lower()] = table
        return table

    def table(self, name: str) -> ExternalTable:
        try:
            return self._metastore[name.lower()]
        except KeyError:
            raise HadoopError(f"unknown external table {name!r}") from None

    def tables(self) -> list[str]:
        return sorted(self._metastore)

    # -- query path -----------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Run one SELECT against the external tables it references."""
        scratch = Database(name="hive-scratch")
        lowered = sql.lower()
        loaded = 0
        for table in self._metastore.values():
            if table.name in lowered:
                loaded += self._load_into(scratch, table)
        if loaded == 0 and self._metastore:
            raise HadoopError("query references no known external table")
        self.queries_run += 1
        self.simulated_seconds += self.job_latency_seconds
        self.rows_scanned += loaded
        return scratch.execute(sql)

    def _load_into(self, scratch: Database, table: ExternalTable) -> int:
        schema = table.schema()
        scratch.create_table(table.name, schema)
        target = scratch.catalog.table(table.name)
        txn = scratch.begin()
        count = 0
        for line in self.hdfs.read_file(table.path):
            if not line.strip():
                continue
            values = [
                None if field == "" else field
                for field in line.split(table.delimiter)
            ]
            target.insert(values, txn)
            count += 1
        scratch.commit(txn)
        return count


def export_query_to_hdfs(
    database: Database, sql: str, hdfs: HdfsCluster, path: str, delimiter: str = ","
) -> int:
    """Materialise a HANA query result as an HDFS CSV (the reverse flow)."""
    result = database.execute(sql)
    lines = (
        delimiter.join("" if value is None else str(value) for value in row)
        for row in result.rows
    )
    hdfs.write_file(path, lines, overwrite=True)
    return len(result.rows)
