"""The MapReduce job runner over simulated HDFS and YARN.

One map task per HDFS block (scheduled with locality preference through
the resource manager), an optional combiner, a hash shuffle into R reduce
tasks, and per-phase transfer accounting — enough substrate to honour the
paper's "combine SAP HANA SOE data processing with standard MapReduce
jobs" claim and the E9 locality comparisons.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.errors import MapReduceError
from repro.hadoop.hdfs import HdfsCluster
from repro.hadoop.yarn import ResourceManager

Mapper = Callable[[str], Iterable[tuple[Hashable, Any]]]
Reducer = Callable[[Hashable, list[Any]], Iterable[tuple[Hashable, Any]]]


@dataclass
class JobStats:
    """What one job did."""

    map_tasks: int = 0
    reduce_tasks: int = 0
    map_input_lines: int = 0
    shuffle_pairs: int = 0
    shuffle_bytes: int = 0
    local_map_tasks: int = 0
    remote_map_tasks: int = 0
    output_pairs: int = 0


@dataclass
class MapReduceJob:
    """A configured job: run with :meth:`run`."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None
    reduce_tasks: int = 2
    stats: JobStats = field(default_factory=JobStats)

    def run(
        self,
        hdfs: HdfsCluster,
        input_path: str,
        resource_manager: ResourceManager | None = None,
        output_path: str | None = None,
    ) -> dict[Hashable, Any]:
        """Execute the job; returns key → reduced value(s).

        With ``output_path`` set, results are also written back to HDFS as
        tab-separated lines (one per key/value pair).
        """
        if self.reduce_tasks < 1:
            raise MapReduceError("need at least one reduce task")
        meta = hdfs.file_meta(input_path)
        application = (
            resource_manager.submit_application(self.name)
            if resource_manager is not None
            else None
        )

        # map phase: one task per block, locality-preferred
        shuffle: list[dict[Hashable, list[Any]]] = [
            {} for _ in range(self.reduce_tasks)
        ]
        for block in meta.blocks:
            preferred = block.replicas[0]
            assigned_node = preferred
            container = None
            if resource_manager is not None and application is not None:
                container = resource_manager.allocate(
                    application.application_id, preferred_node=preferred
                )
                if container is None:
                    raise MapReduceError("cluster out of capacity")
                assigned_node = container.node_id
            lines, served_by = hdfs.read_block(block, prefer_node=assigned_node)
            if served_by == assigned_node:
                self.stats.local_map_tasks += 1
            else:
                self.stats.remote_map_tasks += 1
            self.stats.map_tasks += 1
            self.stats.map_input_lines += len(lines)

            local: dict[Hashable, list[Any]] = {}
            for line in lines:
                for key, value in self.mapper(line):
                    local.setdefault(key, []).append(value)
            if self.combiner is not None:
                combined: dict[Hashable, list[Any]] = {}
                for key, values in local.items():
                    for out_key, out_value in self.combiner(key, values):
                        combined.setdefault(out_key, []).append(out_value)
                local = combined
            for key, values in local.items():
                bucket = zlib.crc32(repr(key).encode("utf-8")) % self.reduce_tasks
                shuffle[bucket].setdefault(key, []).extend(values)
                self.stats.shuffle_pairs += len(values)
                self.stats.shuffle_bytes += sum(
                    len(repr(key)) + (len(v) if isinstance(v, str) else 8)
                    for v in values
                )
            if container is not None and resource_manager is not None:
                resource_manager.release(container.container_id)

        # reduce phase
        output: dict[Hashable, Any] = {}
        for bucket in shuffle:
            self.stats.reduce_tasks += 1
            for key in sorted(bucket, key=repr):
                for out_key, out_value in self.reducer(key, bucket[key]):
                    output[out_key] = out_value
                    self.stats.output_pairs += 1

        if application is not None and resource_manager is not None:
            resource_manager.finish_application(application.application_id)
        if output_path is not None:
            hdfs.write_file(
                output_path,
                (f"{key}\t{value}" for key, value in sorted(output.items(), key=lambda kv: repr(kv[0]))),
                overwrite=True,
            )
        return output


def word_count_job(reduce_tasks: int = 2) -> MapReduceJob:
    """The canonical example job (also used by tests)."""

    def mapper(line: str) -> Iterable[tuple[str, int]]:
        for word in line.split():
            yield word.lower(), 1

    def reducer(key: str, values: list[int]) -> Iterable[tuple[str, int]]:
        yield key, sum(values)

    return MapReduceJob(
        "word-count", mapper, reducer, combiner=reducer, reduce_tasks=reduce_tasks
    )
