"""A minimal RDD with SOE-backed relational operations (§IV.C).

"Integration is performed into the Spark framework as RDD objects by
utilizing SAP HANA SOE for relevant operations like join, filters,
aggregation etc. By wrapping SAP HANA SOE in RDD objects customers can
still use all Spark functionality."

:class:`Rdd` provides the lazy functional core (map/filter/flatMap/
reduceByKey/...); :func:`soe_table_rdd` wraps an SOE table so that
``filter``/``aggregate`` chains *push down* into the SOE engine instead of
materialising rows — the wrapped form tracks what was pushed so the E9
bench can compare pushdown vs collect-then-process.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.errors import HadoopError
from repro.hadoop.hdfs import HdfsCluster


class Rdd:
    """A lazy, deterministic, in-process resilient-distributed-dataset."""

    def __init__(self, compute: Callable[[], Iterable[Any]]) -> None:
        self._compute = compute

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_iterable(cls, items: Iterable[Any]) -> "Rdd":
        materialised = list(items)
        return cls(lambda: iter(materialised))

    @classmethod
    def from_hdfs(cls, hdfs: HdfsCluster, path: str) -> "Rdd":
        return cls(lambda: hdfs.read_file(path))

    # -- transformations (lazy) ----------------------------------------------------

    def map(self, function: Callable[[Any], Any]) -> "Rdd":
        return Rdd(lambda: (function(item) for item in self._compute()))

    def filter(self, predicate: Callable[[Any], bool]) -> "Rdd":
        return Rdd(lambda: (item for item in self._compute() if predicate(item)))

    def flat_map(self, function: Callable[[Any], Iterable[Any]]) -> "Rdd":
        return Rdd(
            lambda: (out for item in self._compute() for out in function(item))
        )

    def distinct(self) -> "Rdd":
        def compute() -> Iterable[Any]:
            seen: set[Any] = set()
            for item in self._compute():
                if item not in seen:
                    seen.add(item)
                    yield item

        return Rdd(compute)

    def reduce_by_key(self, function: Callable[[Any, Any], Any]) -> "Rdd":
        def compute() -> Iterable[tuple[Hashable, Any]]:
            accumulator: dict[Hashable, Any] = {}
            for key, value in self._compute():
                if key in accumulator:
                    accumulator[key] = function(accumulator[key], value)
                else:
                    accumulator[key] = value
            yield from sorted(accumulator.items(), key=lambda kv: repr(kv[0]))

        return Rdd(compute)

    def join(self, other: "Rdd") -> "Rdd":
        """(k, a) join (k, b) → (k, (a, b))."""

        def compute() -> Iterable[tuple[Hashable, tuple[Any, Any]]]:
            right: dict[Hashable, list[Any]] = {}
            for key, value in other._compute():
                right.setdefault(key, []).append(value)
            for key, value in self._compute():
                for match in right.get(key, ()):
                    yield key, (value, match)

        return Rdd(compute)

    def union(self, other: "Rdd") -> "Rdd":
        def compute() -> Iterable[Any]:
            yield from self._compute()
            yield from other._compute()

        return Rdd(compute)

    # -- actions (eager) ----------------------------------------------------------------

    def collect(self) -> list[Any]:
        return list(self._compute())

    def count(self) -> int:
        return sum(1 for _item in self._compute())

    def take(self, count: int) -> list[Any]:
        out = []
        for item in self._compute():
            out.append(item)
            if len(out) >= count:
                break
        return out

    def reduce(self, function: Callable[[Any, Any], Any]) -> Any:
        iterator = iter(self._compute())
        try:
            result = next(iterator)
        except StopIteration:
            raise HadoopError("reduce of empty RDD") from None
        for item in iterator:
            result = function(result, item)
        return result

    def save_to_hdfs(self, hdfs: HdfsCluster, path: str) -> None:
        hdfs.write_file(path, (str(item) for item in self._compute()), overwrite=True)


class SoeTableRdd:
    """An RDD view over an SOE table with relational pushdown.

    ``filter`` (on simple column predicates) and ``aggregate`` execute in
    the SOE engine; ``rows()`` materialises the (filtered) table as a plain
    :class:`Rdd` for arbitrary Spark-style processing.
    """

    def __init__(self, soe: Any, table: str, filters: tuple[tuple[str, str, Any], ...] = ()) -> None:
        self.soe = soe
        self.table = table.lower()
        self.filters = filters
        self.pushed_operations: list[str] = []

    def filter(self, column: str, op: str, value: Any) -> "SoeTableRdd":
        """Pushed-down filter: no data leaves the engine."""
        derived = SoeTableRdd(
            self.soe, self.table, self.filters + ((column.lower(), op, value),)
        )
        derived.pushed_operations = self.pushed_operations + [f"filter({column} {op} {value!r})"]
        return derived

    def aggregate(
        self,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
    ) -> Rdd:
        """Pushed-down aggregation executed by the SOE coordinator."""
        rows, _cost = self.soe.aggregate(
            self.table,
            group_by=group_by,
            aggregates=aggregates,
            filters=list(self.filters),
        )
        self.pushed_operations.append(f"aggregate({group_by}, {aggregates})")
        return Rdd.from_iterable(rows)

    def rows(self) -> Rdd:
        """Materialise (filtered) rows out of the engine — the expensive
        path pushdown avoids."""
        meta = self.soe.catalog.table(self.table)
        collected: list[tuple] = []
        for node_id in self.soe.worker_ids:
            store = self.soe.data_nodes[node_id].store
            seen = self.soe.catalog.partitions_on(self.table, node_id)
            for partition_id in seen:
                partition = store.partition(self.table, partition_id)
                for row in partition.rows():
                    if self._matches(row, meta.columns):
                        collected.append(row)
        # de-duplicate replicas: keep first copy per partition only
        return Rdd.from_iterable(self._dedup(collected, meta))

    def _matches(self, row: tuple, columns: list[str]) -> bool:
        for column, op, value in self.filters:
            actual = row[columns.index(column)]
            if actual is None:
                return False
            if op == "=" and not actual == value:
                return False
            if op == "<>" and not actual != value:
                return False
            if op == "<" and not actual < value:
                return False
            if op == "<=" and not actual <= value:
                return False
            if op == ">" and not actual > value:
                return False
            if op == ">=" and not actual >= value:
                return False
        return True

    def _dedup(self, rows: list[tuple], meta: Any) -> list[tuple]:
        if self.soe.replication <= 1:
            return rows
        seen: set[tuple] = set()
        unique: list[tuple] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique


def soe_table_rdd(soe: Any, table: str) -> SoeTableRdd:
    """Entry point: wrap an SOE table as a pushdown-capable RDD."""
    return SoeTableRdd(soe, table)
