"""MVCC snapshot isolation and the transaction manager."""

from repro.transaction.manager import Transaction, TransactionManager, TxnState
from repro.transaction.mvcc import INF_CID, is_visible, visible_mask

__all__ = ["Transaction", "TransactionManager", "TxnState", "INF_CID", "is_visible", "visible_mask"]
