"""MVCC visibility primitives.

Rows carry two int64 stamps, ``created`` and ``deleted``:

* ``-tid``      — written by transaction ``tid`` but not yet committed,
* a commit id   — the change committed at that (monotone) commit id,
* :data:`INF_CID` — "never": not yet deleted / never visible (tombstone).

A snapshot is a commit id; a row version is visible to a transaction with
snapshot ``s`` and transaction id ``t`` iff its creation is visible
(committed at or before ``s``, or made by ``t`` itself) and its deletion is
not. Both checks are vectorised over whole partitions — the column store
evaluates visibility as just another filter mask.

The paper requires full ACID for the core system (Section II) and uses
"different MVCC implementations to optimize multiple workloads" in the SOE
(Section IV.B); this module is the shared foundation.
"""

from __future__ import annotations

import numpy as np

#: Commit id meaning "never" (not deleted / tombstoned creation).
INF_CID = 2**62

#: The first commit id ever handed out; snapshots before any commit use 0.
INITIAL_CID = 0


def uncommitted_stamp(tid: int) -> int:
    """Stamp marking a pending change by transaction ``tid``."""
    if tid <= 0:
        raise ValueError("transaction ids must be positive")
    return -tid


def visible_mask(
    created: np.ndarray,
    deleted: np.ndarray,
    snapshot_cid: int,
    own_tid: int = 0,
) -> np.ndarray:
    """Vectorised snapshot-isolation visibility check.

    ``own_tid`` = 0 means "no transaction" (pure snapshot read).
    """
    own = uncommitted_stamp(own_tid) if own_tid else None

    created_visible = (created > 0) & (created <= snapshot_cid)
    if own is not None:
        created_visible |= created == own

    deleted_visible = (deleted > 0) & (deleted <= snapshot_cid)
    if own is not None:
        deleted_visible |= deleted == own

    return created_visible & ~deleted_visible


def is_visible(created: int, deleted: int, snapshot_cid: int, own_tid: int = 0) -> bool:
    """Scalar version of :func:`visible_mask` for point lookups."""
    own = uncommitted_stamp(own_tid) if own_tid else None
    created_ok = (0 < created <= snapshot_cid) or (own is not None and created == own)
    deleted_hit = (0 < deleted <= snapshot_cid) or (own is not None and deleted == own)
    return created_ok and not deleted_hit
