"""Transaction manager: snapshots, commit stamping, rollback, conflicts.

Implements snapshot isolation with first-writer-wins write conflicts over
the column store's MVCC stamps (see :mod:`repro.transaction.mvcc`). The
manager is deliberately storage-agnostic: a transaction records *stamp
slots* — small handles that know how to write a commit id into the
``created``/``deleted`` vector of whatever partition the change touched —
so the same manager serves the row store, flexible tables, and the SOE's
replicated partitions.

Commit also drives the write-ahead redo log when the owning database has
persistence enabled (the log callable is injected, keeping this module free
of I/O concerns).
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.racecheck import track_fields
from repro.errors import InvalidTransactionStateError, TransactionAbortedError
from repro.transaction.mvcc import INF_CID, uncommitted_stamp


class TxnState(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class StampSlot:
    """A pending MVCC stamp: where to write the commit id on commit.

    ``vector`` is any object supporting ``__setitem__(position, int)`` —
    in practice a :class:`repro.util.arrays.GrowableInt64`.
    ``on_abort`` is the value to restore on rollback (``INF_CID`` for
    deletions, the tombstone for insertions).
    """

    vector: Any
    position: int
    on_abort: int


@dataclass
class Transaction:
    """One unit of work. Obtain via :meth:`TransactionManager.begin`."""

    tid: int
    snapshot_cid: int
    state: TxnState = TxnState.ACTIVE
    _created_slots: list[StampSlot] = field(default_factory=list)
    _deleted_slots: list[StampSlot] = field(default_factory=list)
    _redo_records: list[dict[str, Any]] = field(default_factory=list)
    _commit_hooks: list[Callable[[int], None]] = field(default_factory=list)
    commit_cid: int | None = None

    @property
    def stamp(self) -> int:
        """The uncommitted stamp this transaction writes into MVCC vectors."""
        return uncommitted_stamp(self.tid)

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_read_only(self) -> bool:
        """True when the transaction has made no writes so far."""
        return not (self._created_slots or self._deleted_slots)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidTransactionStateError(
                f"transaction {self.tid} is {self.state.value}"
            )

    # -- write registration (called by the storage layer) -------------------

    def record_insert(self, vector: Any, position: int) -> None:
        """Register a freshly inserted row's ``created`` slot."""
        self._require_active()
        self._created_slots.append(StampSlot(vector, position, INF_CID))

    def record_delete(self, vector: Any, position: int) -> None:
        """Register a deletion's ``deleted`` slot."""
        self._require_active()
        self._deleted_slots.append(StampSlot(vector, position, INF_CID))

    def log_redo(self, record: dict[str, Any]) -> None:
        """Queue a redo-log record to be flushed atomically at commit."""
        self._require_active()
        self._redo_records.append(record)

    def on_commit(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(commit_cid)`` after a successful commit.

        Used for maintenance that must observe committed data only, e.g.
        automatic text-index updates (paper, Section II.C).
        """
        self._require_active()
        self._commit_hooks.append(hook)


@track_fields("_active")
class TransactionManager:
    """Hands out transactions and serialises commit stamping."""

    def __init__(self, redo_writer: Callable[[list[dict[str, Any]], int], None] | None = None) -> None:
        self._tid_counter = itertools.count(1)
        self._last_committed_cid = 0
        self._commit_lock = threading.Lock()
        self._active: dict[int, Transaction] = {}
        self._redo_writer = redo_writer
        self.commits = 0
        self.aborts = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def last_committed_cid(self) -> int:
        """The most recent commit id (== the freshest possible snapshot).

        Read under the commit lock: an unguarded read here is the classic
        check-then-act race against a concurrent commit's stamp (RA109).
        """
        with self._commit_lock:
            return self._last_committed_cid

    def begin(self) -> Transaction:
        """Start a transaction with a snapshot of the current commit state."""
        with self._commit_lock:
            txn = Transaction(tid=next(self._tid_counter), snapshot_cid=self._last_committed_cid)
            self._active[txn.tid] = txn
        return txn

    def commit(self, txn: Transaction) -> int:
        """Commit: allocate a commit id and stamp every touched row.

        Read-only transactions commit without consuming a commit id.
        Returns the commit id (or the snapshot cid for read-only commits).
        """
        txn._require_active()
        with self._commit_lock:
            if txn.is_read_only:
                txn.state = TxnState.COMMITTED
                txn.commit_cid = txn.snapshot_cid
            else:
                cid = self._last_committed_cid + 1
                if self._redo_writer is not None and txn._redo_records:
                    self._redo_writer(txn._redo_records, cid)
                for slot in txn._created_slots:
                    slot.vector[slot.position] = cid
                for slot in txn._deleted_slots:
                    slot.vector[slot.position] = cid
                self._last_committed_cid = cid
                txn.state = TxnState.COMMITTED
                txn.commit_cid = cid
            self._active.pop(txn.tid, None)
            self.commits += 1
        for hook in txn._commit_hooks:
            hook(txn.commit_cid)
        return txn.commit_cid

    def rollback(self, txn: Transaction) -> None:
        """Abort: restore every touched stamp to its pre-transaction value."""
        if txn.state is TxnState.ABORTED:
            return
        txn._require_active()
        # Inserted rows become permanently invisible tombstones; deletions
        # are un-marked so other writers may target the row again.
        for slot in txn._created_slots:
            slot.vector[slot.position] = INF_CID
        for slot in txn._deleted_slots:
            slot.vector[slot.position] = slot.on_abort
        txn.state = TxnState.ABORTED
        with self._commit_lock:
            self._active.pop(txn.tid, None)
            self.aborts += 1

    def abort_with(self, txn: Transaction, reason: str) -> TransactionAbortedError:
        """Roll back and return an exception describing the abort."""
        self.rollback(txn)
        return TransactionAbortedError(reason)

    @property
    def active_count(self) -> int:
        """Number of currently running transactions."""
        with self._commit_lock:
            return len(self._active)
