"""Simulated hardware transactional memory (§IV.A, ref [9]).

"Hardware transactional memory ... helps to develop scalable algorithms
and data structures. In particular, Neumann et al. [9] have shown that
transactional systems can significantly benefit on executing global
database transactions by splitting them into multiple hardware
transactions and getting rid of explicit locks."

Real HTM needs Haswell-class CPUs; the simulation reproduces its cost
model instead (DESIGN.md substitution rule): work executes in *batches of
concurrent operations*; under

* :class:`GlobalLockExecution` every operation serialises through one
  lock — each op pays ``work + lock_overhead`` and concurrency adds queue
  time,
* :class:`HtmExecution` operations run speculatively in parallel; two
  operations in the same batch touching the same conflict granule abort
  all but one, which retry (paying the wasted speculative work) and fall
  back to the global lock after ``max_retries``.

Costs are deterministic simulated work units so the crossover (HTM wins
at low conflict rates, the lock wins under heavy conflicts) is measurable
and stable — benchmark E20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

Operation = Hashable  # the conflict granule the operation touches


@dataclass
class ExecutionStats:
    """Simulated cost accounting for one workload run."""

    operations: int = 0
    work_units: float = 0.0
    aborts: int = 0
    lock_fallbacks: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "operations": float(self.operations),
            "work_units": self.work_units,
            "aborts": float(self.aborts),
            "lock_fallbacks": float(self.lock_fallbacks),
        }


@dataclass
class GlobalLockExecution:
    """Baseline: one global lock serialises every operation."""

    op_work: float = 1.0
    lock_overhead: float = 0.6

    def run(self, batches: Sequence[Sequence[Operation]]) -> ExecutionStats:
        stats = ExecutionStats()
        for batch in batches:
            # all concurrent ops queue behind the lock: total time is the
            # sum (no parallelism), each paying acquire/release overhead
            for _operation in batch:
                stats.operations += 1
                stats.work_units += self.op_work + self.lock_overhead
        return stats


@dataclass
class HtmExecution:
    """Speculative execution with conflict-abort-retry and lock fallback."""

    op_work: float = 1.0
    lock_overhead: float = 0.6
    max_retries: int = 3
    #: extra cost of starting/ending a hardware transaction
    htm_overhead: float = 0.05

    def run(self, batches: Sequence[Sequence[Operation]]) -> ExecutionStats:
        stats = ExecutionStats()
        for batch in batches:
            stats.operations += len(batch)
            pending: list[tuple[Operation, int]] = [(op, 0) for op in batch]
            while pending:
                # one speculative round: conflict granules touched twice abort
                touched: dict[Operation, int] = {}
                for granule, _retries in pending:
                    touched[granule] = touched.get(granule, 0) + 1
                # parallel round: cost is one op (the slowest lane), charged
                # once per round plus per-op HTM begin/end overhead
                stats.work_units += self.op_work + self.htm_overhead * len(pending)
                survivors: list[tuple[Operation, int]] = []
                seen: set[Operation] = set()
                for granule, retries in pending:
                    if touched[granule] == 1 or granule not in seen:
                        # first toucher of the granule commits this round
                        seen.add(granule)
                        continue
                    stats.aborts += 1
                    if retries + 1 >= self.max_retries:
                        # give up: serialise through the global lock
                        stats.lock_fallbacks += 1
                        stats.work_units += self.op_work + self.lock_overhead
                    else:
                        survivors.append((granule, retries + 1))
                pending = survivors
        return stats


def make_batches(
    operations: int,
    concurrency: int,
    granules: int,
    hot_fraction: float = 0.0,
    seed: int = 9,
) -> list[list[Operation]]:
    """A deterministic workload: ``operations`` ops in batches of
    ``concurrency``, each touching one of ``granules`` conflict granules.
    ``hot_fraction`` of the ops hit granule 0 (contention dial)."""
    import random

    rng = random.Random(seed)
    ops: list[Operation] = []
    for _index in range(operations):
        if rng.random() < hot_fraction:
            ops.append(0)
        else:
            ops.append(rng.randrange(granules))
    return [ops[start : start + concurrency] for start in range(0, len(ops), concurrency)]
