"""The chaos controller: applies a fault plan at the instrumented seams.

The controller is *pulled*, never pushed: each seam calls into it at the
moment the real operation would happen (``SimulatedCluster.transfer``,
``Node.service``, ``SharedLog.append``, a wrapped ``RemoteSource.scan``,
or an explicit :meth:`ChaosController.tick`), the controller advances
that seam's event counter, and any fault scheduled at that index fires —
by raising the matching :class:`~repro.errors.RetryableError` subtype,
killing a node, sealing the log, or charging delay to the shared
:class:`~repro.util.retry.SimulatedClock`. No background threads, no
wall clocks: two runs over the same plan and the same workload fire the
same faults at the same points, which is what makes a chaos failure a
*replayable* failure.

Every firing is recorded in :attr:`ChaosController.fired` and counted
into the ``chaos.faults`` metric (labelled by kind and seam) so v2stats
can correlate injected faults with the coordinator's retry/failover
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.errors import (
    LogSealedError,
    LogStallError,
    NodeUnavailableError,
    RemoteSourceUnavailableError,
    TransferDroppedError,
)
from repro.chaos.plan import SEAM_KINDS, FaultPlan, FaultSpec, parse_partition_target
from repro.util.retry import SimulatedClock


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    seam: str
    event: int
    kind: str
    target: str | None
    clock: float

    def describe(self) -> str:
        who = f" target={self.target}" if self.target else ""
        return f"{self.kind}@{self.seam}[{self.event}]{who} t={self.clock:.6f}"


class ChaosController:
    """Executes one :class:`FaultPlan` against a landscape."""

    def __init__(self, plan: FaultPlan, clock: SimulatedClock | None = None) -> None:
        self.plan = plan
        self.clock = clock or SimulatedClock()
        self.cluster: Any = None
        self.log: Any = None
        self._by_seam = {seam: plan.for_seam(seam) for seam in SEAM_KINDS}
        self._counters: dict[str, int] = {seam: 0 for seam in SEAM_KINDS}
        self.fired: list[FaultEvent] = []

    # -- wiring -------------------------------------------------------------

    def install(self, cluster: Any = None, log: Any = None) -> "ChaosController":
        """Attach to a cluster and/or shared log (their seams then consult
        this controller); returns self for chaining."""
        if cluster is not None:
            self.cluster = cluster
            cluster.chaos = self
        if log is not None:
            self.log = log
            log.chaos = self
        return self

    def wrap_source(self, source: Any) -> "ChaosRemoteSource":
        """Proxy a federation source through the ``remote_scan`` seam."""
        return ChaosRemoteSource(source, self)

    # -- bookkeeping --------------------------------------------------------

    def _due(self, seam: str) -> list[tuple[int, FaultSpec]]:
        """Advance the seam's event counter; return the faults due now."""
        event = self._counters[seam]
        self._counters[seam] = event + 1
        return [(event, spec) for spec in self._by_seam[seam].get(event, ())]

    def _record(self, seam: str, event: int, spec: FaultSpec) -> None:
        self.fired.append(
            FaultEvent(seam, event, spec.kind, spec.target, self.clock.now)
        )
        obs.count("chaos.faults", kind=spec.kind, seam=seam)

    def schedule_fingerprint(self) -> tuple[tuple[str, int, str, str | None], ...]:
        """Clock-free identity of everything that fired, for determinism
        assertions: identical seed ⇒ identical fingerprint."""
        return tuple((e.seam, e.event, e.kind, e.target) for e in self.fired)

    def events_seen(self, seam: str) -> int:
        return self._counters[seam]

    # -- seams --------------------------------------------------------------

    def on_transfer(self, source: str, target: str, payload_bytes: int) -> float:
        """Transfer seam: may drop the message or return extra delay."""
        extra = 0.0
        for event, spec in self._due("transfer"):
            if spec.target is not None and spec.target not in (source, target):
                continue
            self._record("transfer", event, spec)
            if spec.kind == "drop":
                raise TransferDroppedError(
                    f"chaos: transfer {source}->{target} dropped (event {event})"
                )
            self.clock.advance(spec.seconds)
            extra += spec.seconds
        return extra

    def on_service(self, node_id: str, service_name: str = "") -> None:
        """Service-access seam: may crash the node or slow it down."""
        for event, spec in self._due("service"):
            if spec.kind == "crash":
                victim = spec.target or node_id
                self._record("service", event, spec)
                if self.cluster is not None and victim in self.cluster.nodes:
                    # through kill(), not the raw alive bit, so membership
                    # subscribers (discovery withdraw) see the crash
                    self.cluster.kill(victim)
                if victim == node_id:
                    raise NodeUnavailableError(
                        node_id,
                        f"chaos: node {node_id} crashed serving "
                        f"{service_name or '<service>'} (event {event})",
                    )
            elif spec.kind == "slow":
                if spec.target is None or spec.target == node_id:
                    self._record("service", event, spec)
                    self.clock.advance(spec.seconds)

    def on_log_append(self, log: Any = None) -> None:
        """Shared-log append seam: may stall the append or seal the log."""
        log = log if log is not None else self.log
        for event, spec in self._due("log_append"):
            self._record("log_append", event, spec)
            if spec.kind == "stall":
                raise LogStallError(f"chaos: log append stalled (event {event})")
            if spec.kind == "seal":
                if log is not None:
                    log.seal()
                raise LogSealedError(
                    f"chaos: log sealed mid-append (event {event})"
                )

    def on_remote_scan(self, source_name: str, remote_table: str) -> None:
        """Federation seam: may make the remote source unreachable."""
        for event, spec in self._due("remote_scan"):
            if spec.target is not None and spec.target.lower() != source_name.lower():
                continue
            self._record("remote_scan", event, spec)
            raise RemoteSourceUnavailableError(
                f"chaos: source {source_name!r} unreachable scanning "
                f"{remote_table!r} (event {event})"
            )

    def on_partition_move(self, donor: str, recipient: str, phase: str) -> None:
        """Partition-move seam: fired by the mover at every phase
        boundary; may kill *or isolate* the donor or the recipient right
        there. A kill marks the node dead (so subsequent service access
        fails) and raises, steering the mover onto its journaled recovery
        path. A ``partition_*`` fault is a gray failure: the victim is
        cut from everyone but keeps running, the seam does NOT raise, and
        the move proceeds until a transfer actually hits the cut link —
        exactly the scenario lease fencing exists for."""
        for event, spec in self._due("partition_move"):
            gray = spec.kind.startswith("partition_")
            victim = donor if spec.kind.endswith("donor") else recipient
            if spec.target is not None and spec.target != victim:
                continue
            self._record("partition_move", event, spec)
            if gray:
                if self.cluster is not None and victim in self.cluster.nodes:
                    self.cluster.isolate(victim)
                continue
            if self.cluster is not None and victim in self.cluster.nodes:
                # through kill(), not the raw alive bit, so membership
                # subscribers (discovery withdraw) see the crash
                self.cluster.kill(victim)
            raise NodeUnavailableError(
                victim,
                f"chaos: {spec.kind} killed {victim} at move phase "
                f"{phase!r} (event {event})",
            )

    def tick(self) -> list[FaultEvent]:
        """Advance the explicit schedule one step (typically one query);
        applies crash/revive/partition/heal faults bound to the ``tick``
        seam and returns what fired."""
        before = len(self.fired)
        for event, spec in self._due("tick"):
            self._record("tick", event, spec)
            if self.cluster is None:
                continue
            if spec.kind == "heal" and spec.target is None:
                self.cluster.heal()
                continue
            if spec.target is None:
                continue
            if spec.kind == "crash":
                self.cluster.kill(spec.target)
            elif spec.kind == "revive":
                self.cluster.revive(spec.target)
            elif spec.kind == "partition":
                source, other, symmetric = parse_partition_target(spec.target)
                if other is None:
                    self.cluster.isolate(source)
                else:
                    self.cluster.partition(source, other, symmetric=symmetric)
            elif spec.kind == "heal":
                source, other, _ = parse_partition_target(spec.target)
                self.cluster.heal(source, other)
        return self.fired[before:]


class ChaosRemoteSource:
    """A :class:`~repro.federation.sda.RemoteSource` proxy whose calls
    pass the chaos ``remote_scan`` seam before reaching the real source."""

    def __init__(self, inner: Any, controller: ChaosController) -> None:
        self._inner = inner
        self._controller = controller
        self.name = inner.name

    def capabilities(self) -> set[str]:
        return self._inner.capabilities()

    def table_schema(self, remote_table: str) -> Any:
        return self._inner.table_schema(remote_table)

    def scan(self, remote_table: str, filters: Any = None) -> list[list[Any]]:
        self._controller.on_remote_scan(self.name, remote_table)
        return self._inner.scan(remote_table, filters)

    def aggregate(self, remote_table: str, *args: Any, **kwargs: Any) -> Any:
        self._controller.on_remote_scan(self.name, remote_table)
        return self._inner.aggregate(remote_table, *args, **kwargs)

    def execute_sql(self, sql: str) -> Any:
        self._controller.on_remote_scan(self.name, "<sql>")
        return self._inner.execute_sql(sql)
