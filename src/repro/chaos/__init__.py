"""repro.chaos — deterministic fault injection for the scale-out landscape.

The paper's Figure 3 architecture only earns its "thousands of nodes"
claim if node death, lost messages, log fences, and unreachable remote
sources are *expected* events. This package makes them schedulable:

* :class:`FaultSpec` / :class:`FaultPlan` — a replayable schedule of
  faults, addressed by seam event index (not wall time), built either
  explicitly or from a seed (:meth:`FaultPlan.from_seed`,
  :meth:`FaultPlan.kill_schedule`, :meth:`FaultPlan.partition_schedule`
  — the latter drives the asymmetric reachability matrix with
  ``partition``/``heal`` faults: gray failures, not crash-stop);
* :class:`ChaosController` — applies a plan at the instrumented seams:
  ``SimulatedCluster.transfer`` (drop/delay), ``Node.service``
  (crash/slow), ``SharedLog.append`` (stall/seal), federation
  ``RemoteSource.scan`` (outage, via :meth:`ChaosController.wrap_source`),
  plus an explicit :meth:`ChaosController.tick` schedule step;
* :class:`FaultEvent` — the record of one firing, for replay assertions.

A seeded session::

    from repro.chaos import ChaosController, FaultPlan
    from repro.soe.engine import SoeEngine

    plan = FaultPlan.kill_schedule(seed=42, ticks=50, rate=0.1,
                                   nodes=["worker0", "worker1", "worker2"])
    soe = SoeEngine(node_count=3, replication=2,
                    chaos=ChaosController(plan))
    ...  # run queries; soe.chaos.fired lists every fault that hit

Identical seeds produce identical fault schedules and — because retries
and backoff are charged to the simulated clock — identical recovery
traces, so any chaos failure is replayable from its seed.
"""

from repro.chaos.controller import ChaosController, ChaosRemoteSource, FaultEvent
from repro.chaos.plan import SEAM_KINDS, FaultPlan, FaultSpec, parse_partition_target

__all__ = [
    "SEAM_KINDS",
    "ChaosController",
    "ChaosRemoteSource",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "parse_partition_target",
]
