"""Fault plans: a replayable schedule of injected failures.

A :class:`FaultPlan` is a plain, sorted tuple of :class:`FaultSpec`
entries — **data, not behaviour** — so a schedule can be printed,
diffed, stored next to a failing test, and handed to a fresh
:class:`~repro.chaos.controller.ChaosController` for an identical
replay. Faults are addressed by *seam event index*, not wall time: the
Nth invocation of an instrumented seam fires the faults scheduled at N,
which is what makes a schedule deterministic regardless of how fast the
host machine runs.

Seeded constructors (:meth:`FaultPlan.from_seed`,
:meth:`FaultPlan.kill_schedule`) derive the whole schedule up front from
one ``random.Random(seed)`` stream, so identical seeds (e.g. the CI
matrix's ``REPRO_CHAOS_SEED``) always produce identical plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ChaosError

#: seam name -> fault kinds that may fire there
SEAM_KINDS: dict[str, frozenset[str]] = {
    "transfer": frozenset({"drop", "delay"}),        # SimulatedCluster.transfer
    "service": frozenset({"crash", "slow"}),         # Node.service / task dispatch
    "log_append": frozenset({"stall", "seal"}),      # SharedLog.append
    "remote_scan": frozenset({"outage"}),            # federation RemoteSource.scan
    "tick": frozenset({"crash", "revive"}),          # explicit schedule steps
    # PartitionMover phase boundaries: each move fires this seam once per
    # phase transition, so at_event addresses "kill the donor/recipient
    # just after phase N" deterministically
    "partition_move": frozenset({"kill_donor", "kill_recipient"}),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at the ``at_event``-th
    invocation of ``seam`` (optionally only for ``target``)."""

    kind: str
    seam: str
    at_event: int
    target: str | None = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        kinds = SEAM_KINDS.get(self.seam)
        if kinds is None:
            raise ChaosError(f"unknown seam {self.seam!r} (know {sorted(SEAM_KINDS)})")
        if self.kind not in kinds:
            raise ChaosError(
                f"fault kind {self.kind!r} is not valid at seam {self.seam!r} "
                f"(valid: {sorted(kinds)})"
            )
        if self.at_event < 0:
            raise ChaosError("at_event must be >= 0")
        if self.seconds < 0:
            raise ChaosError("fault seconds must be >= 0")

    def describe(self) -> str:
        where = f"@{self.seam}[{self.at_event}]"
        who = f" target={self.target}" if self.target else ""
        lag = f" +{self.seconds}s" if self.seconds else ""
        return f"{self.kind}{where}{who}{lag}"


class FaultPlan:
    """An immutable, ordered collection of fault specs."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self.faults: tuple[FaultSpec, ...] = tuple(
            sorted(
                faults,
                key=lambda s: (s.seam, s.at_event, s.kind, s.target or ""),
            )
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    def for_seam(self, seam: str) -> dict[int, list[FaultSpec]]:
        """event index → faults scheduled there, for one seam."""
        by_event: dict[int, list[FaultSpec]] = {}
        for spec in self.faults:
            if spec.seam == seam:
                by_event.setdefault(spec.at_event, []).append(spec)
        return by_event

    def describe(self) -> str:
        if not self.faults:
            return "<empty fault plan>"
        return "\n".join(spec.describe() for spec in self.faults)

    # -- seeded constructors ------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        horizon: int = 100,
        nodes: Sequence[str] = (),
        sources: Sequence[str] = (),
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.002,
        crash_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.005,
        stall_rate: float = 0.0,
        seal_rate: float = 0.0,
        outage_rate: float = 0.0,
    ) -> "FaultPlan":
        """Bernoulli-draw one fault decision per seam per event index.

        The draw order is fixed (event-major, seam order as written), so
        the plan is a pure function of the arguments — replaying a seed
        replays the schedule exactly.
        """
        rng = random.Random(seed)
        node_pool = sorted(nodes)
        source_pool = sorted(sources)
        faults: list[FaultSpec] = []
        for event in range(horizon):
            if drop_rate and rng.random() < drop_rate:
                faults.append(FaultSpec("drop", "transfer", event))
            if delay_rate and rng.random() < delay_rate:
                faults.append(
                    FaultSpec("delay", "transfer", event, seconds=delay_seconds)
                )
            if crash_rate and rng.random() < crash_rate:
                target = rng.choice(node_pool) if node_pool else None
                faults.append(FaultSpec("crash", "service", event, target))
            if slow_rate and rng.random() < slow_rate:
                faults.append(
                    FaultSpec("slow", "service", event, seconds=slow_seconds)
                )
            if stall_rate and rng.random() < stall_rate:
                faults.append(FaultSpec("stall", "log_append", event))
            if seal_rate and rng.random() < seal_rate:
                faults.append(FaultSpec("seal", "log_append", event))
            if outage_rate and source_pool and rng.random() < outage_rate:
                faults.append(
                    FaultSpec("outage", "remote_scan", event, rng.choice(source_pool))
                )
        return cls(faults)

    @classmethod
    def kill_schedule(
        cls,
        seed: int,
        *,
        ticks: int,
        rate: float,
        nodes: Sequence[str],
    ) -> "FaultPlan":
        """A node-kill/repair schedule on the ``tick`` seam.

        At each tick, with probability ``rate``, one node (never the one
        already down) crashes and the previously crashed node — if any —
        is repaired first, so at most one node is dead at a time. This
        models a cluster with working supervision (the paper's
        v2clustermgr restarts services) under a steady fault rate.
        """
        if not nodes:
            raise ChaosError("kill_schedule needs at least one node")
        rng = random.Random(seed)
        pool = sorted(nodes)
        faults: list[FaultSpec] = []
        dead: str | None = None
        for tick in range(ticks):
            if rng.random() < rate:
                candidates = [n for n in pool if n != dead]
                if not candidates:
                    continue
                victim = rng.choice(candidates)
                if dead is not None:
                    faults.append(FaultSpec("revive", "tick", tick, dead))
                faults.append(FaultSpec("crash", "tick", tick, victim))
                dead = victim
        return cls(faults)
