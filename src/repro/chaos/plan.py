"""Fault plans: a replayable schedule of injected failures.

A :class:`FaultPlan` is a plain, sorted tuple of :class:`FaultSpec`
entries — **data, not behaviour** — so a schedule can be printed,
diffed, stored next to a failing test, and handed to a fresh
:class:`~repro.chaos.controller.ChaosController` for an identical
replay. Faults are addressed by *seam event index*, not wall time: the
Nth invocation of an instrumented seam fires the faults scheduled at N,
which is what makes a schedule deterministic regardless of how fast the
host machine runs.

Seeded constructors (:meth:`FaultPlan.from_seed`,
:meth:`FaultPlan.kill_schedule`) derive the whole schedule up front from
one ``random.Random(seed)`` stream, so identical seeds (e.g. the CI
matrix's ``REPRO_CHAOS_SEED``) always produce identical plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ChaosError

#: seam name -> fault kinds that may fire there
SEAM_KINDS: dict[str, frozenset[str]] = {
    "transfer": frozenset({"drop", "delay"}),        # SimulatedCluster.transfer
    "service": frozenset({"crash", "slow"}),         # Node.service / task dispatch
    "log_append": frozenset({"stall", "seal"}),      # SharedLog.append
    "remote_scan": frozenset({"outage"}),            # federation RemoteSource.scan
    # explicit schedule steps; partition/heal drive the asymmetric
    # reachability matrix — target "a" isolates node a from everyone,
    # "a->b" cuts one directed link, "a<->b" cuts both directions; a heal
    # with no target heals the whole cluster
    "tick": frozenset({"crash", "revive", "partition", "heal"}),
    # PartitionMover phase boundaries: each move fires this seam once per
    # phase transition, so at_event addresses "kill (or isolate) the
    # donor/recipient just after phase N" deterministically. The
    # partition_* kinds are gray failures: the victim keeps running but
    # is cut from everyone, and the seam does NOT raise — the move
    # continues until a transfer actually hits the cut link.
    "partition_move": frozenset(
        {"kill_donor", "kill_recipient", "partition_donor", "partition_recipient"}
    ),
}


def parse_partition_target(target: str) -> tuple[str, str | None, bool]:
    """Decode a partition/heal fault target: ``"a"`` (isolate a),
    ``"a->b"`` (directed cut), ``"a<->b"`` (symmetric cut). Returns
    ``(source, target_or_None, symmetric)``."""
    if "<->" in target:
        source, _, other = target.partition("<->")
        return source, other, True
    if "->" in target:
        source, _, other = target.partition("->")
        return source, other, False
    return target, None, False


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at the ``at_event``-th
    invocation of ``seam`` (optionally only for ``target``)."""

    kind: str
    seam: str
    at_event: int
    target: str | None = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        kinds = SEAM_KINDS.get(self.seam)
        if kinds is None:
            raise ChaosError(f"unknown seam {self.seam!r} (know {sorted(SEAM_KINDS)})")
        if self.kind not in kinds:
            raise ChaosError(
                f"fault kind {self.kind!r} is not valid at seam {self.seam!r} "
                f"(valid: {sorted(kinds)})"
            )
        if self.at_event < 0:
            raise ChaosError("at_event must be >= 0")
        if self.seconds < 0:
            raise ChaosError("fault seconds must be >= 0")

    def describe(self) -> str:
        where = f"@{self.seam}[{self.at_event}]"
        who = f" target={self.target}" if self.target else ""
        lag = f" +{self.seconds}s" if self.seconds else ""
        return f"{self.kind}{where}{who}{lag}"


class FaultPlan:
    """An immutable, ordered collection of fault specs."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self.faults: tuple[FaultSpec, ...] = tuple(
            sorted(
                faults,
                key=lambda s: (s.seam, s.at_event, s.kind, s.target or ""),
            )
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    def for_seam(self, seam: str) -> dict[int, list[FaultSpec]]:
        """event index → faults scheduled there, for one seam."""
        by_event: dict[int, list[FaultSpec]] = {}
        for spec in self.faults:
            if spec.seam == seam:
                by_event.setdefault(spec.at_event, []).append(spec)
        return by_event

    def describe(self) -> str:
        if not self.faults:
            return "<empty fault plan>"
        return "\n".join(spec.describe() for spec in self.faults)

    # -- seeded constructors ------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        horizon: int = 100,
        nodes: Sequence[str] = (),
        sources: Sequence[str] = (),
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.002,
        crash_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.005,
        stall_rate: float = 0.0,
        seal_rate: float = 0.0,
        outage_rate: float = 0.0,
    ) -> "FaultPlan":
        """Bernoulli-draw one fault decision per seam per event index.

        The draw order is fixed (event-major, seam order as written), so
        the plan is a pure function of the arguments — replaying a seed
        replays the schedule exactly.
        """
        rng = random.Random(seed)
        node_pool = sorted(nodes)
        source_pool = sorted(sources)
        faults: list[FaultSpec] = []
        for event in range(horizon):
            if drop_rate and rng.random() < drop_rate:
                faults.append(FaultSpec("drop", "transfer", event))
            if delay_rate and rng.random() < delay_rate:
                faults.append(
                    FaultSpec("delay", "transfer", event, seconds=delay_seconds)
                )
            if crash_rate and rng.random() < crash_rate:
                target = rng.choice(node_pool) if node_pool else None
                faults.append(FaultSpec("crash", "service", event, target))
            if slow_rate and rng.random() < slow_rate:
                faults.append(
                    FaultSpec("slow", "service", event, seconds=slow_seconds)
                )
            if stall_rate and rng.random() < stall_rate:
                faults.append(FaultSpec("stall", "log_append", event))
            if seal_rate and rng.random() < seal_rate:
                faults.append(FaultSpec("seal", "log_append", event))
            if outage_rate and source_pool and rng.random() < outage_rate:
                faults.append(
                    FaultSpec("outage", "remote_scan", event, rng.choice(source_pool))
                )
        return cls(faults)

    @classmethod
    def kill_schedule(
        cls,
        seed: int,
        *,
        ticks: int,
        rate: float,
        nodes: Sequence[str],
    ) -> "FaultPlan":
        """A node-kill/repair schedule on the ``tick`` seam.

        At each tick, with probability ``rate``, one node (never the one
        already down) crashes and the previously crashed node — if any —
        is repaired first, so at most one node is dead at a time. This
        models a cluster with working supervision (the paper's
        v2clustermgr restarts services) under a steady fault rate.
        """
        if not nodes:
            raise ChaosError("kill_schedule needs at least one node")
        rng = random.Random(seed)
        pool = sorted(nodes)
        faults: list[FaultSpec] = []
        dead: str | None = None
        for tick in range(ticks):
            if rng.random() < rate:
                candidates = [n for n in pool if n != dead]
                if not candidates:
                    continue
                victim = rng.choice(candidates)
                if dead is not None:
                    faults.append(FaultSpec("revive", "tick", tick, dead))
                faults.append(FaultSpec("crash", "tick", tick, victim))
                dead = victim
        return cls(faults)

    @classmethod
    def partition_schedule(
        cls,
        seed: int,
        *,
        ticks: int,
        rate: float,
        nodes: Sequence[str],
        heal_after: int = 3,
    ) -> "FaultPlan":
        """A rolling network-partition schedule on the ``tick`` seam.

        At each tick, with probability ``rate``, one node is *isolated*
        (partitioned from everyone while still running — the zombie-owner
        gray failure) and any previously isolated node is healed first,
        so at most one node is cut at a time; an isolation also heals by
        itself after ``heal_after`` ticks. Mirrors
        :meth:`kill_schedule`'s shape so kill- and partition-matrix tests
        stay comparable, and is a pure function of its arguments: one
        seed, one schedule, bit for bit.
        """
        if not nodes:
            raise ChaosError("partition_schedule needs at least one node")
        if heal_after < 1:
            raise ChaosError("heal_after must be >= 1")
        rng = random.Random(seed)
        pool = sorted(nodes)
        faults: list[FaultSpec] = []
        cut: str | None = None
        cut_at = -1
        for tick in range(ticks):
            if cut is not None and tick - cut_at >= heal_after:
                faults.append(FaultSpec("heal", "tick", tick, cut))
                cut = None
            if rng.random() < rate:
                candidates = [n for n in pool if n != cut]
                if not candidates:
                    continue
                victim = rng.choice(candidates)
                if cut is not None:
                    faults.append(FaultSpec("heal", "tick", tick, cut))
                faults.append(FaultSpec("partition", "tick", tick, victim))
                cut = victim
                cut_at = tick
        if cut is not None and ticks > 0:
            faults.append(FaultSpec("heal", "tick", ticks - 1, cut))
        return cls(faults)
