"""Uniform grid spatial index for point data (benchmark E13 fast path)."""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.engines.geo.geometry import Point, Polygon
from repro.engines.geo.operations import euclidean
from repro.errors import GeoError


class GridIndex:
    """Buckets points into square cells of side ``cell_size``.

    Range and radius queries visit only the overlapping cells — the
    classical trade-off: coarse cells degrade to a scan, tiny cells waste
    memory; the default targets tens of points per cell for uniform data.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise GeoError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[Hashable, Point]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (
            math.floor(point.x / self.cell_size),
            math.floor(point.y / self.cell_size),
        )

    def insert(self, key: Hashable, point: Point) -> None:
        """Add one keyed point."""
        self._cells.setdefault(self._cell_of(point), []).append((key, point))
        self._count += 1

    def bulk_load(self, items: Iterable[tuple[Hashable, Point]]) -> None:
        for key, point in items:
            self.insert(key, point)

    def within_radius(self, center: Point, radius: float) -> list[tuple[Hashable, Point]]:
        """All points within ``radius`` (planar) of ``center``."""
        result: list[tuple[Hashable, Point]] = []
        min_cx = math.floor((center.x - radius) / self.cell_size)
        max_cx = math.floor((center.x + radius) / self.cell_size)
        min_cy = math.floor((center.y - radius) / self.cell_size)
        max_cy = math.floor((center.y + radius) / self.cell_size)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                for key, point in self._cells.get((cx, cy), ()):
                    if euclidean(center, point) <= radius:
                        result.append((key, point))
        return result

    def in_box(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list[tuple[Hashable, Point]]:
        """All points inside the axis-aligned box (inclusive)."""
        result: list[tuple[Hashable, Point]] = []
        for cx in range(math.floor(min_x / self.cell_size), math.floor(max_x / self.cell_size) + 1):
            for cy in range(math.floor(min_y / self.cell_size), math.floor(max_y / self.cell_size) + 1):
                for key, point in self._cells.get((cx, cy), ()):
                    if min_x <= point.x <= max_x and min_y <= point.y <= max_y:
                        result.append((key, point))
        return result

    def in_polygon(self, polygon: Polygon) -> list[tuple[Hashable, Point]]:
        """All points contained in the polygon (bbox prefilter + exact)."""
        from repro.engines.geo.operations import contains

        min_x, min_y, max_x, max_y = polygon.bounding_box()
        return [
            (key, point)
            for key, point in self.in_box(min_x, min_y, max_x, max_y)
            if contains(polygon, point)
        ]

    def nearest(self, center: Point, count: int = 1) -> list[tuple[Hashable, Point]]:
        """k-nearest neighbours by expanding ring search."""
        if self._count == 0 or count <= 0:
            return []
        radius = self.cell_size
        while True:
            candidates = self.within_radius(center, radius)
            if len(candidates) >= count or radius > self.cell_size * (1 + self._count):
                candidates.sort(key=lambda item: euclidean(center, item[1]))
                return candidates[:count]
            radius *= 2.0
