"""Geometry types and WKT parsing for the geospatial engine (§II.F).

Geometries are stored in GEOMETRY columns as WKT text and parsed lazily;
the SQL layer exposes them through the ``ST_*`` functions. Coordinates are
planar (x, y) by default; the operations module also offers haversine
distance for (lon, lat) data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import GeoError


@dataclass(frozen=True)
class Point:
    """A 2-D point."""

    x: float
    y: float

    def wkt(self) -> str:
        return f"POINT ({_fmt(self.x)} {_fmt(self.y)})"


@dataclass(frozen=True)
class LineString:
    """An open polyline with at least two points."""

    points: tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise GeoError("LINESTRING needs at least two points")

    def wkt(self) -> str:
        inner = ", ".join(f"{_fmt(p.x)} {_fmt(p.y)}" for p in self.points)
        return f"LINESTRING ({inner})"

    def length(self) -> float:
        from repro.engines.geo.operations import euclidean

        return sum(
            euclidean(a, b) for a, b in zip(self.points, self.points[1:])
        )


@dataclass(frozen=True)
class Polygon:
    """A simple polygon (outer ring only; first point need not repeat)."""

    ring: tuple[Point, ...]

    def __post_init__(self) -> None:
        ring = self.ring
        if len(ring) >= 2 and ring[0] == ring[-1]:
            object.__setattr__(self, "ring", ring[:-1])
        if len(self.ring) < 3:
            raise GeoError("POLYGON needs at least three distinct points")

    def wkt(self) -> str:
        closed = self.ring + (self.ring[0],)
        inner = ", ".join(f"{_fmt(p.x)} {_fmt(p.y)}" for p in closed)
        return f"POLYGON (({inner}))"

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y)."""
        xs = [p.x for p in self.ring]
        ys = [p.y for p in self.ring]
        return min(xs), min(ys), max(xs), max(ys)


Geometry = Point | LineString | Polygon


def _fmt(value: float) -> str:
    return f"{value:.10g}"


_POINT = re.compile(r"^\s*POINT\s*\(\s*(\S+)\s+(\S+)\s*\)\s*$", re.IGNORECASE)
_LINESTRING = re.compile(r"^\s*LINESTRING\s*\((.*)\)\s*$", re.IGNORECASE | re.DOTALL)
_POLYGON = re.compile(r"^\s*POLYGON\s*\(\s*\((.*)\)\s*\)\s*$", re.IGNORECASE | re.DOTALL)


def _parse_coords(text: str) -> tuple[Point, ...]:
    points = []
    for chunk in text.split(","):
        parts = chunk.split()
        if len(parts) != 2:
            raise GeoError(f"bad coordinate pair: {chunk.strip()!r}")
        try:
            points.append(Point(float(parts[0]), float(parts[1])))
        except ValueError as exc:
            raise GeoError(f"bad coordinate pair: {chunk.strip()!r}") from exc
    return tuple(points)


def parse_wkt(text: str) -> Geometry:
    """Parse POINT / LINESTRING / POLYGON WKT."""
    match = _POINT.match(text)
    if match:
        try:
            return Point(float(match.group(1)), float(match.group(2)))
        except ValueError as exc:
            raise GeoError(f"bad POINT: {text!r}") from exc
    match = _LINESTRING.match(text)
    if match:
        return LineString(_parse_coords(match.group(1)))
    match = _POLYGON.match(text)
    if match:
        return Polygon(_parse_coords(match.group(1)))
    raise GeoError(f"unsupported WKT: {text[:60]!r}")
