"""Geospatial operations: the engine behind the SQL ``ST_*`` functions.

Section II.F: "We extended the SQL syntax in order to allow the definition
of points or polygons, and to support query operators like WithinDistance,
Contains or Area."
"""

from __future__ import annotations

import math

from repro.engines.geo.geometry import Geometry, LineString, Point, Polygon
from repro.errors import GeoError

EARTH_RADIUS_KM = 6371.0088


def euclidean(a: Point, b: Point) -> float:
    """Planar distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def haversine_km(a: Point, b: Point) -> float:
    """Great-circle distance in km; points are (lon, lat) in degrees."""
    lon1, lat1, lon2, lat2 = map(math.radians, (a.x, a.y, b.x, b.y))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def _point_of(geometry: Geometry) -> Point:
    if isinstance(geometry, Point):
        return geometry
    return centroid(geometry)


def centroid(geometry: Geometry) -> Point:
    """Centroid (vertex average for lines, area centroid for polygons)."""
    if isinstance(geometry, Point):
        return geometry
    if isinstance(geometry, LineString):
        xs = [p.x for p in geometry.points]
        ys = [p.y for p in geometry.points]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))
    ring = geometry.ring
    doubled_area = 0.0
    cx = cy = 0.0
    for a, b in zip(ring, ring[1:] + (ring[0],)):
        cross = a.x * b.y - b.x * a.y
        doubled_area += cross
        cx += (a.x + b.x) * cross
        cy += (a.y + b.y) * cross
    if abs(doubled_area) < 1e-12:
        xs = [p.x for p in ring]
        ys = [p.y for p in ring]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))
    return Point(cx / (3 * doubled_area), cy / (3 * doubled_area))


def distance(a: Geometry, b: Geometry, geodesic: bool = False) -> float:
    """Distance between geometries.

    Point–point is exact; point–polygon is distance to the boundary (0 if
    inside); other combinations use representative points. ``geodesic``
    switches point–point to haversine km.
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return haversine_km(a, b) if geodesic else euclidean(a, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return distance(b, a, geodesic)
    if isinstance(a, Point) and isinstance(b, Polygon):
        if contains(b, a):
            return 0.0
        ring = b.ring
        return min(
            _point_segment_distance(a, p, q)
            for p, q in zip(ring, ring[1:] + (ring[0],))
        )
    return (
        haversine_km(_point_of(a), _point_of(b))
        if geodesic
        else euclidean(_point_of(a), _point_of(b))
    )


def _point_segment_distance(point: Point, a: Point, b: Point) -> float:
    vx, vy = b.x - a.x, b.y - a.y
    wx, wy = point.x - a.x, point.y - a.y
    seg_len_sq = vx * vx + vy * vy
    if seg_len_sq <= 1e-18:
        return euclidean(point, a)
    t = max(0.0, min(1.0, (wx * vx + wy * vy) / seg_len_sq))
    projection = Point(a.x + t * vx, a.y + t * vy)
    return euclidean(point, projection)


def within_distance(a: Geometry, b: Geometry, limit: float, geodesic: bool = False) -> bool:
    """The paper's ``WithinDistance`` predicate."""
    return distance(a, b, geodesic) <= limit


def area(geometry: Geometry) -> float:
    """Polygon area via the shoelace formula (0 for points/lines)."""
    if not isinstance(geometry, Polygon):
        return 0.0
    ring = geometry.ring
    doubled = 0.0
    for a, b in zip(ring, ring[1:] + (ring[0],)):
        doubled += a.x * b.y - b.x * a.y
    return abs(doubled) / 2.0


def contains(container: Geometry, contained: Geometry) -> bool:
    """The paper's ``Contains`` predicate.

    Polygon–point uses ray casting (boundary counts as inside);
    polygon–polygon / polygon–line require all vertices inside.
    """
    if not isinstance(container, Polygon):
        if isinstance(container, Point) and isinstance(contained, Point):
            return container == contained
        raise GeoError("CONTAINS requires a polygon container")
    if isinstance(contained, Point):
        return _polygon_contains_point(container, contained)
    points = contained.ring if isinstance(contained, Polygon) else contained.points
    return all(_polygon_contains_point(container, point) for point in points)


def _polygon_contains_point(polygon: Polygon, point: Point) -> bool:
    ring = polygon.ring
    inside = False
    n = len(ring)
    for index in range(n):
        a = ring[index]
        b = ring[(index + 1) % n]
        if _on_segment(point, a, b):
            return True
        if (a.y > point.y) != (b.y > point.y):
            x_cross = a.x + (point.y - a.y) * (b.x - a.x) / (b.y - a.y)
            if point.x < x_cross:
                inside = not inside
    return inside


def _on_segment(point: Point, a: Point, b: Point, epsilon: float = 1e-12) -> bool:
    cross = (b.x - a.x) * (point.y - a.y) - (b.y - a.y) * (point.x - a.x)
    if abs(cross) > epsilon:
        return False
    dot = (point.x - a.x) * (b.x - a.x) + (point.y - a.y) * (b.y - a.y)
    seg_len_sq = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return -epsilon <= dot <= seg_len_sq + epsilon
