"""Specialised data-processing engines (Figure 2 top row)."""
