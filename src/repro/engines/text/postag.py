"""Rule-based part-of-speech tagging (§II.C).

"Many languages have to be supported natively with functionality like
stemming, part of speech tagging, and others." This tagger is the
classical lexicon-plus-suffix-rules design: a small closed-class lexicon
decides determiners/prepositions/pronouns/conjunctions, suffix and shape
rules classify open-class words, and two contextual repair rules fix the
most common noun/verb confusions. Tags follow a compact universal set:
NOUN, VERB, ADJ, ADV, DET, PRON, PREP, CONJ, NUM, X.
"""

from __future__ import annotations

from repro.engines.text.tokenizer import tokenize

_LEXICON = {
    "DET": {"the", "a", "an", "this", "that", "these", "those", "every", "each", "some", "any", "no"},
    "PREP": {"in", "on", "at", "by", "for", "with", "from", "to", "of", "into", "over", "under", "between", "through"},
    "PRON": {"i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "its", "his", "their", "our", "your", "my"},
    "CONJ": {"and", "or", "but", "because", "although", "while", "if", "when"},
    "VERB": {"is", "are", "was", "were", "be", "been", "has", "have", "had", "do", "does", "did", "will", "would", "can", "could", "should", "may", "might", "must"},
    "ADV": {"not", "very", "quickly", "slowly", "never", "always", "often", "here", "there", "now", "then", "too", "also"},
}

_ADJ_SUFFIXES = ("able", "ible", "ous", "ful", "less", "ive", "ical", "ian", "ary")
_NOUN_SUFFIXES = ("tion", "sion", "ment", "ness", "ity", "ship", "ance", "ence", "ism", "er", "or", "ist")
_VERB_SUFFIXES = ("ize", "ise", "ify", "ate")
_ADV_SUFFIX = "ly"


def _tag_word(word: str) -> str:
    for tag, words in _LEXICON.items():
        if word in words:
            return tag
    if word.replace(".", "").replace(",", "").isdigit():
        return "NUM"
    if word.endswith(_ADV_SUFFIX) and len(word) > 3:
        return "ADV"
    for suffix in _ADJ_SUFFIXES:
        if word.endswith(suffix) and len(word) > len(suffix) + 1:
            return "ADJ"
    for suffix in _VERB_SUFFIXES:
        if word.endswith(suffix) and len(word) > len(suffix) + 1:
            return "VERB"
    for suffix in _NOUN_SUFFIXES:
        if word.endswith(suffix) and len(word) > len(suffix) + 1:
            return "NOUN"
    if word.endswith("ing") or word.endswith("ed"):
        return "VERB"
    return "NOUN"  # open-class default


def pos_tag(text: str) -> list[tuple[str, str]]:
    """Tag every token of ``text``; returns (token, tag) pairs."""
    tokens = tokenize(text)
    tags = [_tag_word(token) for token in tokens]
    # contextual repair 1: word after a determiner heads a noun phrase
    for index in range(1, len(tokens)):
        if tags[index - 1] == "DET" and tags[index] == "VERB":
            tags[index] = "NOUN"
    # contextual repair 2: NOUN directly after PRON is usually the verb
    # ("they run", "it works") when it carries a verbal suffix or is short
    for index in range(1, len(tokens)):
        if (
            tags[index - 1] == "PRON"
            and tags[index] == "NOUN"
            and (tokens[index].endswith("s") or len(tokens[index]) <= 5)
        ):
            tags[index] = "VERB"
    return list(zip(tokens, tags))


def noun_phrases(text: str) -> list[str]:
    """Contiguous DET? ADJ* NOUN+ chunks — cheap keyword extraction."""
    tagged = pos_tag(text)
    phrases: list[str] = []
    current: list[str] = []
    for token, tag in tagged:
        if tag in ("ADJ", "NOUN") or (tag == "DET" and not current):
            current.append(token)
        else:
            if any(_tag_word(word) == "NOUN" for word in current):
                phrases.append(" ".join(current))
            current = []
    if current and any(_tag_word(word) == "NOUN" for word in current):
        phrases.append(" ".join(current))
    return phrases
