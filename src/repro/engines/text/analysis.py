"""Text analytics: entity extraction, sentiment, and classification.

Section II.C: "we are able to extract entities (like names, addresses,
companies, ...) and sentiments from documents with a rule based approach";
"text classification, clustering, sentiment analysis" sit on top. The
extracted entities "can be stored as structured data" — see
:func:`extract_to_table`, which bridges unstructured text into the
relational store.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass
from math import log
from typing import Any, Iterable, Sequence

from repro.engines.text.tokenizer import sentences, tokenize, tokenize_terms


# --------------------------------------------------------------------------
# rule-based entity extraction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Entity:
    """One extracted entity with its type and character span."""

    text: str
    entity_type: str
    start: int
    end: int


@dataclass(frozen=True)
class EntityRule:
    """A regex rule producing entities of one type."""

    entity_type: str
    pattern: re.Pattern[str]


DEFAULT_RULES: list[EntityRule] = [
    EntityRule("EMAIL", re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b")),
    EntityRule("MONEY", re.compile(r"(?:\$|€|EUR|USD)\s?\d[\d,.]*")),
    EntityRule("DATE", re.compile(r"\b\d{4}-\d{2}-\d{2}\b")),
    EntityRule("PHONE", re.compile(r"\+\d[\d\s()-]{6,}\d")),
    EntityRule(
        "COMPANY",
        re.compile(
            r"\b(?:[A-Z][A-Za-z0-9&]+(?:\s+[A-Z][A-Za-z0-9&]+)*)\s+"
            r"(?:Inc|Corp|GmbH|AG|SE|Ltd|LLC|Co)\b\.?"
        ),
    ),
    EntityRule(
        "PERSON",
        re.compile(r"\b(?:Mr|Mrs|Ms|Dr|Prof)\.?\s+[A-Z][a-z]+(?:\s+[A-Z][a-z]+)?"),
    ),
    EntityRule("PERCENT", re.compile(r"\b\d+(?:\.\d+)?\s?%")),
]


class EntityExtractor:
    """Rule-based extraction; extend with :meth:`add_rule`."""

    def __init__(self, rules: Iterable[EntityRule] | None = None) -> None:
        self.rules = list(rules) if rules is not None else list(DEFAULT_RULES)

    def add_rule(self, entity_type: str, pattern: str) -> None:
        """Register an additional regex rule."""
        self.rules.append(EntityRule(entity_type.upper(), re.compile(pattern)))

    def extract(self, text: str) -> list[Entity]:
        """All entities, earliest first; overlaps resolved rule-first."""
        found: list[Entity] = []
        taken: list[tuple[int, int]] = []
        for rule in self.rules:
            for match in rule.pattern.finditer(text):
                span = (match.start(), match.end())
                if any(span[0] < end and start < span[1] for start, end in taken):
                    continue
                taken.append(span)
                found.append(Entity(match.group(0), rule.entity_type, *span))
        return sorted(found, key=lambda entity: entity.start)


def extract_to_table(
    database: Any,
    source_table: str,
    text_column: str,
    target_table: str = "extracted_entities",
    key_column: str | None = None,
) -> int:
    """Run entity extraction over a table column into a structured table.

    Creates ``target_table(source_key VARCHAR, entity_type VARCHAR,
    entity_text VARCHAR)`` when missing; returns the number of entities
    stored. This is the Section II.C bridge from unstructured to
    structured data.
    """
    from repro.core import types as dt
    from repro.core.schema import schema as make_schema

    if not database.catalog.has_table(target_table):
        database.create_table(
            target_table,
            make_schema(
                ("source_key", dt.VARCHAR),
                ("entity_type", dt.VARCHAR),
                ("entity_text", dt.VARCHAR),
            ),
        )
    source = database.catalog.table(source_table)
    snapshot = database.txn_manager.last_committed_cid
    key_position = (
        source.schema.position(key_column) if key_column is not None else None
    )
    text_position = source.schema.position(text_column)
    extractor = EntityExtractor()
    txn = database.begin()
    count = 0
    target = database.catalog.table(target_table)
    for row in source.scan_rows(snapshot):
        text = row[text_position]
        if text is None:
            continue
        key = str(row[key_position]) if key_position is not None else None
        for entity in extractor.extract(str(text)):
            target.insert([key, entity.entity_type, entity.text], txn)
            count += 1
    database.commit(txn)
    return count


# --------------------------------------------------------------------------
# sentiment (lexicon based)
# --------------------------------------------------------------------------

POSITIVE_WORDS = frozenset(
    """good great excellent amazing love happy best fantastic wonderful
    positive improve improved gain strong success successful win winning
    reliable fast efficient profitable growth beat exceeded""".split()
)

NEGATIVE_WORDS = frozenset(
    """bad terrible awful hate worst poor negative fail failure failing
    loss lose losing weak slow broken unreliable bug bugs crash delay
    delayed decline missed problem problems defect""".split()
)

NEGATIONS = frozenset("not no never n't cannot without hardly".split())


def sentiment_score(text: str) -> float:
    """Signed sentiment in [-1, 1]; 0 is neutral. Handles negation."""
    total = 0
    hits = 0
    for sentence in sentences(text):
        tokens = tokenize(sentence)
        for index, token in enumerate(tokens):
            polarity = 0
            if token in POSITIVE_WORDS:
                polarity = 1
            elif token in NEGATIVE_WORDS:
                polarity = -1
            if polarity == 0:
                continue
            window = tokens[max(0, index - 3) : index]
            if any(previous in NEGATIONS for previous in window):
                polarity = -polarity
            total += polarity
            hits += 1
    if hits == 0:
        return 0.0
    return max(-1.0, min(1.0, total / hits))


def sentiment_label(text: str, threshold: float = 0.1) -> str:
    """'positive' / 'negative' / 'neutral'."""
    score = sentiment_score(text)
    if score > threshold:
        return "positive"
    if score < -threshold:
        return "negative"
    return "neutral"


# --------------------------------------------------------------------------
# Naive-Bayes text classification
# --------------------------------------------------------------------------


class NaiveBayesClassifier:
    """Multinomial Naive Bayes over stemmed tokens."""

    def __init__(self, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing
        self._term_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._class_counts: Counter[str] = Counter()
        self._class_tokens: Counter[str] = Counter()
        self._vocabulary: set[str] = set()

    @property
    def classes(self) -> list[str]:
        return sorted(self._class_counts)

    def train(self, samples: Sequence[tuple[str, str]]) -> None:
        """Train on (text, label) pairs; may be called repeatedly."""
        for text, label in samples:
            tokens = tokenize_terms(text)
            self._class_counts[label] += 1
            for token in tokens:
                self._term_counts[label][token] += 1
                self._class_tokens[label] += 1
                self._vocabulary.add(token)

    def log_scores(self, text: str) -> dict[str, float]:
        """Per-class log posterior (unnormalised)."""
        if not self._class_counts:
            return {}
        tokens = tokenize_terms(text)
        total_docs = sum(self._class_counts.values())
        vocab = max(len(self._vocabulary), 1)
        scores: dict[str, float] = {}
        for label, doc_count in self._class_counts.items():
            score = log(doc_count / total_docs)
            denominator = self._class_tokens[label] + self.smoothing * vocab
            for token in tokens:
                numerator = self._term_counts[label][token] + self.smoothing
                score += log(numerator / denominator)
            scores[label] = score
        return scores

    def classify(self, text: str) -> str | None:
        """Most likely class, or ``None`` before training."""
        scores = self.log_scores(text)
        if not scores:
            return None
        return max(scores.items(), key=lambda item: item[1])[0]
