"""A compact Porter-style stemmer.

Implements the core of Porter's algorithm (steps 1a/1b/1c plus common
suffix strippings from steps 2–5). It is intentionally a light variant:
deterministic, dependency-free, and sufficient for the engine's "stemming"
language feature (paper, Section II.C) — matching plurals, participles,
and the frequent derivational suffixes.
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    ch = word[index]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences."""
    pattern = "".join("c" if _is_consonant(stem, i) else "v" for i in range(len(stem)))
    count = 0
    previous = "c"
    for ch in pattern:
        if previous == "v" and ch == "c":
            count += 1
        previous = ch
    return count


def _has_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def stem_word(word: str) -> str:
    """Stem one lower-case token."""
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _strip_suffixes(word)
    return word


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        return word[:-1] if _measure(stem) > 0 else word
    for suffix in ("ed", "ing"):
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if not _has_vowel(stem):
                return word
            if stem.endswith(("at", "bl", "iz")):
                return stem + "e"
            if _ends_double_consonant(stem) and stem[-1] not in "lsz":
                return stem[:-1]
            if _measure(stem) == 1 and _cvc(stem):
                return stem + "e"
            return stem
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _has_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_SUFFIX_MAP = [
    ("ational", "ate"),
    ("tional", "tion"),
    ("ization", "ize"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("iveness", "ive"),
    ("biliti", "ble"),
    ("entli", "ent"),
    ("ousli", "ous"),
    ("alism", "al"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("ement", ""),
    ("ment", ""),
    ("ness", ""),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("alli", "al"),
    ("ator", "ate"),
    ("able", ""),
    ("ible", ""),
    ("ance", ""),
    ("ence", ""),
    ("ant", ""),
    ("ent", ""),
    ("ism", ""),
    ("ate", ""),
    ("iti", ""),
    ("ous", ""),
    ("ive", ""),
    ("ize", ""),
    ("ion", ""),
    ("al", ""),
    ("er", ""),
    ("ic", ""),
]


def _strip_suffixes(word: str) -> str:
    for suffix, replacement in _SUFFIX_MAP:
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if _measure(stem) > 1 or (replacement and _measure(stem) > 0):
                return stem + replacement
            return word
    if word.endswith("e") and _measure(word[:-1]) > 1:
        return word[:-1]
    return word
