"""Text tokenisation and normalisation for the text engine."""

from __future__ import annotations

import re

_WORD = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")

#: Minimal English stop-word list; kept small so recall stays predictable.
STOP_WORDS = frozenset(
    """a an and are as at be but by for from has have in is it its of on or
    that the to was were will with this these those not no""".split()
)


def tokenize(text: str) -> list[str]:
    """Split text into lower-cased word tokens (stop words included)."""
    return [match.group(0).lower() for match in _WORD.finditer(text)]


def tokenize_terms(text: str, stem: bool = True) -> list[str]:
    """Tokens as indexed: lower-cased, stop words removed, stemmed."""
    from repro.engines.text.stemmer import stem_word

    tokens = [token for token in tokenize(text) if token not in STOP_WORDS]
    if stem:
        tokens = [stem_word(token) for token in tokens]
    return tokens


def sentences(text: str) -> list[str]:
    """Naive sentence splitting (for sentiment scoping)."""
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [part for part in parts if part]
