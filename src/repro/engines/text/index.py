"""Incrementally maintained inverted index over a table column.

Section II.C: "text processing is deeply integrated into the HANA engine"
and "the text analysis and feature extraction process is triggered
automatically when new or changed documents are brought into the data
management system". Accordingly :class:`InvertedIndex` registers itself as
a change listener on the table: committed inserts index the new document,
committed deletes unindex it — queries never see uncommitted text.

Documents are addressed as ``(partition name, row position)`` so the SQL
scan operator can intersect postings with MVCC-visible positions.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

from repro.columnstore.table import EVENT_DELETE, EVENT_INSERT, ColumnTable, TablePartition
from repro.engines.text.tokenizer import tokenize_terms
from repro.errors import TextEngineError

DocId = tuple[str, int]


def _edit_distance_at_most(a: str, b: str, limit: int) -> bool:
    """Banded Levenshtein: True iff distance(a, b) <= limit."""
    if a == b:
        return True
    if abs(len(a) - len(b)) > limit:
        return False
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, 1):
        current = [i] + [0] * len(b)
        row_min = i
        for j, char_b in enumerate(b, 1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (char_a != char_b),
            )
            row_min = min(row_min, current[j])
        if row_min > limit:
            return False
        previous = current
    return previous[len(b)] <= limit


class InvertedIndex:
    """Term → postings index with document statistics for BM25."""

    def __init__(self, table_name: str, column: str) -> None:
        self.table_name = table_name
        self.column = column
        self._postings: dict[str, dict[DocId, int]] = {}
        self._doc_lengths: dict[DocId, int] = {}
        self._total_length = 0

    # -- sizes ----------------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    @property
    def average_length(self) -> float:
        return self._total_length / self.document_count if self.document_count else 0.0

    # -- maintenance ---------------------------------------------------------------

    def add_document(self, doc_id: DocId, text: str | None) -> None:
        """Index one document (NULL text indexes as empty)."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        terms = tokenize_terms(text or "")
        counts = Counter(terms)
        for term, frequency in counts.items():
            self._postings.setdefault(term, {})[doc_id] = frequency
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)

    def remove_document(self, doc_id: DocId) -> None:
        """Remove a document's postings."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            return
        self._total_length -= length
        empty_terms = []
        for term, postings in self._postings.items():
            if postings.pop(doc_id, None) is not None and not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- queries --------------------------------------------------------------------

    def postings(self, term: str) -> dict[DocId, int]:
        """Raw postings for an already-normalised term."""
        return self._postings.get(term, {})

    def lookup(self, query: str) -> set[DocId]:
        """Documents containing *all* query terms (AND semantics)."""
        terms = tokenize_terms(query)
        if not terms:
            return set()
        result: set[DocId] | None = None
        for term in terms:
            docs = set(self._postings.get(term, {}))
            result = docs if result is None else result & docs
            if not result:
                return set()
        return result or set()

    def lookup_positions(self, query: str) -> dict[str, set[int]]:
        """Matching positions grouped by partition name (scan interface)."""
        grouped: dict[str, set[int]] = {}
        for partition_name, position in self.lookup(query):
            grouped.setdefault(partition_name, set()).add(position)
        return grouped

    def fuzzy_terms(self, term: str, max_distance: int = 1) -> list[str]:
        """Indexed terms within ``max_distance`` edits of ``term``.

        The paper's HANA offers fuzzy text search; this is the classical
        dictionary-expansion approach — cheap because the term dictionary
        is small relative to the corpus.
        """
        term = term.lower()
        matches = []
        for candidate in self._postings:
            if abs(len(candidate) - len(term)) > max_distance:
                continue
            if _edit_distance_at_most(term, candidate, max_distance):
                matches.append(candidate)
        return sorted(matches)

    def lookup_fuzzy(self, query: str, max_distance: int = 1) -> set[DocId]:
        """Documents matching every query term fuzzily (AND semantics)."""
        terms = tokenize_terms(query)
        if not terms:
            return set()
        result: set[DocId] | None = None
        for term in terms:
            docs: set[DocId] = set()
            for variant in self.fuzzy_terms(term, max_distance):
                docs |= set(self._postings.get(variant, {}))
            result = docs if result is None else result & docs
            if not result:
                return set()
        return result or set()

    def score(self, query: str, k1: float = 1.5, b: float = 0.75) -> list[tuple[DocId, float]]:
        """BM25-ranked documents for the query, best first."""
        terms = tokenize_terms(query)
        if not terms or not self.document_count:
            return []
        scores: dict[DocId, float] = {}
        n_docs = self.document_count
        avg_len = self.average_length or 1.0
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = math.log(1.0 + (n_docs - len(postings) + 0.5) / (len(postings) + 0.5))
            for doc_id, frequency in postings.items():
                doc_len = self._doc_lengths[doc_id]
                tf = (frequency * (k1 + 1)) / (
                    frequency + k1 * (1 - b + b * doc_len / avg_len)
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf
        return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


def create_text_index(database: Any, table_name: str, column: str) -> InvertedIndex:
    """Create, register, and auto-maintain a text index on table.column.

    Existing committed rows are indexed immediately; a change listener
    keeps the index in sync with committed inserts and deletes.
    """
    table = database.catalog.table(table_name)
    if not isinstance(table, ColumnTable):
        raise TextEngineError("text indexes require a column table")
    if not table.schema.has_column(column):
        raise TextEngineError(f"no such column {column!r} on {table_name!r}")
    index = InvertedIndex(table.name, column.lower())
    column_position = table.schema.position(column)

    snapshot = database.txn_manager.last_committed_cid
    for partition in table.partitions:
        positions = partition.visible_positions(snapshot)
        values = partition.values_at(column, positions)
        for position, value in zip(positions, values):
            index.add_document((partition.name, int(position)), value)

    def listener(
        event: str,
        partition: TablePartition,
        positions: list[int],
        rows: list[list[Any]],
    ) -> None:
        for position, row in zip(positions, rows):
            if event == EVENT_INSERT:
                index.add_document((partition.name, position), row[column_position])
            elif event == EVENT_DELETE:
                index.remove_document((partition.name, position))

    table.on_change(listener)
    database.text_indexes[(table.name, column.lower())] = index
    return index
