"""K-means clustering (part of the predictive library, Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError


@dataclass(frozen=True)
class KMeansResult:
    """Centroids, per-point assignments, and the final inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def kmeans(
    points: np.ndarray | list[list[float]],
    k: int,
    max_iterations: int = 100,
    seed: int = 7,
    tolerance: float = 1e-8,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding (deterministic by seed)."""
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise EngineError("points must be a non-empty 2-D array")
    if not 1 <= k <= len(data):
        raise EngineError(f"k must be in [1, {len(data)}]")

    rng = np.random.default_rng(seed)
    centroids = _kmeans_plus_plus(data, k, rng)
    labels = np.zeros(len(data), dtype=np.int64)
    inertia = np.inf
    for iteration in range(1, max_iterations + 1):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        new_inertia = float(distances[np.arange(len(data)), labels].sum())
        for index in range(k):
            members = data[labels == index]
            if len(members):
                centroids[index] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the worst-served point
                centroids[index] = data[distances.min(axis=1).argmax()]
        if abs(inertia - new_inertia) <= tolerance * max(inertia, 1.0):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia, iterations=iteration)


def _kmeans_plus_plus(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    centroids = np.empty((k, data.shape[1]))
    centroids[0] = data[rng.integers(len(data))]
    for index in range(1, k):
        distances = ((data[:, None, :] - centroids[None, :index, :]) ** 2).sum(axis=2).min(axis=1)
        total = distances.sum()
        if total <= 0:
            centroids[index] = data[rng.integers(len(data))]
            continue
        centroids[index] = data[rng.choice(len(data), p=distances / total)]
    return centroids


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (sampled exactly; O(n^2))."""
    data = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    distances = np.sqrt(((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2))
    scores = np.empty(len(data))
    for index in range(len(data)):
        own = labels[index]
        same = distances[index][(labels == own)]
        a = same[same > 0].mean() if len(same) > 1 else 0.0
        b = min(
            distances[index][labels == other].mean()
            for other in unique
            if other != own
        )
        scores[index] = 0.0 if max(a, b) == 0 else (b - a) / max(a, b)
    return float(scores.mean())
