"""Distributed basket analysis (a-priori association rules).

Section II.B: "We embedded some critical data mining features directly
into the column store engine. Examples are distributed basket analysis".
The miner runs a-priori over transaction baskets; *distributed* means the
support-counting passes run independently per horizontal partition and are
summed — the same structure the SOE uses to push the counting to the data
(benchmark E18 measures the partition sweep).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable, Sequence

Item = Hashable
Basket = frozenset


@dataclass(frozen=True)
class AssociationRule:
    """antecedent → consequent with support/confidence/lift."""

    antecedent: tuple[Item, ...]
    consequent: tuple[Item, ...]
    support: float
    confidence: float
    lift: float


def _as_baskets(transactions: Iterable[Iterable[Item]]) -> list[frozenset]:
    return [frozenset(transaction) for transaction in transactions]


def count_supports(
    baskets: Sequence[frozenset], candidates: Sequence[frozenset]
) -> Counter:
    """One partition-local counting pass (the distributable kernel)."""
    counts: Counter = Counter()
    for basket in baskets:
        for candidate in candidates:
            if candidate <= basket:
                counts[candidate] += 1
    return counts


def merge_counts(partials: Iterable[Counter]) -> Counter:
    """Combine partition-local counts (the SOE reduce step)."""
    total: Counter = Counter()
    for partial in partials:
        total.update(partial)
    return total


def frequent_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float = 0.1,
    max_size: int = 4,
    partitions: int = 1,
) -> dict[frozenset, float]:
    """A-priori frequent itemsets; ``partitions`` splits the counting.

    Returns itemset → support (fraction of baskets).
    """
    baskets = _as_baskets(transactions)
    if not baskets:
        return {}
    n = len(baskets)
    threshold = min_support * n
    shards = [baskets[index::partitions] for index in range(max(partitions, 1))]

    # size-1 candidates from a single distributed pass
    item_counts = merge_counts(
        Counter({frozenset([item]): count for item, count in Counter(
            item for basket in shard for item in basket
        ).items()})
        for shard in shards
    )
    frequent: dict[frozenset, float] = {
        itemset: count / n
        for itemset, count in item_counts.items()
        if count >= threshold
    }
    current = [itemset for itemset in frequent if len(itemset) == 1]

    size = 2
    while current and size <= max_size:
        candidates = _generate_candidates(current, size, set(frequent))
        if not candidates:
            break
        counts = merge_counts(count_supports(shard, candidates) for shard in shards)
        survivors = []
        for candidate in candidates:
            count = counts.get(candidate, 0)
            if count >= threshold:
                frequent[candidate] = count / n
                survivors.append(candidate)
        current = survivors
        size += 1
    return frequent


def _generate_candidates(
    previous: Sequence[frozenset], size: int, frequent: set[frozenset]
) -> list[frozenset]:
    """Join step with a-priori pruning (all subsets must be frequent)."""
    candidates: set[frozenset] = set()
    for index, left in enumerate(previous):
        for right in previous[index + 1 :]:
            union = left | right
            if len(union) != size:
                continue
            if all(frozenset(subset) in frequent for subset in combinations(union, size - 1)):
                candidates.add(union)
    return sorted(candidates, key=lambda s: sorted(map(str, s)))


def association_rules(
    transactions: Iterable[Iterable[Item]],
    min_support: float = 0.1,
    min_confidence: float = 0.5,
    max_size: int = 4,
    partitions: int = 1,
) -> list[AssociationRule]:
    """A-priori association rules, strongest (by lift) first."""
    baskets = _as_baskets(transactions)
    frequent = frequent_itemsets(baskets, min_support, max_size, partitions)
    rules: list[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for split in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset, key=str), split):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                antecedent_support = frequent.get(antecedent)
                consequent_support = frequent.get(consequent)
                if not antecedent_support or not consequent_support:
                    continue
                confidence = support / antecedent_support
                if confidence < min_confidence:
                    continue
                rules.append(
                    AssociationRule(
                        antecedent=tuple(sorted(antecedent, key=str)),
                        consequent=tuple(sorted(consequent, key=str)),
                        support=support,
                        confidence=confidence,
                        lift=confidence / consequent_support,
                    )
                )
    rules.sort(key=lambda rule: (-rule.lift, -rule.confidence, rule.antecedent))
    return rules
