"""Forecasting algorithms ("a variety of forecasting algorithms", §II.B).

Linear trend, simple/double (Holt) and triple (Holt-Winters additive)
exponential smoothing — the classical enterprise planning/IoT forecasting
kit, used by Scenario V.2 (predictive maintenance) and V.3 (dispenser
refill prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError


@dataclass(frozen=True)
class Forecast:
    """Fitted values plus the requested horizon of predictions."""

    fitted: np.ndarray
    predictions: np.ndarray

    @property
    def mse(self) -> float:
        """Mean squared one-step-ahead training error (set by fitters)."""
        return float(getattr(self, "_mse", np.nan))


def _with_mse(fitted: np.ndarray, actual: np.ndarray, predictions: np.ndarray) -> Forecast:
    forecast = Forecast(fitted=fitted, predictions=predictions)
    residuals = actual[: len(fitted)] - fitted
    object.__setattr__(forecast, "_mse", float(np.mean(residuals**2)) if len(residuals) else np.nan)
    return forecast


def linear_trend(values: np.ndarray | list[float], horizon: int) -> Forecast:
    """Ordinary least-squares line extrapolation."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        raise EngineError("linear trend needs at least two observations")
    x = np.arange(len(values), dtype=np.float64)
    slope, intercept = np.polyfit(x, values, 1)
    fitted = intercept + slope * x
    future = intercept + slope * (len(values) + np.arange(horizon))
    return _with_mse(fitted, values, future)


def simple_exponential(values: np.ndarray | list[float], horizon: int, alpha: float = 0.3) -> Forecast:
    """SES: flat forecast at the last smoothed level."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise EngineError("cannot forecast an empty series")
    if not 0 < alpha <= 1:
        raise EngineError("alpha must be in (0, 1]")
    level = values[0]
    fitted = np.empty(len(values))
    for index, value in enumerate(values):
        fitted[index] = level
        level = alpha * value + (1 - alpha) * level
    return _with_mse(fitted, values, np.full(horizon, level))


def holt(
    values: np.ndarray | list[float],
    horizon: int,
    alpha: float = 0.3,
    beta: float = 0.1,
) -> Forecast:
    """Holt's double exponential smoothing (level + trend)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        raise EngineError("Holt needs at least two observations")
    level = values[0]
    trend = values[1] - values[0]
    fitted = np.empty(len(values))
    for index, value in enumerate(values):
        fitted[index] = level + trend
        new_level = alpha * value + (1 - alpha) * (level + trend)
        trend = beta * (new_level - level) + (1 - beta) * trend
        level = new_level
    predictions = level + trend * (1 + np.arange(horizon))
    return _with_mse(fitted, values, predictions)


def holt_winters(
    values: np.ndarray | list[float],
    horizon: int,
    period: int,
    alpha: float = 0.3,
    beta: float = 0.05,
    gamma: float = 0.2,
) -> Forecast:
    """Additive Holt-Winters (level + trend + seasonality)."""
    values = np.asarray(values, dtype=np.float64)
    if period < 2:
        raise EngineError("period must be >= 2")
    if len(values) < 2 * period:
        raise EngineError("Holt-Winters needs at least two full periods")

    seasonals = np.array(
        [np.mean(values[phase::period]) for phase in range(period)]
    )
    seasonals = seasonals - np.mean(values[: period * (len(values) // period)])
    level = float(np.mean(values[:period]))
    trend = float((np.mean(values[period : 2 * period]) - np.mean(values[:period])) / period)

    fitted = np.empty(len(values))
    for index, value in enumerate(values):
        season = seasonals[index % period]
        fitted[index] = level + trend + season
        new_level = alpha * (value - season) + (1 - alpha) * (level + trend)
        trend = beta * (new_level - level) + (1 - beta) * trend
        seasonals[index % period] = gamma * (value - new_level) + (1 - gamma) * season
        level = new_level

    predictions = np.array(
        [
            level + trend * (step + 1) + seasonals[(len(values) + step) % period]
            for step in range(horizon)
        ]
    )
    return _with_mse(fitted, values, predictions)


def auto_forecast(values: np.ndarray | list[float], horizon: int, period: int | None = None) -> Forecast:
    """Pick the fitter with the lowest training MSE."""
    values = np.asarray(values, dtype=np.float64)
    candidates: list[Forecast] = []
    if len(values) >= 2:
        candidates.append(linear_trend(values, horizon))
        candidates.append(holt(values, horizon))
    candidates.append(simple_exponential(values, horizon))
    if period is not None and len(values) >= 2 * period:
        candidates.append(holt_winters(values, horizon, period))
    return min(candidates, key=lambda forecast: forecast.mse)
