"""External analytics operators — the "R integration" (§II.B).

The paper: "Access to R is implemented as a special operator into the
internal data flow graph of the database engine allowing the optimizer to
embrace the call to the external system."

Substitution (DESIGN.md): instead of shipping data to an external R
process over a socket, :class:`ExternalOperator` models the same contract —
a named operator that receives a relational input (rows + column names),
runs outside the SQL engine, and returns a relational output that flows
back into the plan. :class:`RAdapter` is an in-process "R-like" provider
with a handful of vector functions; real deployments would register a
provider that talks to Rserve. Data-transfer volume is *accounted* so the
benchmarks can show what in-engine execution saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import EngineError

RelationalInput = tuple[list[str], list[list[Any]]]
RelationalOutput = tuple[list[str], list[list[Any]]]
ProviderFunction = Callable[[RelationalInput, dict[str, Any]], RelationalOutput]


@dataclass
class TransferStats:
    """Bytes/rows shipped to and from the external system."""

    rows_out: int = 0
    rows_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0

    def record_out(self, rows: list[list[Any]]) -> None:
        self.rows_out += len(rows)
        self.bytes_out += _approx_bytes(rows)

    def record_in(self, rows: list[list[Any]]) -> None:
        self.rows_in += len(rows)
        self.bytes_in += _approx_bytes(rows)


def _approx_bytes(rows: list[list[Any]]) -> int:
    total = 0
    for row in rows:
        for value in row:
            total += len(value) + 1 if isinstance(value, str) else 8
    return total


class ExternalOperator:
    """One callable external-analytics operator in the data-flow graph."""

    def __init__(self, name: str, provider: "Provider", function: str) -> None:
        self.name = name
        self.provider = provider
        self.function = function

    def __call__(
        self,
        columns: Sequence[str],
        rows: list[list[Any]],
        **parameters: Any,
    ) -> RelationalOutput:
        """Ship the input, run the provider function, receive the output."""
        self.provider.stats.record_out(rows)
        out_columns, out_rows = self.provider.call(
            self.function, (list(columns), rows), parameters
        )
        self.provider.stats.record_in(out_rows)
        return out_columns, out_rows


class Provider:
    """A registry of external functions (an 'R' or 'SAS' endpoint)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._functions: dict[str, ProviderFunction] = {}
        self.stats = TransferStats()

    def register(self, function: str, impl: ProviderFunction) -> None:
        self._functions[function] = impl

    def call(
        self, function: str, data: RelationalInput, parameters: dict[str, Any]
    ) -> RelationalOutput:
        impl = self._functions.get(function)
        if impl is None:
            raise EngineError(f"provider {self.name!r} has no function {function!r}")
        return impl(data, parameters)

    def operator(self, function: str) -> ExternalOperator:
        """An operator handle the planner can embed in a data flow."""
        return ExternalOperator(f"{self.name}.{function}", self, function)


def make_r_adapter() -> Provider:
    """An in-process provider mimicking common R vector analytics."""
    provider = Provider("R")

    def _matrix(data: RelationalInput) -> tuple[list[str], np.ndarray]:
        columns, rows = data
        return columns, np.asarray(
            [[float(value) for value in row] for row in rows], dtype=np.float64
        )

    def r_cor(data: RelationalInput, parameters: dict[str, Any]) -> RelationalOutput:
        """cor(df): full correlation matrix of the numeric input."""
        columns, matrix = _matrix(data)
        if len(matrix) < 2:
            raise EngineError("cor needs at least two rows")
        corr = np.corrcoef(matrix, rowvar=False)
        corr = np.atleast_2d(corr)
        out_rows = [
            [columns[i]] + [float(corr[i, j]) for j in range(len(columns))]
            for i in range(len(columns))
        ]
        return ["variable"] + list(columns), out_rows

    def r_lm(data: RelationalInput, parameters: dict[str, Any]) -> RelationalOutput:
        """lm(y ~ x): simple linear regression on the first two columns."""
        _columns, matrix = _matrix(data)
        if matrix.shape[1] < 2:
            raise EngineError("lm needs two numeric columns (x, y)")
        slope, intercept = np.polyfit(matrix[:, 0], matrix[:, 1], 1)
        return ["coefficient", "value"], [
            ["intercept", float(intercept)],
            ["slope", float(slope)],
        ]

    def r_summary(data: RelationalInput, parameters: dict[str, Any]) -> RelationalOutput:
        """summary(df): min/median/mean/max per numeric column."""
        columns, matrix = _matrix(data)
        out = []
        for index, column in enumerate(columns):
            values = matrix[:, index]
            out.append(
                [
                    column,
                    float(values.min()),
                    float(np.median(values)),
                    float(values.mean()),
                    float(values.max()),
                ]
            )
        return ["variable", "min", "median", "mean", "max"], out

    provider.register("cor", r_cor)
    provider.register("lm", r_lm)
    provider.register("summary", r_summary)
    return provider
