"""SLACID-style sparse matrices inside the column store (§II.G).

Kernert et al. [6] store sparse matrices in the column-oriented engine as
a read-optimised CSR *main* part plus a write-optimised *delta* of updates,
mirroring the store's main/delta split. :class:`ColumnarSparseMatrix`
implements that design:

* ``main``: CSR arrays (indptr/indices/data) — fast SpMV and scans,
* ``delta``: a COO dict of updates since the last merge,
* :meth:`merge_delta` folds the delta into a fresh CSR (the matrix's own
  "delta merge"),
* :meth:`from_table` / :meth:`to_table` move matrices between the
  relational store (coo triples) and the engine, keeping data and metadata
  "persisted and kept consistently within the data management ecosystem".
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.errors import ScientificError


class ColumnarSparseMatrix:
    """A mutable sparse matrix with main (CSR) + delta (COO) parts."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ScientificError("matrix dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._indptr = np.zeros(rows + 1, dtype=np.int64)
        self._indices = np.empty(0, dtype=np.int64)
        self._data = np.empty(0, dtype=np.float64)
        self._delta: dict[tuple[int, int], float] = {}
        self.merges = 0

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_coo(
        cls, rows: int, cols: int, triples: Iterable[tuple[int, int, float]]
    ) -> "ColumnarSparseMatrix":
        matrix = cls(rows, cols)
        for row, col, value in triples:
            matrix.set(row, col, value)
        matrix.merge_delta()
        return matrix

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ColumnarSparseMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        matrix = cls(dense.shape[0], dense.shape[1])
        rows, cols = np.nonzero(dense)
        for row, col in zip(rows, cols):
            matrix.set(int(row), int(col), float(dense[row, col]))
        matrix.merge_delta()
        return matrix

    @classmethod
    def from_table(
        cls,
        database: Any,
        table: str,
        rows: int,
        cols: int,
        row_column: str = "i",
        col_column: str = "j",
        value_column: str = "v",
    ) -> "ColumnarSparseMatrix":
        """Read a matrix stored relationally as (i, j, v) triples."""
        relation = database.catalog.table(table)
        snapshot = database.txn_manager.last_committed_cid
        ri = relation.schema.position(row_column)
        ci = relation.schema.position(col_column)
        vi = relation.schema.position(value_column)
        return cls.from_coo(
            rows,
            cols,
            (
                (int(row[ri]), int(row[ci]), float(row[vi]))
                for row in relation.scan_rows(snapshot)
            ),
        )

    def to_table(self, database: Any, table: str) -> int:
        """Write the matrix back as (i, j, v) triples; returns nnz."""
        from repro.core import types as dt
        from repro.core.schema import schema as make_schema

        if not database.catalog.has_table(table):
            database.create_table(
                table,
                make_schema(("i", dt.INTEGER), ("j", dt.INTEGER), ("v", dt.DOUBLE)),
            )
        relation = database.catalog.table(table)
        txn = database.begin()
        count = 0
        for row, col, value in self.triples():
            relation.insert([row, col, value], txn)
            count += 1
        database.commit(txn)
        return count

    # -- element access ----------------------------------------------------------------

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ScientificError(
                f"index ({row}, {col}) out of bounds for {self.rows}x{self.cols}"
            )

    def set(self, row: int, col: int, value: float) -> None:
        """Point update — lands in the delta (cheap, no CSR rebuild)."""
        self._check(row, col)
        self._delta[(row, col)] = float(value)

    def get(self, row: int, col: int) -> float:
        """Point read (delta overrides main)."""
        self._check(row, col)
        override = self._delta.get((row, col))
        if override is not None:
            return override
        start, stop = self._indptr[row], self._indptr[row + 1]
        position = np.searchsorted(self._indices[start:stop], col)
        if position < stop - start and self._indices[start + position] == col:
            return float(self._data[start + position])
        return 0.0

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    @property
    def nnz(self) -> int:
        """Non-zeros after a hypothetical merge (delta may overwrite)."""
        main_keys = 0
        overridden = 0
        for (row, col) in self._delta:
            if self._main_has(row, col):
                overridden += 1
        main_keys = len(self._data)
        explicit_zero = sum(1 for value in self._delta.values() if value == 0.0)
        return main_keys - overridden + len(self._delta) - explicit_zero

    def _main_has(self, row: int, col: int) -> bool:
        start, stop = self._indptr[row], self._indptr[row + 1]
        position = np.searchsorted(self._indices[start:stop], col)
        return position < stop - start and self._indices[start + position] == col

    # -- merge ---------------------------------------------------------------------------

    def merge_delta(self) -> None:
        """Fold delta updates into a fresh CSR main part."""
        if not self._delta:
            return
        entries: dict[tuple[int, int], float] = {}
        for row in range(self.rows):
            for position in range(self._indptr[row], self._indptr[row + 1]):
                entries[(row, int(self._indices[position]))] = float(self._data[position])
        entries.update(self._delta)
        self._delta = {}
        items = sorted(
            ((row, col, value) for (row, col), value in entries.items() if value != 0.0)
        )
        self._indptr = np.zeros(self.rows + 1, dtype=np.int64)
        self._indices = np.empty(len(items), dtype=np.int64)
        self._data = np.empty(len(items), dtype=np.float64)
        for position, (row, col, value) in enumerate(items):
            self._indptr[row + 1] += 1
            self._indices[position] = col
            self._data[position] = value
        np.cumsum(self._indptr, out=self._indptr)
        self.merges += 1

    # -- reads -------------------------------------------------------------------------------

    def triples(self) -> Iterable[tuple[int, int, float]]:
        """All non-zero (row, col, value), merged view."""
        overrides = dict(self._delta)
        for row in range(self.rows):
            for position in range(self._indptr[row], self._indptr[row + 1]):
                col = int(self._indices[position])
                value = overrides.pop((row, col), float(self._data[position]))
                if value != 0.0:
                    yield row, col, value
        for (row, col), value in sorted(overrides.items()):
            if value != 0.0:
                yield row, col, value

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.rows, self.cols))
        for row, col, value in self.triples():
            dense[row, col] = value
        return dense

    # -- kernels ---------------------------------------------------------------------------------

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """SpMV: CSR main pass plus a delta correction pass."""
        vector = np.asarray(vector, dtype=np.float64)
        if len(vector) != self.cols:
            raise ScientificError(f"vector length {len(vector)} != cols {self.cols}")
        result = np.zeros(self.rows)
        if len(self._data):
            # vectorised CSR SpMV: gather + segment sum
            gathered = self._data * vector[self._indices]
            row_ids = np.repeat(
                np.arange(self.rows), np.diff(self._indptr)
            )
            np.add.at(result, row_ids, gathered)
        for (row, col), value in self._delta.items():
            if self._main_has(row, col):
                start, stop = self._indptr[row], self._indptr[row + 1]
                position = start + np.searchsorted(self._indices[start:stop], col)
                result[row] += (value - self._data[position]) * vector[col]
            else:
                result[row] += value * vector[col]
        return result

    def transpose(self) -> "ColumnarSparseMatrix":
        transposed = ColumnarSparseMatrix(self.cols, self.rows)
        for row, col, value in self.triples():
            transposed.set(col, row, value)
        transposed.merge_delta()
        return transposed
