"""Linear-algebra kernels over columnar sparse matrices (§II.G).

"Kernert et al. show the significant advantage of bringing linear algebra
operations like eigenvalue calculation on large matrices into a main
memory column store" — the kernels here (power iteration, PageRank,
iterative refinement) run directly on :class:`ColumnarSparseMatrix`,
avoiding the export/import round trip the paper criticises. The round-trip
baseline for benchmark E14 lives in :class:`FileRepositoryBaseline`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.engines.scientific.matrix import ColumnarSparseMatrix
from repro.errors import ScientificError


def power_iteration(
    matrix: ColumnarSparseMatrix,
    iterations: int = 200,
    tolerance: float = 1e-10,
    seed: int = 13,
) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue/eigenvector of a square matrix."""
    if matrix.rows != matrix.cols:
        raise ScientificError("power iteration needs a square matrix")
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(matrix.cols)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    for _step in range(iterations):
        product = matrix.matvec(vector)
        norm = float(np.linalg.norm(product))
        if norm == 0.0:
            return 0.0, vector
        next_vector = product / norm
        next_eigenvalue = float(next_vector @ matrix.matvec(next_vector))
        if abs(next_eigenvalue - eigenvalue) < tolerance:
            return next_eigenvalue, next_vector
        vector = next_vector
        eigenvalue = next_eigenvalue
    return eigenvalue, vector


def pagerank_matrix(
    adjacency: ColumnarSparseMatrix,
    damping: float = 0.85,
    iterations: int = 100,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """PageRank via repeated SpMV on the column-stochastic matrix."""
    if adjacency.rows != adjacency.cols:
        raise ScientificError("pagerank needs a square adjacency matrix")
    n = adjacency.rows
    out_degree = np.zeros(n)
    for row, _col, value in adjacency.triples():
        out_degree[row] += abs(value)
    transition = ColumnarSparseMatrix(n, n)
    for row, col, value in adjacency.triples():
        transition.set(col, row, abs(value) / out_degree[row])
    transition.merge_delta()

    rank = np.full(n, 1.0 / n)
    sinks = out_degree == 0
    for _step in range(iterations):
        spread = transition.matvec(rank) + rank[sinks].sum() / n
        updated = (1 - damping) / n + damping * spread
        if float(np.abs(updated - rank).sum()) < tolerance:
            return updated
        rank = updated
    return rank


def conjugate_gradient(
    matrix: ColumnarSparseMatrix,
    rhs: np.ndarray,
    iterations: int = 500,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Solve Ax=b for symmetric positive-definite A."""
    if matrix.rows != matrix.cols:
        raise ScientificError("conjugate gradient needs a square matrix")
    b = np.asarray(rhs, dtype=np.float64)
    x = np.zeros(matrix.cols)
    residual = b - matrix.matvec(x)
    direction = residual.copy()
    rs_old = float(residual @ residual)
    for _step in range(iterations):
        if np.sqrt(rs_old) < tolerance:
            break
        a_direction = matrix.matvec(direction)
        denominator = float(direction @ a_direction)
        if denominator == 0.0:
            break
        alpha = rs_old / denominator
        x += alpha * direction
        residual -= alpha * a_direction
        rs_new = float(residual @ residual)
        direction = residual + (rs_new / rs_old) * direction
        rs_old = rs_new
    return x


class FileRepositoryBaseline:
    """The workflow the paper argues against (benchmark E14 baseline).

    Every iteration of an analysis round-trips the matrix through "large
    file repositories": serialise to disk, re-load, compute externally,
    write results back. The in-engine path skips all of it.
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.files_written = 0

    def export_matrix(self, matrix: ColumnarSparseMatrix, name: str) -> Path:
        path = self.directory / f"{name}.json"
        payload = {
            "rows": matrix.rows,
            "cols": matrix.cols,
            "triples": [[r, c, v] for r, c, v in matrix.triples()],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        self.files_written += 1
        return path

    def import_matrix(self, path: Path) -> ColumnarSparseMatrix:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        return ColumnarSparseMatrix.from_coo(
            payload["rows"], payload["cols"],
            ((int(r), int(c), float(v)) for r, c, v in payload["triples"]),
        )

    def roundtrip_power_iteration(
        self, matrix: ColumnarSparseMatrix, analysis_rounds: int
    ) -> tuple[float, np.ndarray]:
        """Each analysis round exports, re-imports, then computes."""
        result: tuple[float, np.ndarray] = (0.0, np.zeros(matrix.cols))
        current = matrix
        for round_index in range(analysis_rounds):
            path = self.export_matrix(current, f"matrix_round{round_index}")
            current = self.import_matrix(path)
            result = power_iteration(current, iterations=50)
        return result
