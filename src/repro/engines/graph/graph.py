"""Graph views over relational tables.

Section II.E: the graph engine "allows to interpret data in columns
(structured relational data) as graph or hierarchy structures by defining
hierarchy or graph views on top of the relational data". A
:class:`GraphView` references a vertex table and an edge table in the
shared catalog; adjacency is built from the committed snapshot and can be
refreshed after updates. Graph data stays relational — joins against other
tables keep working — which is exactly the integration argument the paper
makes.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.errors import GraphEngineError

VertexId = Hashable


class GraphView:
    """An adjacency view over (vertex table, edge table)."""

    def __init__(
        self,
        database: Any,
        name: str,
        vertex_table: str,
        vertex_key: str,
        edge_table: str,
        source_column: str,
        target_column: str,
        weight_column: str | None = None,
        directed: bool = True,
    ) -> None:
        self.database = database
        self.name = name
        self.vertex_table = vertex_table
        self.vertex_key = vertex_key
        self.edge_table = edge_table
        self.source_column = source_column
        self.target_column = target_column
        self.weight_column = weight_column
        self.directed = directed
        self._adjacency: dict[VertexId, list[tuple[VertexId, float]]] = {}
        self._vertices: dict[VertexId, list[Any]] = {}
        self._vertex_columns: list[str] = []
        self.refresh()

    # -- snapshot materialisation ---------------------------------------------

    def refresh(self) -> None:
        """Rebuild adjacency from the current committed snapshot."""
        database = self.database
        snapshot = database.txn_manager.last_committed_cid
        vertex_table = database.catalog.table(self.vertex_table)
        edge_table = database.catalog.table(self.edge_table)

        self._vertex_columns = list(vertex_table.schema.column_names)
        key_position = vertex_table.schema.position(self.vertex_key)
        self._vertices = {}
        for row in vertex_table.scan_rows(snapshot):
            self._vertices[row[key_position]] = row

        source_position = edge_table.schema.position(self.source_column)
        target_position = edge_table.schema.position(self.target_column)
        weight_position = (
            edge_table.schema.position(self.weight_column)
            if self.weight_column is not None
            else None
        )
        self._adjacency = {vertex: [] for vertex in self._vertices}
        for row in edge_table.scan_rows(snapshot):
            source = row[source_position]
            target = row[target_position]
            weight = float(row[weight_position]) if weight_position is not None else 1.0
            self._adjacency.setdefault(source, []).append((target, weight))
            if not self.directed:
                self._adjacency.setdefault(target, []).append((source, weight))

    # -- basic accessors ------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        total = sum(len(neighbors) for neighbors in self._adjacency.values())
        return total if self.directed else total // 2

    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self._adjacency

    def vertices(self) -> Iterable[VertexId]:
        return self._adjacency.keys()

    def vertex_attributes(self, vertex: VertexId) -> dict[str, Any]:
        """The vertex's relational row as a dict (empty if edge-only)."""
        row = self._vertices.get(vertex)
        if row is None:
            return {}
        return dict(zip(self._vertex_columns, row))

    def neighbors(self, vertex: VertexId) -> list[VertexId]:
        """Outgoing neighbours."""
        self._require_vertex(vertex)
        return [target for target, _weight in self._adjacency[vertex]]

    def edges(self) -> Iterable[tuple[VertexId, VertexId, float]]:
        for source, targets in self._adjacency.items():
            for target, weight in targets:
                yield source, target, weight

    def out_degree(self, vertex: VertexId) -> int:
        self._require_vertex(vertex)
        return len(self._adjacency[vertex])

    def adjacency(self) -> dict[VertexId, list[tuple[VertexId, float]]]:
        """The raw adjacency mapping (read-only by convention)."""
        return self._adjacency

    def _require_vertex(self, vertex: VertexId) -> None:
        if vertex not in self._adjacency:
            raise GraphEngineError(f"unknown vertex {vertex!r} in graph {self.name!r}")


def create_graph_view(
    database: Any,
    name: str,
    vertex_table: str,
    vertex_key: str,
    edge_table: str,
    source_column: str,
    target_column: str,
    weight_column: str | None = None,
    directed: bool = True,
) -> GraphView:
    """Create a graph view and register it in the catalog."""
    view = GraphView(
        database,
        name,
        vertex_table,
        vertex_key,
        edge_table,
        source_column,
        target_column,
        weight_column,
        directed,
    )
    database.catalog.register_view(name, view)
    return view
