"""Graph algorithms over :class:`~repro.engines.graph.graph.GraphView`.

"State of the art graph processing functionality (like distance, siblings,
shortest path, and others)" — Section II.E. Used by the Section V
scenarios: pipeline evacuation routing (V.5) and service-team routing
(V.3).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.engines.graph.graph import GraphView, VertexId
from repro.errors import GraphEngineError


def bfs_distances(graph: GraphView, source: VertexId) -> dict[VertexId, int]:
    """Hop distance from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphEngineError(f"unknown vertex {source!r}")
    distances: dict[VertexId, int] = {source: 0}
    queue: deque[VertexId] = deque([source])
    adjacency = graph.adjacency()
    while queue:
        current = queue.popleft()
        for neighbor, _weight in adjacency.get(current, ()):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def distance(graph: GraphView, source: VertexId, target: VertexId) -> int | None:
    """Hop distance between two vertices (None if unreachable)."""
    return bfs_distances(graph, source).get(target)


def shortest_path(
    graph: GraphView, source: VertexId, target: VertexId
) -> tuple[float, list[VertexId]] | None:
    """Dijkstra shortest weighted path; returns (cost, path) or None."""
    if not graph.has_vertex(source):
        raise GraphEngineError(f"unknown vertex {source!r}")
    adjacency = graph.adjacency()
    best: dict[VertexId, float] = {source: 0.0}
    previous: dict[VertexId, VertexId] = {}
    counter = 0
    heap: list[tuple[float, int, VertexId]] = [(0.0, counter, source)]
    visited: set[VertexId] = set()
    while heap:
        cost, _tie, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current == target:
            path = [current]
            while path[-1] != source:
                path.append(previous[path[-1]])
            return cost, path[::-1]
        for neighbor, weight in adjacency.get(current, ()):
            if weight < 0:
                raise GraphEngineError("negative edge weights are not supported")
            candidate = cost + weight
            if candidate < best.get(neighbor, float("inf")):
                best[neighbor] = candidate
                previous[neighbor] = current
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return None


def connected_components(graph: GraphView) -> list[set[VertexId]]:
    """Weakly connected components."""
    undirected: dict[VertexId, set[VertexId]] = {v: set() for v in graph.vertices()}
    for source, target, _weight in graph.edges():
        undirected.setdefault(source, set()).add(target)
        undirected.setdefault(target, set()).add(source)
    seen: set[VertexId] = set()
    components: list[set[VertexId]] = []
    for start in undirected:
        if start in seen:
            continue
        component: set[VertexId] = set()
        queue: deque[VertexId] = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            component.add(current)
            for neighbor in undirected.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def neighborhood(graph: GraphView, source: VertexId, hops: int) -> set[VertexId]:
    """All vertices within ``hops`` of ``source`` (excluding it)."""
    return {
        vertex
        for vertex, dist in bfs_distances(graph, source).items()
        if 0 < dist <= hops
    }


def reachable(graph: GraphView, source: VertexId) -> set[VertexId]:
    """Every vertex reachable from ``source`` (including it)."""
    return set(bfs_distances(graph, source))


def pagerank(
    graph: GraphView,
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-9,
) -> dict[VertexId, float]:
    """Power-iteration PageRank (sinks redistribute uniformly)."""
    vertices = list(graph.vertices())
    if not vertices:
        return {}
    n = len(vertices)
    rank = {vertex: 1.0 / n for vertex in vertices}
    adjacency = graph.adjacency()
    for _round in range(iterations):
        incoming: dict[VertexId, float] = {vertex: 0.0 for vertex in vertices}
        sink_mass = 0.0
        for vertex in vertices:
            targets = adjacency.get(vertex, ())
            if not targets:
                sink_mass += rank[vertex]
                continue
            share = rank[vertex] / len(targets)
            for target, _weight in targets:
                if target in incoming:
                    incoming[target] += share
        updated = {}
        delta = 0.0
        for vertex in vertices:
            value = (1 - damping) / n + damping * (incoming[vertex] + sink_mass / n)
            delta += abs(value - rank[vertex])
            updated[vertex] = value
        rank = updated
        if delta < tolerance:
            break
    return rank


def evacuation_plan(
    graph: GraphView,
    leak: VertexId,
    exits: list[VertexId],
    blocked_radius: int = 1,
) -> dict[VertexId, tuple[float, list[VertexId]] | None]:
    """Section V.5: route every vertex to its nearest exit avoiding the leak.

    Vertices within ``blocked_radius`` hops of the leak are impassable.
    Returns per-vertex (cost, path to chosen exit), or ``None`` for
    vertices that cannot reach any exit.
    """
    blocked = {leak} | neighborhood(graph, leak, blocked_radius)
    adjacency = graph.adjacency()

    # multi-source Dijkstra from all exits over reversed edges
    reverse: dict[VertexId, list[tuple[VertexId, float]]] = {
        vertex: [] for vertex in graph.vertices()
    }
    for source, target, weight in graph.edges():
        reverse.setdefault(target, []).append((source, weight))

    best: dict[VertexId, float] = {}
    toward: dict[VertexId, VertexId] = {}
    counter = 0
    heap: list[tuple[float, int, VertexId]] = []
    for exit_vertex in exits:
        if exit_vertex in blocked:
            continue
        best[exit_vertex] = 0.0
        heapq.heappush(heap, (0.0, counter, exit_vertex))
        counter += 1
    visited: set[VertexId] = set()
    while heap:
        cost, _tie, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        for neighbor, weight in reverse.get(current, ()):
            if neighbor in blocked:
                continue
            candidate = cost + weight
            if candidate < best.get(neighbor, float("inf")):
                best[neighbor] = candidate
                toward[neighbor] = current
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))

    plan: dict[VertexId, tuple[float, list[VertexId]] | None] = {}
    exit_set = set(exits)
    for vertex in graph.vertices():
        if vertex in blocked:
            plan[vertex] = None
            continue
        if vertex not in best:
            plan[vertex] = None
            continue
        path = [vertex]
        while path[-1] not in exit_set:
            path.append(toward[path[-1]])
        plan[vertex] = (best[vertex], path)
    return plan


def subgraph_where(
    graph: GraphView, predicate: Callable[[dict[str, Any]], bool]
) -> set[VertexId]:
    """Vertices whose relational attributes satisfy ``predicate`` —
    the relational/graph combination query of Section II.E."""
    return {
        vertex
        for vertex in graph.vertices()
        if predicate(graph.vertex_attributes(vertex))
    }
