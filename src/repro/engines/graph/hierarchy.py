"""Hierarchy views with interval labelling and versioning.

Section II.E (citing Finis et al., DeltaNI [5]): "hierarchies as a special
kind of a graph are used in almost all kinds of business applications.
Special support for time dependent and versioned hierarchies is therefore
a crucial functionality".

:class:`HierarchyView` labels every node with a nested interval
``[lower, upper)`` via DFS, so containment tests, descendant counts, and
subtree aggregations are O(1)/O(subtree) instead of recursive joins — this
is the benchmark E11 fast path and the Section III "counting the
transitive child nodes" pushdown example.

:class:`VersionedHierarchy` implements a DeltaNI-flavoured scheme: a base
version plus per-version *parent deltas*; each version materialises its
interval labels lazily and caches them, so time-travel queries cost one
relabelling per touched version rather than a full copy per change.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.errors import GraphEngineError

NodeId = Hashable


class HierarchyView:
    """An interval-labelled rooted forest."""

    def __init__(self, name: str, parent_of: dict[NodeId, NodeId | None]) -> None:
        self.name = name
        self._parent = dict(parent_of)
        self._children: dict[NodeId, list[NodeId]] = {}
        self._lower: dict[NodeId, int] = {}
        self._upper: dict[NodeId, int] = {}
        self._level: dict[NodeId, int] = {}
        self._relabel()

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        database: Any,
        name: str,
        table: str,
        node_column: str,
        parent_column: str,
    ) -> "HierarchyView":
        """Build a hierarchy view from a (node, parent) relational table."""
        relation = database.catalog.table(table)
        snapshot = database.txn_manager.last_committed_cid
        node_position = relation.schema.position(node_column)
        parent_position = relation.schema.position(parent_column)
        parent_of: dict[NodeId, NodeId | None] = {}
        for row in relation.scan_rows(snapshot):
            parent_of[row[node_position]] = row[parent_position]
        view = cls(name, parent_of)
        database.catalog.register_view(name, view)
        return view

    def _relabel(self) -> None:
        self._children = {node: [] for node in self._parent}
        roots: list[NodeId] = []
        for node, parent in self._parent.items():
            if parent is None:
                roots.append(node)
            else:
                if parent not in self._parent:
                    raise GraphEngineError(
                        f"hierarchy {self.name!r}: parent {parent!r} of {node!r} unknown"
                    )
                self._children[parent].append(node)
        self._lower = {}
        self._upper = {}
        self._level = {}
        counter = 0
        # iterative DFS with explicit post-visit records
        for root in roots:
            stack: list[tuple[NodeId, int, bool]] = [(root, 0, False)]
            while stack:
                node, level, closed = stack.pop()
                if closed:
                    self._upper[node] = counter
                    counter += 1
                    continue
                if node in self._lower:
                    raise GraphEngineError(
                        f"hierarchy {self.name!r}: cycle at {node!r}"
                    )
                self._lower[node] = counter
                self._level[node] = level
                counter += 1
                stack.append((node, level, True))
                for child in reversed(self._children[node]):
                    stack.append((child, level + 1, False))
        unlabelled = set(self._parent) - set(self._lower)
        if unlabelled:
            raise GraphEngineError(
                f"hierarchy {self.name!r}: cycle among {sorted(map(str, unlabelled))[:5]}"
            )

    # -- queries ------------------------------------------------------------------

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    def _require(self, node: NodeId) -> None:
        if node not in self._parent:
            raise GraphEngineError(f"unknown node {node!r} in hierarchy {self.name!r}")

    @property
    def node_count(self) -> int:
        return len(self._parent)

    def roots(self) -> list[NodeId]:
        return [node for node, parent in self._parent.items() if parent is None]

    def parent(self, node: NodeId) -> NodeId | None:
        self._require(node)
        return self._parent[node]

    def children(self, node: NodeId) -> list[NodeId]:
        self._require(node)
        return list(self._children[node])

    def level(self, node: NodeId) -> int:
        """Depth: roots are level 0."""
        self._require(node)
        return self._level[node]

    def is_descendant(self, node: NodeId, ancestor: NodeId) -> bool:
        """O(1) containment via interval inclusion (strict)."""
        self._require(node)
        self._require(ancestor)
        return (
            node != ancestor
            and self._lower[ancestor] < self._lower[node]
            and self._upper[node] < self._upper[ancestor]
        )

    def descendants(self, node: NodeId) -> list[NodeId]:
        """All transitive children, in DFS label order."""
        self._require(node)
        low, high = self._lower[node], self._upper[node]
        return sorted(
            (
                other
                for other in self._parent
                if low < self._lower[other] and self._upper[other] < high
            ),
            key=lambda other: self._lower[other],
        )

    def descendant_count(self, node: NodeId) -> int:
        """Transitive child count — the Section III pushdown example.

        With interval labels this is ``(upper - lower - 1) / 2`` and needs
        no traversal at all.
        """
        self._require(node)
        return (self._upper[node] - self._lower[node] - 1) // 2

    def siblings(self, node: NodeId) -> list[NodeId]:
        self._require(node)
        parent = self._parent[node]
        if parent is None:
            return [root for root in self.roots() if root != node]
        return [child for child in self._children[parent] if child != node]

    def path_to_root(self, node: NodeId) -> list[NodeId]:
        self._require(node)
        path = [node]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])
        return path

    def subtree_aggregate(
        self,
        node: NodeId,
        values: dict[NodeId, float],
        combine: Callable[[float, float], float] = lambda a, b: a + b,
        initial: float = 0.0,
    ) -> float:
        """Aggregate a measure over the node and its subtree."""
        total = combine(initial, values.get(node, 0.0))
        for member in self.descendants(node):
            total = combine(total, values.get(member, 0.0))
        return total


class VersionedHierarchy:
    """Versioned hierarchies via per-version parent deltas (DeltaNI-style).

    ``base`` is version 0. :meth:`new_version` derives a child version;
    :meth:`move` / :meth:`insert` / :meth:`remove` edit one version without
    touching the others. Labels per version are materialised lazily.
    """

    def __init__(self, name: str, parent_of: dict[NodeId, NodeId | None]) -> None:
        self.name = name
        self._base = dict(parent_of)
        #: version -> (parent version, delta dict); delta value REMOVED means deleted
        self._versions: dict[int, tuple[int | None, dict[NodeId, Any]]] = {0: (None, {})}
        self._cache: dict[int, HierarchyView] = {}
        self._next_version = 1

    _REMOVED = object()

    @property
    def versions(self) -> list[int]:
        return sorted(self._versions)

    def new_version(self, from_version: int = 0) -> int:
        """Create a new version derived from ``from_version``."""
        if from_version not in self._versions:
            raise GraphEngineError(f"unknown version {from_version}")
        version = self._next_version
        self._next_version += 1
        self._versions[version] = (from_version, {})
        return version

    def _resolved(self, version: int) -> dict[NodeId, NodeId | None]:
        if version not in self._versions:
            raise GraphEngineError(f"unknown version {version}")
        chain: list[dict[NodeId, Any]] = []
        cursor: int | None = version
        while cursor is not None:
            parent_version, delta = self._versions[cursor]
            chain.append(delta)
            cursor = parent_version
        resolved = dict(self._base)
        for delta in reversed(chain):
            for node, parent in delta.items():
                if parent is self._REMOVED:
                    resolved.pop(node, None)
                else:
                    resolved[node] = parent
        return resolved

    def view(self, version: int = 0) -> HierarchyView:
        """The interval-labelled view of one version (cached)."""
        cached = self._cache.get(version)
        if cached is None:
            cached = HierarchyView(f"{self.name}@v{version}", self._resolved(version))
            self._cache[version] = cached
        return cached

    def _edit(self, version: int) -> dict[NodeId, Any]:
        if version not in self._versions:
            raise GraphEngineError(f"unknown version {version}")
        self._cache.pop(version, None)
        return self._versions[version][1]

    def move(self, version: int, node: NodeId, new_parent: NodeId | None) -> None:
        """Re-parent ``node`` within ``version``."""
        resolved = self._resolved(version)
        if node not in resolved:
            raise GraphEngineError(f"unknown node {node!r}")
        if new_parent is not None and new_parent not in resolved:
            raise GraphEngineError(f"unknown parent {new_parent!r}")
        view = self.view(version)
        if new_parent is not None and (
            new_parent == node or view.is_descendant(new_parent, node)
        ):
            raise GraphEngineError("move would create a cycle")
        self._edit(version)[node] = new_parent

    def insert(self, version: int, node: NodeId, parent: NodeId | None) -> None:
        """Add a node to ``version``."""
        resolved = self._resolved(version)
        if node in resolved:
            raise GraphEngineError(f"node {node!r} already exists")
        if parent is not None and parent not in resolved:
            raise GraphEngineError(f"unknown parent {parent!r}")
        self._edit(version)[node] = parent

    def remove(self, version: int, node: NodeId) -> None:
        """Remove a leaf node from ``version``."""
        view = self.view(version)
        if node not in view:
            raise GraphEngineError(f"unknown node {node!r}")
        if view.children(node):
            raise GraphEngineError(f"node {node!r} has children; remove them first")
        self._edit(version)[node] = self._REMOVED

    def diff(self, from_version: int, to_version: int) -> dict[NodeId, tuple[Any, Any]]:
        """Per-node (old parent, new parent) differences between versions."""
        before = self._resolved(from_version)
        after = self._resolved(to_version)
        missing = object()
        changes: dict[NodeId, tuple[Any, Any]] = {}
        for node in set(before) | set(after):
            old = before.get(node, missing)
            new = after.get(node, missing)
            if old is not new and old != new:
                changes[node] = (
                    None if old is missing else old,
                    None if new is missing else new,
                )
        return changes


def descendant_count_via_self_joins(
    parent_of: dict[NodeId, NodeId | None], node: NodeId
) -> int:
    """Baseline for benchmark E11: level-at-a-time recursive expansion,
    the way an application without hierarchy support must do it."""
    children_of: dict[NodeId, list[NodeId]] = {}
    for child, parent in parent_of.items():
        if parent is not None:
            children_of.setdefault(parent, []).append(child)
    frontier = [node]
    count = 0
    while frontier:
        next_frontier: list[NodeId] = []
        for current in frontier:
            for child in children_of.get(current, ()):
                count += 1
                next_frontier.append(child)
        frontier = next_frontier
    return count


def register_hierarchy_functions(database: Any) -> None:
    """Register HIER_* SQL functions resolving catalog hierarchy views."""

    def _view(context: Any, name: str) -> HierarchyView:
        view = context.database.catalog.view(str(name))
        if not isinstance(view, HierarchyView):
            raise GraphEngineError(f"{name!r} is not a hierarchy view")
        return view

    database.functions.register(
        "HIER_DESCENDANT_COUNT",
        lambda context, name, node: _view(context, name).descendant_count(node),
        needs_context=True,
    )
    database.functions.register(
        "HIER_LEVEL",
        lambda context, name, node: _view(context, name).level(node),
        needs_context=True,
    )
    database.functions.register(
        "HIER_IS_DESCENDANT",
        lambda context, name, node, ancestor: _view(context, name).is_descendant(
            node, ancestor
        ),
        needs_context=True,
    )
    database.functions.register(
        "HIER_PARENT",
        lambda context, name, node: _view(context, name).parent(node),
        needs_context=True,
        null_propagates=False,
    )
