"""Time-series analytics: resolution adaptation, comparison, correlation,
transformations (§II.F: "they provide functionality like resolution
adoption, comparison functions, correlation, transformations").
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.engines.timeseries.series import TimeSeries
from repro.errors import TimeSeriesError

_AGGREGATORS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda values: float(np.mean(values)),
    "sum": lambda values: float(np.sum(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
    "first": lambda values: float(values[0]),
    "last": lambda values: float(values[-1]),
    "count": lambda values: float(len(values)),
}


def resample(series: TimeSeries, interval: int, how: str = "mean") -> TimeSeries:
    """Resolution adaptation: aggregate into buckets of ``interval`` seconds.

    Bucket timestamps are the bucket starts (aligned to the epoch grid).
    Empty buckets are omitted.
    """
    if interval <= 0:
        raise TimeSeriesError("interval must be positive")
    aggregator = _AGGREGATORS.get(how)
    if aggregator is None:
        raise TimeSeriesError(f"unknown resample aggregator {how!r}")
    if len(series) == 0:
        return series
    buckets = (series.timestamps // interval) * interval
    out_ts: list[int] = []
    out_vs: list[float] = []
    start = 0
    for index in range(1, len(buckets) + 1):
        if index == len(buckets) or buckets[index] != buckets[start]:
            out_ts.append(int(buckets[start]))
            out_vs.append(aggregator(series.values[start:index]))
            start = index
    return TimeSeries(out_ts, out_vs)


def align(a: TimeSeries, b: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
    """Values of both series at their common timestamps."""
    common, a_index, b_index = np.intersect1d(
        a.timestamps, b.timestamps, return_indices=True
    )
    if len(common) == 0:
        raise TimeSeriesError("series share no timestamps; resample first")
    return a.values[a_index], b.values[b_index]


def correlation(a: TimeSeries, b: TimeSeries) -> float:
    """Pearson correlation over the common timestamps."""
    left, right = align(a, b)
    if len(left) < 2:
        raise TimeSeriesError("need at least two common points")
    left_std = float(np.std(left))
    right_std = float(np.std(right))
    if left_std == 0.0 or right_std == 0.0:
        return 0.0
    return float(np.corrcoef(left, right)[0, 1])


def euclidean_distance(a: TimeSeries, b: TimeSeries) -> float:
    """Comparison function: L2 distance over common timestamps."""
    left, right = align(a, b)
    return float(np.sqrt(np.sum((left - right) ** 2)))


def moving_average(series: TimeSeries, window: int) -> TimeSeries:
    """Simple moving average over the last ``window`` points."""
    if window <= 0:
        raise TimeSeriesError("window must be positive")
    if len(series) < window:
        return TimeSeries([], [])
    kernel = np.ones(window) / window
    smoothed = np.convolve(series.values, kernel, mode="valid")
    return TimeSeries(series.timestamps[window - 1 :], smoothed)


def exponential_smoothing(series: TimeSeries, alpha: float) -> TimeSeries:
    """EWMA transformation."""
    if not 0 < alpha <= 1:
        raise TimeSeriesError("alpha must be in (0, 1]")
    if len(series) == 0:
        return series
    out = np.empty(len(series))
    out[0] = series.values[0]
    for index in range(1, len(series)):
        out[index] = alpha * series.values[index] + (1 - alpha) * out[index - 1]
    return TimeSeries(series.timestamps, out)


def difference(series: TimeSeries) -> TimeSeries:
    """First difference (value deltas at the later timestamp)."""
    if len(series) < 2:
        return TimeSeries([], [])
    return TimeSeries(series.timestamps[1:], np.diff(series.values))


def normalize(series: TimeSeries) -> TimeSeries:
    """Z-score normalisation (constant series map to zeros)."""
    if len(series) == 0:
        return series
    std = float(np.std(series.values))
    if std == 0.0:
        return TimeSeries(series.timestamps, np.zeros(len(series)))
    mean = float(np.mean(series.values))
    return TimeSeries(series.timestamps, (series.values - mean) / std)


def interpolate_gaps(series: TimeSeries, interval: int) -> TimeSeries:
    """Fill the regular grid [start, end] by linear interpolation."""
    if len(series) == 0:
        return series
    grid = np.arange(series.start, series.end + 1, interval, dtype=np.int64)
    values = np.interp(grid, series.timestamps, series.values)
    return TimeSeries(grid, values)


def anomalies(series: TimeSeries, window: int = 20, threshold: float = 3.0) -> list[int]:
    """Timestamps whose value deviates > ``threshold`` sigma from the
    trailing-window mean (simple sensor-fault detector for Scenario V.2)."""
    flagged: list[int] = []
    values = series.values
    for index in range(window, len(series)):
        trailing = values[index - window : index]
        std = float(np.std(trailing))
        if std == 0.0:
            continue
        if abs(values[index] - float(np.mean(trailing))) > threshold * std:
            flagged.append(int(series.timestamps[index]))
    return flagged


def seasonal_decompose_strength(series: TimeSeries, period: int) -> float:
    """Crude seasonality strength in [0, 1]: 1 - var(residual)/var(detrended).

    Good enough to verify synthetic seasonal workloads behave as intended.
    """
    if len(series) < 2 * period:
        raise TimeSeriesError("series shorter than two periods")
    values = series.values
    detrended = values - np.convolve(values, np.ones(period) / period, mode="same")
    seasonal = np.array(
        [np.mean(detrended[phase::period]) for phase in range(period)]
    )
    residual = detrended - np.tile(seasonal, math.ceil(len(values) / period))[: len(values)]
    detrended_var = float(np.var(detrended))
    if detrended_var == 0.0:
        return 0.0
    return max(0.0, 1.0 - float(np.var(residual)) / detrended_var)
