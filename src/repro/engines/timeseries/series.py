"""The time-series value type (§II.F).

A :class:`TimeSeries` is a sorted sequence of (epoch-second, float) pairs.
It is the unit the TIMESERIES column type carries, the compression codec
encodes, and the analytics functions operate on.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import TimeSeriesError


class TimeSeries:
    """Immutable sorted (timestamp, value) series."""

    __slots__ = ("timestamps", "values")

    def __init__(self, timestamps: Iterable[int], values: Iterable[float]) -> None:
        ts = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=np.int64)
        vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
        if len(ts) != len(vs):
            raise TimeSeriesError(
                f"timestamps ({len(ts)}) and values ({len(vs)}) differ in length"
            )
        if len(ts) > 1:
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            vs = vs[order]
            if (np.diff(ts) == 0).any():
                raise TimeSeriesError("duplicate timestamps")
        self.timestamps = ts
        self.values = vs

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        for ts, value in zip(self.timestamps, self.values):
            yield int(ts), float(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimeSeries)
            and np.array_equal(self.timestamps, other.timestamps)
            and np.allclose(self.values, other.values, equal_nan=True)
        )

    def __repr__(self) -> str:
        if len(self) == 0:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries({len(self)} points, "
            f"[{int(self.timestamps[0])}..{int(self.timestamps[-1])}])"
        )

    # -- accessors -----------------------------------------------------------

    @property
    def start(self) -> int:
        if len(self) == 0:
            raise TimeSeriesError("empty series has no start")
        return int(self.timestamps[0])

    @property
    def end(self) -> int:
        if len(self) == 0:
            raise TimeSeriesError("empty series has no end")
        return int(self.timestamps[-1])

    def value_at(self, timestamp: int) -> float | None:
        """Exact-timestamp lookup."""
        index = np.searchsorted(self.timestamps, timestamp)
        if index < len(self) and self.timestamps[index] == timestamp:
            return float(self.values[index])
        return None

    def slice(self, start: int | None = None, end: int | None = None) -> "TimeSeries":
        """Sub-series with start <= t <= end."""
        lo = 0 if start is None else int(np.searchsorted(self.timestamps, start, "left"))
        hi = len(self) if end is None else int(np.searchsorted(self.timestamps, end, "right"))
        return TimeSeries(self.timestamps[lo:hi], self.values[lo:hi])

    def raw_bytes(self) -> int:
        """Uncompressed footprint (8B timestamp + 8B value per point)."""
        return len(self) * 16
