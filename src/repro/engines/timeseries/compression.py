"""Time-series compression: delta-of-delta timestamps + quantised values.

Section II.F claims "powerful compression mechanisms, which is especially
useful for sensor data" with "large compression factors". The codec here
follows the Gorilla/Facebook family of ideas in byte-granular form:

* timestamps: first value raw, then zig-zag varint *delta-of-delta* —
  perfectly regular sensor intervals cost 1 byte per point,
* values: quantised to a configurable decimal scale, then zig-zag varint
  deltas with run-length folding of zero deltas — flat or slowly-moving
  sensor signals compress drastically.

The format is self-describing; :func:`decode` restores the series exactly
(up to the declared quantisation).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.engines.timeseries.series import TimeSeries
from repro.errors import TimeSeriesError

_MAGIC = b"TS1"


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode(series: TimeSeries, value_scale: int = 3) -> bytes:
    """Compress a series; ``value_scale`` is the decimal precision kept."""
    if value_scale < 0 or value_scale > 9:
        raise TimeSeriesError("value_scale must be in [0, 9]")
    out = bytearray()
    out += _MAGIC
    out.append(value_scale)
    out += struct.pack("<I", len(series))
    if len(series) == 0:
        return bytes(out)

    timestamps = series.timestamps
    out += struct.pack("<q", int(timestamps[0]))
    previous_delta = 0
    for index in range(1, len(timestamps)):
        delta = int(timestamps[index] - timestamps[index - 1])
        _write_varint(out, _zigzag(delta - previous_delta))
        previous_delta = delta

    factor = 10**value_scale
    quantised = np.rint(series.values * factor).astype(np.int64)
    out += struct.pack("<q", int(quantised[0]))
    # zero-delta runs fold into (0, run_length) pairs
    index = 1
    n = len(quantised)
    while index < n:
        delta = int(quantised[index] - quantised[index - 1])
        if delta == 0:
            run = 1
            while index + run < n and quantised[index + run] == quantised[index]:
                run += 1
            _write_varint(out, _zigzag(0))
            _write_varint(out, run)
            index += run
        else:
            _write_varint(out, _zigzag(delta))
            index += 1
    return bytes(out)


def decode(data: bytes) -> TimeSeries:
    """Restore a series compressed by :func:`encode`."""
    if data[:3] != _MAGIC:
        raise TimeSeriesError("bad time-series blob (magic mismatch)")
    value_scale = data[3]
    (count,) = struct.unpack_from("<I", data, 4)
    offset = 8
    if count == 0:
        return TimeSeries([], [])

    timestamps = np.empty(count, dtype=np.int64)
    (timestamps[0],) = struct.unpack_from("<q", data, offset)
    offset += 8
    previous_delta = 0
    for index in range(1, count):
        encoded, offset = _read_varint(data, offset)
        previous_delta += _unzigzag(encoded)
        timestamps[index] = timestamps[index - 1] + previous_delta

    factor = 10**value_scale
    quantised = np.empty(count, dtype=np.int64)
    (quantised[0],) = struct.unpack_from("<q", data, offset)
    offset += 8
    index = 1
    while index < count:
        encoded, offset = _read_varint(data, offset)
        delta = _unzigzag(encoded)
        if delta == 0:
            run, offset = _read_varint(data, offset)
            quantised[index : index + run] = quantised[index - 1]
            index += run
        else:
            quantised[index] = quantised[index - 1] + delta
            index += 1
    return TimeSeries(timestamps, quantised.astype(np.float64) / factor)


def compression_ratio(series: TimeSeries, value_scale: int = 3) -> float:
    """raw bytes / compressed bytes."""
    blob = encode(series, value_scale)
    return series.raw_bytes() / max(len(blob), 1)
