"""Per-operator query profiling: ``EXPLAIN``, but with measured numbers.

The vectorised executor (:mod:`repro.sql.executor`) consults
``context.profiler`` around every plan-node dispatch; when a
:class:`QueryProfiler` is installed it records each operator's wall time
and output row count, preserving the plan tree's shape. The result is a
:class:`Profile` — the plan tree annotated with rows and milliseconds per
node — surfaced as ``session.profile(sql)`` /
``database.profile(sql)``. This is the measurement substrate the
ROADMAP's "as fast as the hardware allows" goal is judged against: every
later optimisation PR can show *which operator* got faster.

When no profiler is installed the executor's guard is a single attribute
read and ``is None`` branch per plan node (not per row); benchmark E21
bounds the cost.

**Profiler as feedback source:** each :class:`OperatorProfile` also
captures the plan node's cardinality ``signature`` (when the planner
assigned one), so a finished profile tree can be replayed into the
optimizer's feedback store —
``database.feedback.harvest(profile.root)`` records every signed
operator's measured row count exactly as live execution would have. The
profiler thereby closes the adaptive loop from the observability side:
measure once with ``session.profile(sql)``, and subsequent plans of the
same query shapes use the observed cardinalities (see
``docs/OPTIMIZER.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.result import QueryResult
    from repro.sql.planner import PlanNode


def describe_node(node: "PlanNode") -> str:
    """A one-line operator label, mirroring ``planner.explain``."""
    from repro.sql import planner

    if isinstance(node, planner.ScanNode):
        label = f"Scan {node.table or '<virtual>'} as {node.alias}" if node.table else "Scan <virtual row>"
        if node.predicate is not None:
            label += f" filter={node.predicate}"
        return label
    if isinstance(node, planner.SubqueryScanNode):
        return f"SubqueryScan as {node.alias}"
    if isinstance(node, planner.FilterNode):
        return f"Filter {node.predicate}"
    if isinstance(node, planner.JoinNode):
        keys = ", ".join(f"{l}={r}" for l, r in node.equi)
        return f"Join[{node.kind}] {keys}".rstrip()
    if isinstance(node, planner.AggregateNode):
        groups = ", ".join(name for _, name in node.group)
        aggs = ", ".join(str(call) for call, _ in node.aggregates)
        return f"Aggregate group=[{groups}] aggs=[{aggs}]"
    if isinstance(node, planner.ProjectNode):
        names = ", ".join(name for _, name in node.items)
        return f"Project [{names}]"
    if isinstance(node, planner.SortNode):
        keys = ", ".join(f"{name} {'ASC' if asc else 'DESC'}" for name, asc in node.keys)
        return f"Sort [{keys}]"
    if isinstance(node, planner.DistinctNode):
        return "Distinct"
    if isinstance(node, planner.LimitNode):
        return f"Limit {node.limit} offset {node.offset}"
    if isinstance(node, planner.UnionNode):
        return f"Union[{'distinct' if node.distinct else 'all'}]"
    return type(node).__name__


@dataclass
class OperatorProfile:
    """One executed plan node: what it was, produced, and cost."""

    operator: str                 # plan-node class name, e.g. "JoinNode"
    label: str                    # human-readable operator description
    rows: int = 0                 # output row count
    wall_seconds: float = 0.0     # inclusive of children
    children: list["OperatorProfile"] = field(default_factory=list)
    #: the node's cardinality-feedback signature, when the planner signed
    #: it — lets ``CardinalityFeedback.harvest`` replay this profile
    signature: str | None = None

    @property
    def wall_ms(self) -> float:
        return self.wall_seconds * 1000.0

    @property
    def self_seconds(self) -> float:
        """Wall time minus the children's wall time (the operator's own work)."""
        return max(0.0, self.wall_seconds - sum(c.wall_seconds for c in self.children))

    def walk(self) -> Iterator["OperatorProfile"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "label": self.label,
            "rows": self.rows,
            "wall_ms": round(self.wall_ms, 6),
            "self_ms": round(self.self_seconds * 1000.0, 6),
            "children": [child.as_dict() for child in self.children],
        }


class _OperatorFrame:
    """Context manager timing one node and linking it to its parent."""

    __slots__ = ("_profiler", "profile", "_started")

    def __init__(self, profiler: "QueryProfiler", profile: OperatorProfile) -> None:
        self._profiler = profiler
        self.profile = profile
        self._started = 0.0

    def __enter__(self) -> OperatorProfile:
        self._started = perf_counter()
        return self.profile

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.profile.wall_seconds = perf_counter() - self._started
        self._profiler._pop(self.profile)


class QueryProfiler:
    """Collects one :class:`OperatorProfile` tree during plan execution."""

    def __init__(self) -> None:
        self.roots: list[OperatorProfile] = []
        self._stack: list[OperatorProfile] = []

    def operator(self, node: "PlanNode") -> _OperatorFrame:
        profile = OperatorProfile(
            type(node).__name__,
            describe_node(node),
            signature=getattr(node, "signature", None),
        )
        if self._stack:
            self._stack[-1].children.append(profile)
        else:
            self.roots.append(profile)
        self._stack.append(profile)
        return _OperatorFrame(self, profile)

    def _pop(self, profile: OperatorProfile) -> None:
        if self._stack and self._stack[-1] is profile:
            self._stack.pop()

    @property
    def root(self) -> OperatorProfile | None:
        return self.roots[0] if self.roots else None


@dataclass
class Profile:
    """The result of ``session.profile(sql)``: annotated plan + result."""

    sql: str
    root: OperatorProfile
    result: "QueryResult"
    #: execution-context counters (rows_scanned, partitions_pruned, ...)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def rows(self) -> list[list[Any]]:
        return self.result.rows

    def nodes(self) -> list[OperatorProfile]:
        """All operator profiles, pre-order."""
        return list(self.root.walk())

    def node(self, operator: str) -> OperatorProfile:
        """The first profile of the given plan-node class name."""
        for profile in self.root.walk():
            if profile.operator == operator:
                return profile
        raise KeyError(f"no {operator!r} in this profile")

    def total_seconds(self) -> float:
        return self.root.wall_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "sql": self.sql,
            "plan": self.root.as_dict(),
            "metrics": dict(self.metrics),
            "total_ms": round(self.root.wall_ms, 6),
        }

    def render(self) -> str:
        """Indented plan tree with rows and milliseconds per operator."""
        lines = [f"-- profile: {self.sql.strip()}"]

        def visit(profile: OperatorProfile, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{profile.label}"
                f"  rows={profile.rows} time={profile.wall_ms:.3f}ms"
                f" self={profile.self_seconds * 1000.0:.3f}ms"
            )
            for child in profile.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        if self.metrics:
            counters = " ".join(f"{k}={v:g}" for k, v in sorted(self.metrics.items()))
            lines.append(f"-- counters: {counters}")
        return "\n".join(lines)
