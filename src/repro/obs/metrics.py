"""Counters, gauges, and fixed-bucket histograms behind one registry.

The paper's scale-out extension names a statistics service (v2stats,
Figure 3) that "can access statistical information about the current
cluster usage in order to identify hotspots or to monitor performance
goals". This module is the substrate every instrumented layer feeds: one
:class:`MetricsRegistry` keyed by ``(metric name, sorted label items)``,
with a process-global default (see :mod:`repro.obs.runtime`) plus freely
injectable instances.

Histograms use fixed upper-bound buckets with ``value <= bound``
semantics (a value equal to a bucket edge lands in that bucket); the
default edges cover sub-millisecond to ten-second latencies.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

#: default histogram bucket upper bounds, in seconds
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def summary(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, active nodes, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def summary(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with ``value <= upper_bound`` semantics.

    ``bucket_counts[i]`` counts observations ``v <= buckets[i]`` (and
    greater than the previous bound); observations above the last bound
    land in the overflow slot ``bucket_counts[-1]``.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from bucket counts (upper-bound biased)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max if self.max is not None else self.buckets[-1]
        return self.max if self.max is not None else self.buckets[-1]

    def summary(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": dict(zip([*self.buckets, float("inf")], self.bucket_counts)),
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """All metrics of one process (or one injected scope)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, LabelKey], Metric] = {}

    # -- metric accessors (create on first touch) ---------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[2], buckets or DEFAULT_BUCKETS)
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def _get(self, kind: str, cls: type, name: str, labels: dict[str, Any]) -> Any:
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[2])
            self._metrics[key] = metric
        return metric

    # -- introspection ------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Metric | None:
        """Look up an existing metric of any kind, or ``None``."""
        key = _label_key(labels)
        for kind in ("counter", "gauge", "histogram"):
            metric = self._metrics.get((kind, name, key))
            if metric is not None:
                return metric
        return None

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self, prefix: str = "") -> dict[str, dict[str, Any]]:
        """Summaries keyed by ``name{label=value,...}``, sorted by name."""
        out: dict[str, dict[str, Any]] = {}
        for (_kind, name, labels), metric in sorted(self._metrics.items()):
            if not name.startswith(prefix):
                continue
            rendered = ",".join(f"{key}={value}" for key, value in labels)
            out[f"{name}{{{rendered}}}" if rendered else name] = metric.summary()
        return out

    def render_text(self, prefix: str = "") -> str:
        """One metric per line, for dumps and README examples."""
        lines: list[str] = []
        for full_name, summary in self.as_dict(prefix).items():
            if summary["type"] == "histogram":
                lines.append(
                    f"{full_name}  count={summary['count']} sum={summary['sum']:.6f}"
                    f" mean={summary['mean']:.6f} p95={summary['p95']:.6f}"
                )
            else:
                lines.append(f"{full_name}  {summary['value']:g}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._metrics.clear()
