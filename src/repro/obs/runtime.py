"""Global observability state: the enabled flag and installed collectors.

Instrumentation call sites throughout the codebase go through the helpers
in :mod:`repro.obs`; those helpers consult this module's ``_enabled`` flag
first and return immediately when observability is off. The flag flips on
only when a collector is installed (:func:`enable`), so an uninstrumented
process pays a single module-global read plus a branch per call site —
benchmark E21 (``benchmarks/bench_obs_overhead.py``) verifies the cost.

The default registry and tracer are process-global singletons, created
lazily. Code that wants isolated collectors (tests, multi-tenant setups)
constructs its own :class:`~repro.obs.metrics.MetricsRegistry` /
:class:`~repro.obs.tracing.Tracer` and passes them to :func:`enable`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer

_enabled: bool = False
_registry: "MetricsRegistry | None" = None
_tracer: "Tracer | None" = None


def is_enabled() -> bool:
    """Is any collector installed? (The hot-path guard.)"""
    return _enabled


def registry() -> "MetricsRegistry":
    """The current metrics registry (created lazily)."""
    global _registry
    if _registry is None:
        from repro.obs.metrics import MetricsRegistry

        _registry = MetricsRegistry()
    return _registry


def tracer() -> "Tracer":
    """The current tracer (created lazily)."""
    global _tracer
    if _tracer is None:
        from repro.obs.tracing import Tracer

        _tracer = Tracer()
    return _tracer


def enable(
    metrics: "MetricsRegistry | None" = None,
    traces: "Tracer | None" = None,
) -> tuple["MetricsRegistry", "Tracer"]:
    """Install collectors and turn instrumentation on.

    Passing explicit instances replaces the current defaults; omitting
    them keeps (or lazily creates) the process-global ones. Returns the
    now-active ``(registry, tracer)`` pair.
    """
    global _enabled, _registry, _tracer
    if metrics is not None:
        _registry = metrics
    if traces is not None:
        _tracer = traces
    _enabled = True
    return registry(), tracer()


def disable() -> None:
    """Turn instrumentation off; collected data stays readable."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Disable and drop all collected state (test isolation)."""
    global _enabled, _registry, _tracer
    _enabled = False
    if _registry is not None:
        _registry.reset()
    if _tracer is not None:
        _tracer.reset()
    _registry = None
    _tracer = None
