"""Nested spans over an in-memory ring buffer.

A :class:`Tracer` produces spans (``with tracer.span("sql.execute",
table="orders"): ...``) carrying wall-time, free-form tags, and a link to
the enclosing span. Finished spans land in a bounded ring buffer (oldest
evicted first) and can be dumped as JSON or rendered as an indented text
tree — the "single administration experience" view of where time went
when a request crossed the ecosystem's layers (core SQL, delta merge,
SOE services, aging, federation).

The tracer keeps one active-span stack; like the rest of the
reproduction it models a single-threaded node, so no thread-local
bookkeeping is attempted.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One timed section; ``parent_id`` links it into the request tree."""

    span_id: int
    parent_id: int | None
    name: str
    tags: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0       # seconds since the tracer's epoch
    duration_seconds: float = 0.0
    _perf_start: float = field(default=0.0, repr=False)

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": self.tags,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
        }


class _ActiveSpan:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def tag(self, **tags: Any) -> "_ActiveSpan":
        """Attach tags after the span started (e.g. result sizes)."""
        self.span.tags.update(tags)
        return self

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class Tracer:
    """Produces nested spans; retains the most recent ``capacity`` ones."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._epoch = time.perf_counter()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_id = 1

    # -- producing spans ----------------------------------------------------

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span under the currently active one (if any)."""
        now = time.perf_counter()
        record = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            tags=tags,
            started_at=now - self._epoch,
            _perf_start=now,
        )
        self._next_id += 1
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def record(self, name: str, duration_seconds: float, **tags: Any) -> Span:
        """Append an already-measured section as a leaf span (no nesting)."""
        now = time.perf_counter()
        record = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            tags=tags,
            started_at=now - self._epoch - duration_seconds,
            duration_seconds=duration_seconds,
        )
        self._next_id += 1
        self._finished.append(record)
        return record

    def _finish(self, span: Span) -> None:
        span.duration_seconds = time.perf_counter() - span._perf_start
        # tolerate exits out of order (a caller kept the manager around)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        self._finished.append(span)

    # -- reading back -------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by the ring buffer)."""
        return list(self._finished)

    def find(self, name: str) -> list[Span]:
        return [span for span in self._finished if span.name == name]

    def __iter__(self) -> Iterator[Span]:
        return iter(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def as_json(self, indent: int | None = None) -> str:
        """The ring buffer as a JSON array (oldest first)."""
        return json.dumps([span.as_dict() for span in self._finished], indent=indent, default=str)

    def render(self) -> str:
        """Indented text tree of the retained spans.

        Spans whose parent was evicted from the ring buffer (or never
        existed) are shown as roots. Children print in start order.
        """
        spans = sorted(self._finished, key=lambda s: (s.started_at, s.span_id))
        present = {span.span_id for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in present else None
            children.setdefault(parent, []).append(span)

        lines: list[str] = []

        def visit(span: Span, depth: int) -> None:
            tags = " ".join(f"{key}={value}" for key, value in span.tags.items())
            suffix = f"  [{tags}]" if tags else ""
            lines.append(
                f"{'  ' * depth}{span.name}  {span.duration_seconds * 1000:.3f} ms{suffix}"
            )
            for child in children.get(span.span_id, []):
                visit(child, depth + 1)

        for root in children.get(None, []):
            visit(root, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self._next_id = 1
        self._epoch = time.perf_counter()
