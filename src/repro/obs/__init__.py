"""repro.obs — the unified observability layer.

One subsystem for the three ways the reproduction *sees itself*:

* **metrics** — counters, gauges, fixed-bucket histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` (process-global default,
  injectable instances), feeding the SOE's v2stats service (Figure 3);
* **tracing** — nested wall-time spans with tags and parent links in a
  ring buffer (:class:`~repro.obs.tracing.Tracer`), dumpable as JSON or
  a rendered text tree;
* **profiling** — per-operator row counts and timings for SQL queries
  (:class:`~repro.obs.profiler.Profile`), surfaced as
  ``session.profile(sql)``.

Instrumented call sites use the module-level helpers below
(:func:`count`, :func:`observe`, :func:`span`, :func:`latency`,
:func:`timed`). All of them except :func:`timed` are near-zero-cost
no-ops until :func:`enable` installs collectors — the guard is one
module-global read. :func:`timed` always measures (its ``.seconds`` is
used for *functional* wall-time accounting, e.g. merge statistics and
distributed plan costs) but only reports to collectors when enabled.

    from repro import obs

    registry, tracer = obs.enable()
    ...                             # run instrumented work
    print(registry.render_text())   # metrics dump
    print(tracer.render())          # span tree
    obs.reset()                     # back to a silent process
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.obs import runtime
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import OperatorProfile, Profile, QueryProfiler
from repro.obs.runtime import disable, enable, is_enabled, registry, reset, tracer
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorProfile",
    "Profile",
    "QueryProfiler",
    "Span",
    "Tracer",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "is_enabled",
    "latency",
    "metrics_dump",
    "observe",
    "registry",
    "render_metrics",
    "reset",
    "span",
    "timed",
    "tracer",
]


def enabled() -> bool:
    """Alias of :func:`is_enabled` (reads better at call sites)."""
    return runtime._enabled


# --------------------------------------------------------------------------
# cheap call-site helpers (no-ops while disabled)
# --------------------------------------------------------------------------


def count(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a counter — no-op unless collectors are installed."""
    if runtime._enabled:
        runtime.registry().counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge — no-op unless collectors are installed."""
    if runtime._enabled:
        runtime.registry().gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation — no-op unless enabled."""
    if runtime._enabled:
        runtime.registry().histogram(name, **labels).observe(value)


class _NoopSpan:
    """Shared do-nothing context manager for disabled instrumentation."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


def span(name: str, **tags: Any):
    """A tracer span when enabled, a shared no-op otherwise."""
    if runtime._enabled:
        return runtime.tracer().span(name, **tags)
    return _NOOP_SPAN


class _Timed:
    """Measures a section; optionally reports histogram + span on exit."""

    __slots__ = ("name", "labels", "seconds", "_started", "_report")

    def __init__(self, name: str, labels: dict[str, Any], report: bool) -> None:
        self.name = name
        self.labels = labels
        self.seconds = 0.0
        self._started = 0.0
        self._report = report

    def __enter__(self) -> "_Timed":
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.seconds = perf_counter() - self._started
        if self._report and runtime._enabled:
            runtime.registry().histogram(self.name, **self.labels).observe(self.seconds)
            runtime.tracer().record(self.name, self.seconds, **self.labels)


def timed(name: str, **labels: Any) -> _Timed:
    """Always-measuring stopwatch; reports to collectors when enabled.

    Use where the elapsed time is *functionally* needed (``.seconds``),
    so wall-time accounting and observability can't drift apart.
    """
    return _Timed(name, labels, report=True)


def latency(name: str, **labels: Any):
    """Histogram + span timing when enabled, shared no-op otherwise.

    Use on hot paths where time is only needed for observability.
    """
    if runtime._enabled:
        return _Timed(name, labels, report=True)
    return _NOOP_SPAN


# --------------------------------------------------------------------------
# dumps
# --------------------------------------------------------------------------


def metrics_dump(prefix: str = "") -> dict[str, dict[str, Any]]:
    """Summaries of every collected metric (optionally name-filtered)."""
    return runtime.registry().as_dict(prefix)


def render_metrics(prefix: str = "") -> str:
    """Text dump of every collected metric, one per line."""
    return runtime.registry().render_text(prefix)
