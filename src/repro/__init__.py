"""repro — a web-scale data management ecosystem, in miniature.

Reproduction of Färber, Dees, Weidner, Bäuerle, Lehner: *Towards a
Web-scale Data Management Ecosystem Demonstrated by SAP HANA* (ICDE 2015).

Public entry points:

* :class:`repro.core.database.Database` — one in-memory HTAP instance
  (column store, MVCC transactions, SQL, specialised engines).
* :class:`repro.core.session.Session` — connection-like statement
  execution with transaction control.
* :class:`repro.core.ecosystem.Ecosystem` — the orchestrated whole:
  HANA core + SOE scale-out cluster + Hadoop substrate + federation +
  streaming, behind one catalog and one admin surface.
"""

from repro.core.database import Database
from repro.core.ecosystem import Ecosystem
from repro.core.result import QueryResult
from repro.core.session import Session

__all__ = ["Database", "Ecosystem", "Session", "QueryResult"]

__version__ = "1.0.0"
