"""JSON document support: path queries and the materialised join index.

Section II.H of the paper introduces a ``DOCUMENT`` column type whose
content "is structured in an arbitrary JSON format" and is "queried by an
XQuery like language which is embedded into the SQL statement". This module
provides

* :func:`parse_path` / :class:`DocPath` — a JSONPath-flavoured path
  language (``$.items[*].price``, ``$.customer.name``) usable standalone
  and through the SQL functions ``DOC_EXTRACT`` / ``DOC_MATCH``;
* :class:`DocumentJoinIndex` — the paper's "materialized index on top of
  the relational data": header/item/sub-item tables whose rows are always
  written together can be mirrored into one JSON object per header so
  whole-object retrieval becomes a single lookup.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import SchemaError, SqlSyntaxError

_TOKEN = re.compile(
    r"""
    \.(?P<field>[A-Za-z_][A-Za-z0-9_]*)      # .field
  | \[(?P<index>-?\d+)\]                       # [3]
  | \[(?P<star>\*)\]                           # [*]
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class PathStep:
    """One step of a document path: a field, an index, or a wildcard."""

    kind: str  # "field" | "index" | "star"
    value: Any = None


class DocPath:
    """A compiled document path; apply with :meth:`extract`."""

    def __init__(self, text: str, steps: Sequence[PathStep]) -> None:
        self.text = text
        self.steps = list(steps)

    def __repr__(self) -> str:
        return f"DocPath({self.text!r})"

    def extract(self, document: Any) -> list[Any]:
        """All values the path selects (wildcards may yield many)."""
        current = [document]
        for step in self.steps:
            next_values: list[Any] = []
            for node in current:
                if step.kind == "field":
                    if isinstance(node, dict) and step.value in node:
                        next_values.append(node[step.value])
                elif step.kind == "index":
                    if isinstance(node, list) and -len(node) <= step.value < len(node):
                        next_values.append(node[step.value])
                else:  # star
                    if isinstance(node, list):
                        next_values.extend(node)
                    elif isinstance(node, dict):
                        next_values.extend(node.values())
            current = next_values
        return current

    def first(self, document: Any) -> Any:
        """First selected value or ``None``."""
        values = self.extract(document)
        return values[0] if values else None


def parse_path(text: str) -> DocPath:
    """Compile ``$.a.b[0].c`` / ``$.items[*]`` into a :class:`DocPath`."""
    stripped = text.strip()
    if not stripped.startswith("$"):
        raise SqlSyntaxError(f"document path must start with '$': {text!r}")
    steps: list[PathStep] = []
    position = 1
    while position < len(stripped):
        match = _TOKEN.match(stripped, position)
        if match is None:
            raise SqlSyntaxError(f"bad document path near {stripped[position:]!r}")
        if match.group("field") is not None:
            steps.append(PathStep("field", match.group("field")))
        elif match.group("index") is not None:
            steps.append(PathStep("index", int(match.group("index"))))
        else:
            steps.append(PathStep("star"))
        position = match.end()
    return DocPath(stripped, steps)


def load_document(value: Any) -> Any:
    """Decode a stored document cell (canonical JSON text) to objects."""
    if value is None:
        return None
    if isinstance(value, str):
        return json.loads(value)
    return value


def doc_extract(value: Any, path_text: str) -> Any:
    """SQL scalar function ``DOC_EXTRACT(doc, path)`` → first match."""
    document = load_document(value)
    if document is None:
        return None
    return parse_path(path_text).first(document)


def doc_extract_all(value: Any, path_text: str) -> list[Any]:
    """SQL function ``DOC_EXTRACT_ALL(doc, path)`` → all matches."""
    document = load_document(value)
    if document is None:
        return []
    return parse_path(path_text).extract(document)


def doc_match(value: Any, path_text: str, expected: Any) -> bool:
    """SQL predicate ``DOC_MATCH(doc, path, literal)``.

    True when *any* value selected by the path equals ``expected``.
    """
    return any(found == expected for found in doc_extract_all(value, path_text))


class DocumentJoinIndex:
    """Materialised header→item→sub-item documents (Section II.H).

    Given three levels with 1:N cardinality between neighbours and the
    application guarantee that corresponding entries are written together,
    the whole object is stored as one JSON document keyed by the header
    key — "a kind of materialized join index ... transparently exploited by
    the retrieval process".
    """

    def __init__(
        self,
        header_key: str,
        item_parent_key: str | None = None,
        subitem_parent_key: str | None = None,
        item_field: str = "items",
        subitem_field: str = "subitems",
    ) -> None:
        self.header_key = header_key
        self.item_parent_key = item_parent_key or header_key
        self.subitem_parent_key = subitem_parent_key
        self.item_field = item_field
        self.subitem_field = subitem_field
        self._documents: dict[Any, dict[str, Any]] = {}
        self.lookups = 0
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._documents)

    def build(
        self,
        headers: Iterable[dict[str, Any]],
        items: Iterable[dict[str, Any]] = (),
        subitems: Iterable[dict[str, Any]] = (),
        item_key: str | None = None,
    ) -> None:
        """(Re)build all documents from row dictionaries.

        ``item_key`` names the item column sub-items reference; required
        when sub-items are supplied.
        """
        self.rebuilds += 1
        self._documents = {}
        for header in headers:
            key = header.get(self.header_key)
            if key is None:
                raise SchemaError(f"header row missing key {self.header_key!r}")
            document = dict(header)
            document[self.item_field] = []
            self._documents[key] = document

        items_by_id: dict[Any, dict[str, Any]] = {}
        for item in items:
            parent = item.get(self.item_parent_key)
            if parent not in self._documents:
                raise SchemaError(f"item references unknown header {parent!r}")
            entry = dict(item)
            entry[self.subitem_field] = []
            self._documents[parent][self.item_field].append(entry)
            if item_key is not None:
                items_by_id[item.get(item_key)] = entry

        for subitem in subitems:
            if self.subitem_parent_key is None or item_key is None:
                raise SchemaError("sub-items supplied without parent key configuration")
            parent = subitem.get(self.subitem_parent_key)
            entry = items_by_id.get(parent)
            if entry is None:
                raise SchemaError(f"sub-item references unknown item {parent!r}")
            entry[self.subitem_field].append(dict(subitem))

    def upsert(self, header: dict[str, Any], items: Sequence[dict[str, Any]] = ()) -> None:
        """Write one complete object (header plus its items) in one go —
        the access pattern the application guarantees."""
        key = header.get(self.header_key)
        if key is None:
            raise SchemaError(f"header row missing key {self.header_key!r}")
        document = dict(header)
        document[self.item_field] = [dict(item) for item in items]
        self._documents[key] = document

    def get(self, key: Any) -> dict[str, Any] | None:
        """Whole-object retrieval: one dictionary lookup."""
        self.lookups += 1
        return self._documents.get(key)

    def scan(self, predicate: Callable[[dict[str, Any]], bool]) -> list[dict[str, Any]]:
        """Filtered scan over materialised documents."""
        return [doc for doc in self._documents.values() if predicate(doc)]
