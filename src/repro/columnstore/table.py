"""The in-memory column table: partitions of main+delta fragments with MVCC.

A :class:`ColumnTable` is the unit the SQL layer, the engines, and the SOE
all operate on. Each horizontal partition pairs

* per-column :class:`~repro.columnstore.column.MainColumn` /
  :class:`~repro.columnstore.column.DeltaColumn` fragments, and
* two MVCC stamp vectors (``created`` / ``deleted``) spanning main+delta.

Writes are append-only: an UPDATE is a delete of the old version plus an
insert of the new one; the delta merge (:mod:`repro.columnstore.merge`)
compacts committed state into a fresh main fragment.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.columnstore.column import DeltaColumn, MainColumn
from repro.columnstore.partition import PartitionSpec, SinglePartition
from repro.core.schema import ColumnSpec, TableSchema
from repro.core.types import DataType
from repro.errors import (
    ColumnNotFoundError,
    SchemaError,
    StorageError,
    WriteConflictError,
)
from repro.transaction.manager import Transaction
from repro.transaction.mvcc import INF_CID, visible_mask
from repro.util.arrays import GrowableInt64

#: Events delivered to table change listeners.
EVENT_INSERT = "insert"
EVENT_DELETE = "delete"

ChangeListener = Callable[[str, "TablePartition", list[int], list[list[Any]]], None]


class TablePartition:
    """One horizontal partition: fragments + MVCC stamps."""

    def __init__(
        self,
        schema: TableSchema,
        name: str,
        sorted_dictionaries: bool = True,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.schema = schema
        self.name = name
        self.sorted_dictionaries = sorted_dictionaries
        self.metadata: dict[str, Any] = metadata or {}
        #: storage tier: "hot" (in-memory) or "extended" (file-backed)
        self.tier = "hot"
        from repro.columnstore.dictionary import AppendDictionary

        self.main: dict[str, MainColumn] = {
            spec.name.lower(): MainColumn(
                spec.dtype,
                dictionary=None if sorted_dictionaries else AppendDictionary(),
            )
            for spec in schema.columns
        }
        self.delta: dict[str, DeltaColumn] = {
            spec.name.lower(): DeltaColumn(spec.dtype) for spec in schema.columns
        }
        self.created = GrowableInt64()
        self.deleted = GrowableInt64()
        #: simulated page reads charged when the partition is not hot
        self.cold_reads = 0
        #: extended-storage backing file when evicted (see repro.aging.tiering)
        self.storage_path: str | None = None
        self.is_loaded = True

    # -- sizes ---------------------------------------------------------------

    @property
    def n_main(self) -> int:
        first = next(iter(self.main.values()), None)
        return len(first) if first is not None else 0

    @property
    def n_delta(self) -> int:
        first = next(iter(self.delta.values()), None)
        return len(first) if first is not None else 0

    def __len__(self) -> int:
        return self.n_main + self.n_delta

    # -- schema evolution (flexible tables) -----------------------------------

    def add_column(self, spec: ColumnSpec) -> None:
        """Add a column backfilled with NULLs (flexible tables, §II.H)."""
        key = spec.name.lower()
        if key in self.main:
            return
        null_main = MainColumn.build(
            spec.dtype, [None] * self.n_main, sorted_dictionary=self.sorted_dictionaries
        )
        self.main[key] = null_main
        delta = DeltaColumn(spec.dtype)
        delta.extend([None] * self.n_delta)
        self.delta[key] = delta

    # -- writes ---------------------------------------------------------------

    def insert_row(self, values: Sequence[Any], txn: Transaction) -> int:
        """Append one coerced row to the delta; returns its position."""
        self._touch()
        for spec in self.schema.columns:
            self.delta[spec.name.lower()].append(values[self.schema.position(spec.name)])
        position = self.created.append(txn.stamp)
        self.deleted.append(INF_CID)
        txn.record_insert(self.created, position)
        return position

    def bulk_load(self, rows: Iterable[Sequence[Any]], cid: int) -> int:
        """Load already-committed rows (recovery, merge, data movement)."""
        count = 0
        deltas = [self.delta[spec.name.lower()] for spec in self.schema.columns]
        for row in rows:
            for column, value in zip(deltas, row):
                column.append(value)
            self.created.append(cid)
            self.deleted.append(INF_CID)
            count += 1
        return count

    def mark_deleted(self, position: int, txn: Transaction) -> None:
        """Delete a row version (first-writer-wins conflict detection)."""
        self._touch()
        current = self.deleted[position]
        if current != INF_CID:
            raise WriteConflictError(
                f"row {position} of partition {self.name!r} is already "
                f"deleted or locked by another transaction"
            )
        self.deleted[position] = txn.stamp
        txn.record_delete(self.deleted, position)

    # -- reads ----------------------------------------------------------------

    def visible_positions(self, snapshot_cid: int, own_tid: int = 0) -> np.ndarray:
        """Positions visible under the given snapshot."""
        self._touch()
        mask = visible_mask(self.created.view(), self.deleted.view(), snapshot_cid, own_tid)
        return np.flatnonzero(mask)

    def visible_row_mask(self, snapshot_cid: int, own_tid: int = 0) -> np.ndarray:
        """Boolean visibility mask over all positions."""
        self._touch()
        return visible_mask(self.created.view(), self.deleted.view(), snapshot_cid, own_tid)

    def column_array(self, name: str) -> np.ndarray:
        """Decode a column (main + delta) to an analysis array."""
        self._touch()
        key = name.lower()
        if key not in self.main:
            raise ColumnNotFoundError(self.name, name)
        main = self.main[key].array()
        delta = self.delta[key].array()
        if len(delta) == 0:
            return main
        if len(main) == 0:
            return delta
        if main.dtype != delta.dtype:
            main = main.astype(object) if main.dtype == object or delta.dtype == object else main.astype(np.float64)
            delta = delta.astype(main.dtype)
        return np.concatenate([main, delta])

    def values_at(self, name: str, positions: np.ndarray) -> list[Any]:
        """Exact Python values of a column at the given positions."""
        self._touch()
        key = name.lower()
        if key not in self.main:
            raise ColumnNotFoundError(self.name, name)
        positions = np.asarray(positions, dtype=np.int64)
        n_main = self.n_main
        out: list[Any] = [None] * len(positions)
        in_main = positions < n_main
        main_positions = positions[in_main]
        if len(main_positions):
            decoded = self.main[key].values_at(main_positions)
            for slot, value in zip(np.flatnonzero(in_main), decoded):
                out[slot] = value
        delta_positions = positions[~in_main] - n_main
        if len(delta_positions):
            decoded = self.delta[key].values_at(delta_positions)
            for slot, value in zip(np.flatnonzero(~in_main), decoded):
                out[slot] = value
        return out

    def rows_at(self, positions: np.ndarray, columns: Sequence[str] | None = None) -> list[list[Any]]:
        """Materialise full rows (exact values) at the given positions."""
        names = list(columns) if columns is not None else self.schema.column_names
        per_column = [self.values_at(name, positions) for name in names]
        return [list(row) for row in zip(*per_column)] if per_column and len(positions) else []

    # -- stats / tiering --------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of all fragments."""
        total = sum(column.memory_bytes() for column in self.main.values())
        total += sum(column.memory_bytes() for column in self.delta.values())
        total += len(self.created) * 16
        return total

    def _touch(self) -> None:
        if self.tier != "hot":
            self.cold_reads += 1
            if not self.is_loaded:
                from repro.aging.tiering import reload_partition

                reload_partition(self)


class ColumnTable:
    """A named, partitioned, MVCC-versioned column-store table."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        partitioning: PartitionSpec | None = None,
        flexible: bool = False,
        sorted_dictionaries: bool = True,
    ) -> None:
        self.name = name
        self.schema = schema
        self.partitioning = partitioning or SinglePartition()
        self.flexible = flexible
        self.sorted_dictionaries = sorted_dictionaries
        self.partitions: list[TablePartition] = [
            TablePartition(schema, part_name, sorted_dictionaries)
            for part_name in self.partitioning.partition_names()
        ]
        self._listeners: list[ChangeListener] = []
        #: merge statistics, filled by repro.columnstore.merge
        self.merge_stats: dict[str, Any] = {}

    # -- pickling (physical savepoints, SOFORT-style recovery) ---------------

    def __getstate__(self) -> dict[str, Any]:
        """Listeners are runtime wiring (text indexes etc.), not data."""
        state = dict(self.__dict__)
        state["_listeners"] = []
        return state

    # -- listeners ---------------------------------------------------------------

    def on_change(self, listener: ChangeListener) -> None:
        """Register a committed-change listener (e.g. the text indexer)."""
        self._listeners.append(listener)

    def _notify(
        self, event: str, partition: TablePartition, positions: list[int], rows: list[list[Any]]
    ) -> None:
        for listener in self._listeners:
            listener(event, partition, positions, rows)

    # -- schema (flexible tables) ---------------------------------------------------

    def ensure_columns(self, row: Mapping[str, Any], default_dtype: DataType) -> None:
        """Create columns referenced by ``row`` that do not exist yet.

        This is the flexible-table behaviour of Section II.H: "metadata
        about unknown columns are automatically created as soon as records
        with values for new columns are inserted".
        """
        if not self.flexible:
            unknown = [key for key in row if not self.schema.has_column(key)]
            if unknown:
                raise SchemaError(
                    f"table {self.name!r} is not flexible; unknown columns {unknown}"
                )
            return
        for key in row:
            if not self.schema.has_column(key):
                spec = ColumnSpec(key, default_dtype)
                self.schema.add_column(spec)
                for partition in self.partitions:
                    partition.add_column(spec)

    # -- writes -------------------------------------------------------------------

    def insert(self, row: Sequence[Any] | Mapping[str, Any], txn: Transaction) -> tuple[int, int]:
        """Insert one row; returns ``(partition ordinal, position)``."""
        values = self.schema.coerce_row(row)
        ordinal = self.partitioning.route(values, self.schema)
        partition = self.partitions[ordinal]
        position = partition.insert_row(values, txn)
        txn.log_redo({"op": "insert", "table": self.name, "row": values})
        txn.on_commit(
            lambda _cid, p=partition, pos=position, vals=values: self._notify(
                EVENT_INSERT, p, [pos], [vals]
            )
        )
        return ordinal, position

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]], txn: Transaction) -> int:
        """Insert many rows; returns the count."""
        count = 0
        for row in rows:
            self.insert(row, txn)
            count += 1
        return count

    def delete_at(self, ordinal: int, position: int, txn: Transaction) -> None:
        """Delete the row version at (partition, position)."""
        partition = self.partitions[ordinal]
        row = partition.rows_at(np.asarray([position]))
        partition.mark_deleted(position, txn)
        txn.log_redo({"op": "delete", "table": self.name, "row": row[0]})
        txn.on_commit(
            lambda _cid, p=partition, pos=position, vals=row: self._notify(
                EVENT_DELETE, p, [pos], vals
            )
        )

    def update_at(
        self,
        ordinal: int,
        position: int,
        changes: Mapping[str, Any],
        txn: Transaction,
    ) -> tuple[int, int]:
        """Update = delete old version + insert the changed row."""
        partition = self.partitions[ordinal]
        old_row = partition.rows_at(np.asarray([position]))[0]
        new_row = list(old_row)
        for column_name, value in changes.items():
            new_row[self.schema.position(column_name)] = value
        self.delete_at(ordinal, position, txn)
        return self.insert(new_row, txn)

    # -- reads --------------------------------------------------------------------

    def row_count(self, snapshot_cid: int, own_tid: int = 0) -> int:
        """Visible row count under a snapshot."""
        return sum(
            len(partition.visible_positions(snapshot_cid, own_tid))
            for partition in self.partitions
        )

    def scan_rows(
        self,
        snapshot_cid: int,
        own_tid: int = 0,
        columns: Sequence[str] | None = None,
        partitions: Sequence[int] | None = None,
    ) -> list[list[Any]]:
        """Materialise all visible rows (exact values)."""
        ordinals = list(partitions) if partitions is not None else range(len(self.partitions))
        rows: list[list[Any]] = []
        for ordinal in ordinals:
            partition = self.partitions[ordinal]
            positions = partition.visible_positions(snapshot_cid, own_tid)
            rows.extend(partition.rows_at(positions, columns))
        return rows

    def find_rows(
        self,
        predicate: Callable[[list[Any]], bool],
        snapshot_cid: int,
        own_tid: int = 0,
    ) -> list[tuple[int, int, list[Any]]]:
        """(ordinal, position, row) of visible rows matching ``predicate``.

        A convenience row-at-a-time path for point operations; set scans go
        through the SQL executor's vectorised path instead.
        """
        matches = []
        for ordinal, partition in enumerate(self.partitions):
            positions = partition.visible_positions(snapshot_cid, own_tid)
            rows = partition.rows_at(positions)
            for position, row in zip(positions, rows):
                if predicate(row):
                    matches.append((ordinal, int(position), row))
        return matches

    # -- stats ---------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate total footprint."""
        return sum(partition.memory_bytes() for partition in self.partitions)

    def delta_rows(self) -> int:
        """Rows currently sitting in delta fragments (merge pressure)."""
        return sum(partition.n_delta for partition in self.partitions)

    def statistics(self) -> dict[str, Any]:
        """Monitoring snapshot used by the admin/monitoring surface."""
        return {
            "table": self.name,
            "partitions": len(self.partitions),
            "main_rows": sum(p.n_main for p in self.partitions),
            "delta_rows": self.delta_rows(),
            "memory_bytes": self.memory_bytes(),
            "flexible": self.flexible,
            "columns": len(self.schema.columns),
        }


def require_table(obj: Any) -> ColumnTable:
    """Assert-and-return helper for call sites holding catalog entries."""
    if not isinstance(obj, ColumnTable):
        raise StorageError(f"expected a ColumnTable, got {type(obj).__name__}")
    return obj
