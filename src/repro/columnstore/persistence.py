"""Durability: write-ahead redo log, savepoints, and recovery.

The paper positions HANA as "a fully ACID compliant relational database
system with all the state of the art capabilities like backup, recovery"
(Section II). The reproduction implements the standard scheme:

* every commit appends its redo records to ``redo.log`` (JSON lines,
  flushed before the commit id becomes visible),
* a **savepoint** writes a logical snapshot of all committed data and
  truncates the log,
* **recovery** loads the latest savepoint and replays the log tail.

Redo records are logical (full row payloads), so replay is independent of
physical row positions — merges and compactions never invalidate the log.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
from pathlib import Path
from typing import Any

from repro.errors import PersistenceError

SAVEPOINT_FILE = "savepoint.json"
REDO_FILE = "redo.log"


def _json_default(value: Any) -> Any:
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class PersistenceManager:
    """File-backed durability for one database instance."""

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._redo_path = self.directory / REDO_FILE
        self._savepoint_path = self.directory / SAVEPOINT_FILE
        self._redo_handle = open(self._redo_path, "a", encoding="utf-8")
        self.records_written = 0
        self.savepoints_taken = 0

    # -- redo log ---------------------------------------------------------------

    def write_redo(self, records: list[dict[str, Any]], cid: int) -> None:
        """Append one commit's records; durable before the commit returns."""
        line = json.dumps({"cid": cid, "records": records}, default=_json_default)
        self._redo_handle.write(line + "\n")
        self._redo_handle.flush()
        os.fsync(self._redo_handle.fileno())
        self.records_written += len(records)

    def read_redo(self, after_cid: int = 0) -> list[tuple[int, list[dict[str, Any]]]]:
        """All logged commits with cid > ``after_cid``, in commit order."""
        if not self._redo_path.exists():
            return []
        commits: list[tuple[int, list[dict[str, Any]]]] = []
        with open(self._redo_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # torn tail write: everything after it is not durable
                    break
                if entry["cid"] > after_cid:
                    commits.append((entry["cid"], entry["records"]))
        return commits

    # -- savepoints ---------------------------------------------------------------

    def write_savepoint(self, snapshot: dict[str, Any]) -> None:
        """Atomically persist a logical snapshot and truncate the log."""
        temp_path = self._savepoint_path.with_suffix(".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, default=_json_default)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self._savepoint_path)
        self._redo_handle.close()
        self._redo_handle = open(self._redo_path, "w", encoding="utf-8")
        self.savepoints_taken += 1

    def read_savepoint(self) -> dict[str, Any] | None:
        """The latest savepoint snapshot, if any."""
        if not self._savepoint_path.exists():
            return None
        try:
            with open(self._savepoint_path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"corrupt savepoint: {exc}") from exc

    # -- physical savepoints (SOFORT-style, §IV.A ref [10]) -----------------------

    def write_physical_savepoint(self, tables: dict[str, Any], cid: int) -> None:
        """Persist table objects *physically* (fragments, dictionaries,
        MVCC stamps) instead of logical rows.

        This simulates the SOFORT/NVM design the paper cites: recovery
        re-attaches the data structures instead of replaying work, so
        restart cost is (de)serialisation-bound, not log-replay-bound.
        Atomic via write-to-temp + rename; truncates the redo log like a
        logical savepoint.
        """
        import pickle

        path = self.directory / "savepoint.phys"
        temp_path = path.with_suffix(".tmp")
        with open(temp_path, "wb") as handle:
            pickle.dump({"cid": cid, "tables": tables}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        self._redo_handle.close()
        self._redo_handle = open(self._redo_path, "w", encoding="utf-8")
        self.savepoints_taken += 1

    def read_physical_savepoint(self) -> dict[str, Any] | None:
        """The latest physical snapshot, if any."""
        import pickle

        path = self.directory / "savepoint.phys"
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError) as exc:
            raise PersistenceError(f"corrupt physical savepoint: {exc}") from exc

    def close(self) -> None:
        """Release the log handle."""
        self._redo_handle.close()
