"""Dictionary encoding for column values.

Two dictionary flavours implement the trade-off the paper discusses in
Section III ("maintenance of dictionaries of table columns"):

* :class:`SortedDictionary` — the classical HANA main-fragment dictionary:
  values are kept sorted so that value-id order equals value order, which
  makes range predicates cheap but forces a *resort and remap* when a merge
  introduces values that sort between existing ones.

* :class:`AppendDictionary` — the application-aware variant: when the
  application guarantees that new keys always sort after all existing keys
  (e.g. keys built from context + incrementing counter), the dictionary can
  simply append, keeping existing value ids stable and making the merge
  remap-free. ``stable_order_violations`` counts how often the guarantee
  was broken (the value still lands correctly, order queries fall back to
  sorting on demand).

Both expose the same API: ``encode`` / ``encode_many`` (insert-or-lookup),
``vid_of`` (lookup only), ``value_of`` / ``decode_many``, and range helpers.
NULL is never stored; the fragment uses :data:`~repro.columnstore.compression.NULL_VID`.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Sequence

import numpy as np

from repro.columnstore.compression import NULL_VID


class SortedDictionary:
    """Sorted, deduplicated value dictionary with binary-search lookup."""

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: list[Any] = sorted(set(values))
        self._vid_by_value: dict[Any, int] = {
            value: vid for vid, value in enumerate(self._values)
        }
        #: incremented every time existing value ids had to be remapped
        self.remap_count = 0

    # -- size ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._vid_by_value

    @property
    def values(self) -> list[Any]:
        """The sorted value list (do not mutate)."""
        return self._values

    # -- lookup ---------------------------------------------------------------

    def vid_of(self, value: Any) -> int:
        """Value id of ``value`` or :data:`NULL_VID` when absent."""
        if value is None:
            return NULL_VID
        return self._vid_by_value.get(value, NULL_VID)

    def value_of(self, vid: int) -> Any:
        """Value for ``vid`` (``None`` for :data:`NULL_VID`)."""
        if vid == NULL_VID:
            return None
        return self._values[vid]

    def decode_many(self, vids: np.ndarray) -> list[Any]:
        """Decode a vector of value ids to Python values."""
        values = self._values
        return [None if vid == NULL_VID else values[vid] for vid in vids]

    # -- encoding -------------------------------------------------------------

    def encode(self, value: Any) -> int:
        """Insert-or-lookup a single value; may shift existing ids."""
        remap = self.encode_many([value])
        if remap is not None:
            # The caller of single-value encode (the delta store does not
            # use SortedDictionary) must tolerate remaps; surfaced via count.
            pass
        return self._vid_by_value[value] if value is not None else NULL_VID

    def encode_many(self, values: Sequence[Any]) -> np.ndarray | None:
        """Insert all ``values``; return the old→new vid remap or ``None``.

        When new values sort strictly after every existing value, existing
        ids stay valid and ``None`` is returned (the cheap path the
        application-aware key generation of Section III enables). Otherwise
        the returned int64 array maps old value ids to their new positions
        and the caller must rewrite its encoded vectors.
        """
        fresh = sorted({v for v in values if v is not None and v not in self._vid_by_value})
        if not fresh:
            return None
        if not self._values or fresh[0] > self._values[-1]:
            # pure append: no remap needed
            for value in fresh:
                self._vid_by_value[value] = len(self._values)
                self._values.append(value)
            return None
        old_count = len(self._values)
        merged = sorted(self._values + fresh)
        new_vid_by_value = {value: vid for vid, value in enumerate(merged)}
        remap = np.empty(old_count, dtype=np.int64)
        for old_vid, value in enumerate(self._values):
            remap[old_vid] = new_vid_by_value[value]
        self._values = merged
        self._vid_by_value = new_vid_by_value
        self.remap_count += 1
        return remap

    # -- order / range helpers -------------------------------------------------

    def is_sorted(self) -> bool:
        """Always true for this flavour."""
        return True

    def range_vids(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> tuple[int, int]:
        """Half-open vid interval ``[lo, hi)`` covering the value range.

        Because value order equals vid order, range predicates reduce to a
        vid interval — the key benefit of the sorted dictionary.
        """
        lo = 0
        hi = len(self._values)
        if low is not None:
            side = "left" if low_inclusive else "right"
            lo = bisect.bisect_left(self._values, low) if side == "left" else bisect.bisect_right(self._values, low)
        if high is not None:
            hi = (
                bisect.bisect_right(self._values, high)
                if high_inclusive
                else bisect.bisect_left(self._values, high)
            )
        return lo, hi


class AppendDictionary:
    """Insertion-ordered dictionary: ids are stable, order is not encoded.

    This implements the SOE relaxation (Section IV.A: "compression
    requirements are relaxed ... for resorting the tables during merge")
    and the Section III application-knowledge optimisation: generated keys
    arrive in nearly sorted order, so appending preserves a *stable* sort
    order without ever remapping.
    """

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: list[Any] = []
        self._vid_by_value: dict[Any, int] = {}
        self.remap_count = 0
        #: how many encoded values broke the "new keys sort last" guarantee
        self.stable_order_violations = 0
        for value in values:
            self.encode(value)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._vid_by_value

    @property
    def values(self) -> list[Any]:
        """Values in insertion order (do not mutate)."""
        return self._values

    def vid_of(self, value: Any) -> int:
        if value is None:
            return NULL_VID
        return self._vid_by_value.get(value, NULL_VID)

    def value_of(self, vid: int) -> Any:
        if vid == NULL_VID:
            return None
        return self._values[vid]

    def decode_many(self, vids: np.ndarray) -> list[Any]:
        values = self._values
        return [None if vid == NULL_VID else values[vid] for vid in vids]

    def encode(self, value: Any) -> int:
        """Insert-or-lookup; never remaps existing ids."""
        if value is None:
            return NULL_VID
        vid = self._vid_by_value.get(value)
        if vid is not None:
            return vid
        if self._values and value < self._values[-1]:
            self.stable_order_violations += 1
        vid = len(self._values)
        self._values.append(value)
        self._vid_by_value[value] = vid
        return vid

    def encode_many(self, values: Sequence[Any]) -> None:
        """Insert all values; by construction never returns a remap."""
        for value in values:
            self.encode(value)
        return None

    def is_sorted(self) -> bool:
        """True when insertion order happened to be sorted so far."""
        return self.stable_order_violations == 0

    def range_vids(self, low: Any = None, high: Any = None, **_: Any) -> tuple[int, int]:
        """Range predicates need a scan here; signalled by full interval."""
        return 0, len(self._values)
