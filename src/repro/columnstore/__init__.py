"""The in-memory column store: dictionary encoding, main/delta, merge."""

from repro.columnstore.column import DeltaColumn, MainColumn
from repro.columnstore.dictionary import AppendDictionary, SortedDictionary
from repro.columnstore.merge import MergeStats, merge_partition, merge_table
from repro.columnstore.partition import HashPartitioning, RangePartitioning, SinglePartition
from repro.columnstore.rowstore import RowTable
from repro.columnstore.table import ColumnTable, TablePartition

__all__ = [
    "DeltaColumn", "MainColumn", "AppendDictionary", "SortedDictionary",
    "MergeStats", "merge_partition", "merge_table",
    "HashPartitioning", "RangePartitioning", "SinglePartition",
    "RowTable", "ColumnTable", "TablePartition",
]
