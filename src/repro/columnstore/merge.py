"""The delta merge: fold delta fragments into fresh main fragments.

Section III of the paper describes the core cost driver: "In order to
maintain the sorting of the dictionary within this merge process, the
dictionary must potentially be resorted which forces the references within
the main columns to be updated accordingly". When the application
guarantees append-ordered keys, that remap can be skipped — which this
module measures explicitly (``columns_remapped`` / ``ids_rewritten`` in the
returned :class:`MergeStats`), backing benchmark E3.

Optionally the merge also garbage-collects row versions no snapshot can see
(``compact=True`` with the oldest active snapshot id).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.columnstore.column import DeltaColumn, MainColumn
from repro.columnstore.compression import NULL_VID, choose_encoding
from repro.columnstore.table import ColumnTable, TablePartition
from repro.transaction.mvcc import INF_CID
from repro.util.arrays import GrowableInt64


@dataclass
class MergeStats:
    """What one merge did; aggregated per table."""

    rows_merged: int = 0
    rows_compacted: int = 0
    columns_processed: int = 0
    columns_remapped: int = 0
    ids_rewritten: int = 0
    duration_seconds: float = 0.0
    partitions: int = 0
    details: list[str] = field(default_factory=list)

    def merge(self, other: "MergeStats") -> None:
        self.rows_merged += other.rows_merged
        self.rows_compacted += other.rows_compacted
        self.columns_processed += other.columns_processed
        self.columns_remapped += other.columns_remapped
        self.ids_rewritten += other.ids_rewritten
        self.duration_seconds += other.duration_seconds
        self.partitions += other.partitions
        self.details.extend(other.details)


def merge_partition(
    partition: TablePartition,
    compact: bool = False,
    oldest_active_snapshot: int | None = None,
) -> MergeStats:
    """Merge one partition's delta into its main fragments.

    Wall time comes from the observability layer's stopwatch
    (:func:`repro.obs.timed`), which doubles as the
    ``columnstore.merge_seconds`` latency histogram when collectors are
    enabled — one timer, one source of truth.
    """
    stats = MergeStats(partitions=1)
    with obs.timed("columnstore.merge_seconds", partition=partition.name) as timer:
        _merge_partition_body(partition, stats, compact, oldest_active_snapshot)
    stats.duration_seconds = timer.seconds
    obs.count("columnstore.merge.rows_merged", stats.rows_merged)
    obs.count("columnstore.merge.rows_compacted", stats.rows_compacted)
    obs.count("columnstore.merge.ids_rewritten", stats.ids_rewritten)
    return stats


def _merge_partition_body(
    partition: TablePartition,
    stats: MergeStats,
    compact: bool,
    oldest_active_snapshot: int | None,
) -> None:
    n_delta = partition.n_delta
    if n_delta == 0 and not compact:
        return

    keep: np.ndarray | None = None
    if compact:
        horizon = (
            oldest_active_snapshot
            if oldest_active_snapshot is not None
            else INF_CID - 1
        )
        created = partition.created.view()
        deleted = partition.deleted.view()
        tombstoned = created == INF_CID
        dead = (deleted > 0) & (deleted <= horizon) & (deleted != INF_CID)
        keep_mask = ~(tombstoned | dead)
        keep = np.flatnonzero(keep_mask)
        stats.rows_compacted = int(len(created) - len(keep))

    n_main = partition.n_main
    for key, main in list(partition.main.items()):
        delta: DeltaColumn = partition.delta[key]
        stats.columns_processed += 1
        dictionary = main.dictionary
        fresh_values = [value for value in delta.values if value is not None]
        remap = dictionary.encode_many(fresh_values)

        old_vids = main.encoded.decode()
        if remap is not None:
            # remap only real value ids; NULL_VID stays NULL_VID
            rewritten = old_vids.copy()
            non_null = rewritten != NULL_VID
            rewritten[non_null] = remap[rewritten[non_null]]
            old_vids = rewritten
            stats.columns_remapped += 1
            stats.ids_rewritten += int(non_null.sum())

        delta_vids = np.fromiter(
            (dictionary.vid_of(value) for value in delta.values),
            dtype=np.int64,
            count=len(delta.values),
        )
        vids = np.concatenate([old_vids, delta_vids]) if len(delta_vids) else old_vids
        if keep is not None:
            vids = vids[keep]
        partition.main[key] = MainColumn(main.dtype, dictionary, choose_encoding(vids))
        partition.delta[key] = DeltaColumn(main.dtype)

    if keep is not None:
        partition.created = GrowableInt64(partition.created.view()[keep])
        partition.deleted = GrowableInt64(partition.deleted.view()[keep])
    # else: stamps already span main+delta positionally; nothing to do —
    # the delta rows simply became the tail of the new main.

    stats.rows_merged = n_delta
    stats.details.append(
        f"partition {partition.name}: merged {n_delta} delta rows "
        f"(was {n_main} main), remapped {stats.columns_remapped} columns"
    )


def merge_table(
    table: ColumnTable,
    compact: bool = False,
    oldest_active_snapshot: int | None = None,
) -> MergeStats:
    """Merge every partition of ``table``; records stats on the table."""
    total = MergeStats()
    for partition in table.partitions:
        total.merge(merge_partition(partition, compact, oldest_active_snapshot))
    table.merge_stats = {
        "rows_merged": total.rows_merged,
        "rows_compacted": total.rows_compacted,
        "columns_remapped": total.columns_remapped,
        "ids_rewritten": total.ids_rewritten,
        "duration_seconds": total.duration_seconds,
    }
    return total
