"""Horizontal partitioning schemes: single, hash, and range.

The paper's SOE supports "multi-level horizontal partitioning (range and
hash) with the capability to handle huge amount of partitions"
(Section IV.B); the core system uses range partitions for data aging
(Section III). A :class:`PartitionSpec` routes rows to partition ordinals
and — for range partitioning — answers pruning questions.
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from repro.core.schema import TableSchema
from repro.errors import PartitionError


def _stable_hash(values: tuple[Any, ...]) -> int:
    """Deterministic cross-run hash (Python's str hash is salted)."""
    payload = "\x1f".join(repr(value) for value in values).encode("utf-8")
    return zlib.crc32(payload)


class PartitionSpec:
    """Base class: maps a schema-ordered row to a partition ordinal."""

    @property
    def partition_count(self) -> int:
        raise NotImplementedError

    def partition_names(self) -> list[str]:
        """Default names ``p0..pN``; subclasses may be more descriptive."""
        return [f"p{index}" for index in range(self.partition_count)]

    def route(self, row: Sequence[Any], schema: TableSchema) -> int:
        raise NotImplementedError


class SinglePartition(PartitionSpec):
    """No partitioning: everything lands in partition 0."""

    @property
    def partition_count(self) -> int:
        return 1

    def route(self, row: Sequence[Any], schema: TableSchema) -> int:
        return 0


class HashPartitioning(PartitionSpec):
    """Hash partitioning over one or more columns."""

    def __init__(self, columns: Sequence[str], count: int) -> None:
        if count < 1:
            raise PartitionError("hash partition count must be >= 1")
        if not columns:
            raise PartitionError("hash partitioning needs at least one column")
        self.columns = list(columns)
        self.count = count

    @property
    def partition_count(self) -> int:
        return self.count

    def route(self, row: Sequence[Any], schema: TableSchema) -> int:
        key = tuple(row[schema.position(name)] for name in self.columns)
        return _stable_hash(key) % self.count


class RangePartitioning(PartitionSpec):
    """Range partitioning over a single column.

    ``boundaries`` are the split points, sorted ascending; partition ``i``
    holds values ``boundaries[i-1] <= v < boundaries[i]`` (partition 0 is
    everything below the first boundary, partition ``len(boundaries)`` is
    everything at or above the last). NULL values route to partition 0.
    """

    def __init__(self, column: str, boundaries: Sequence[Any]) -> None:
        if not boundaries:
            raise PartitionError("range partitioning needs at least one boundary")
        ordered = list(boundaries)
        if any(ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1)):
            raise PartitionError("range boundaries must be strictly ascending")
        self.column = column
        self.boundaries = ordered

    @property
    def partition_count(self) -> int:
        return len(self.boundaries) + 1

    def route(self, row: Sequence[Any], schema: TableSchema) -> int:
        value = row[schema.position(self.column)]
        return self.partition_for_value(value)

    def partition_for_value(self, value: Any) -> int:
        """Ordinal of the partition holding ``value``."""
        if value is None:
            return 0
        for index, boundary in enumerate(self.boundaries):
            if value < boundary:
                return index
        return len(self.boundaries)

    def partition_range(self, ordinal: int) -> tuple[Any, Any]:
        """(low, high) bounds of a partition; ``None`` marks open ends."""
        low = self.boundaries[ordinal - 1] if ordinal > 0 else None
        high = self.boundaries[ordinal] if ordinal < len(self.boundaries) else None
        return low, high

    def prune(self, low: Any = None, high: Any = None) -> list[int]:
        """Partition ordinals that can contain values in ``[low, high]``.

        This is the statistics-free pruning a range scheme always offers;
        the *semantic* pruning driven by aging rules (Section III) is
        layered on top in :mod:`repro.aging.pruning`.
        """
        survivors = []
        for ordinal in range(self.partition_count):
            part_low, part_high = self.partition_range(ordinal)
            if low is not None and part_high is not None and part_high <= low:
                continue
            if high is not None and part_low is not None and part_low > high:
                continue
            survivors.append(ordinal)
        return survivors


class CompositePartitioning(PartitionSpec):
    """Multi-level partitioning: range at level 1, hash at level 2.

    The paper's SOE supports "multi-level horizontal partitioning (range
    and hash)" (§IV.B). A row routes to
    ``range_ordinal * hash_count + hash_ordinal``, so range pruning removes
    whole *groups* of hash sub-partitions while the hash level keeps data
    spread for parallel scans within each range slice.
    """

    def __init__(self, by_range: RangePartitioning, by_hash: HashPartitioning) -> None:
        self.by_range = by_range
        self.by_hash = by_hash

    @property
    def partition_count(self) -> int:
        return self.by_range.partition_count * self.by_hash.partition_count

    def partition_names(self) -> list[str]:
        return [
            f"r{range_ordinal}h{hash_ordinal}"
            for range_ordinal in range(self.by_range.partition_count)
            for hash_ordinal in range(self.by_hash.partition_count)
        ]

    def route(self, row: Sequence[Any], schema: TableSchema) -> int:
        range_ordinal = self.by_range.route(row, schema)
        hash_ordinal = self.by_hash.route(row, schema)
        return range_ordinal * self.by_hash.partition_count + hash_ordinal

    def prune(self, low: Any = None, high: Any = None) -> list[int]:
        """Expand the range level's survivors to their hash sub-partitions."""
        hash_count = self.by_hash.partition_count
        return [
            range_ordinal * hash_count + hash_ordinal
            for range_ordinal in self.by_range.prune(low, high)
            for hash_ordinal in range(hash_count)
        ]

    @property
    def column(self) -> str:
        """The range column (exposed for the executor's bound analysis)."""
        return self.by_range.column
