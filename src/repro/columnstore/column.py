"""Column fragments: the read-optimised main and the write-optimised delta.

A column of a table partition consists of

* a :class:`MainColumn` — immutable, dictionary encoded, compressed; rebuilt
  only by the delta merge, and
* a :class:`DeltaColumn` — an append-only buffer of raw values recording all
  changes since the last merge (paper, Section III: "a buffer structure
  called delta store which records all changes").

Scans read main and delta side by side; positions ``[0, n_main)`` address
main rows, ``[n_main, n_main + n_delta)`` address delta rows.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.columnstore.compression import (
    NULL_VID,
    BitPackedVector,
    EncodedVector,
    choose_encoding,
)
from repro.columnstore.dictionary import AppendDictionary, SortedDictionary
from repro.core.types import DataType, TypeCode

Dictionary = SortedDictionary | AppendDictionary

_NUMERIC_INT = (TypeCode.INTEGER, TypeCode.BIGINT)
_NUMERIC_FLOAT = (TypeCode.DOUBLE, TypeCode.DECIMAL)


def _materialise(dictionary: Dictionary, vids: np.ndarray, dtype: DataType) -> np.ndarray:
    """Decode value ids into an analysis-friendly NumPy array.

    Numeric columns decode to ``int64`` (``float64`` with NaN when NULLs
    are present); everything else decodes to an object array holding exact
    Python values with ``None`` for NULL.
    """
    has_null = bool(len(vids)) and bool((vids == NULL_VID).any())
    if dtype.code in _NUMERIC_INT and not has_null:
        lookup = np.asarray(dictionary.values, dtype=np.int64)
        if len(lookup) == 0:
            return np.empty(0, dtype=np.int64)
        return lookup[vids]
    if dtype.code in _NUMERIC_INT or dtype.code in _NUMERIC_FLOAT:
        lookup = np.empty(len(dictionary) + 1, dtype=np.float64)
        lookup[:-1] = np.asarray(dictionary.values, dtype=np.float64) if len(dictionary) else []
        lookup[-1] = np.nan
        return lookup[vids]  # NULL_VID == -1 indexes the trailing NaN
    if dtype.code is TypeCode.BOOLEAN and not has_null:
        lookup = np.asarray(dictionary.values, dtype=bool)
        if len(lookup) == 0:
            return np.empty(0, dtype=bool)
        return lookup[vids]
    lookup = np.empty(len(dictionary) + 1, dtype=object)
    for vid, value in enumerate(dictionary.values):
        lookup[vid] = value
    lookup[-1] = None
    return lookup[vids]


class MainColumn:
    """Immutable dictionary-encoded, compressed column fragment."""

    def __init__(
        self,
        dtype: DataType,
        dictionary: Dictionary | None = None,
        encoded: EncodedVector | None = None,
    ) -> None:
        self.dtype = dtype
        self.dictionary: Dictionary = dictionary if dictionary is not None else SortedDictionary()
        self.encoded: EncodedVector = (
            encoded if encoded is not None else BitPackedVector(np.empty(0, dtype=np.int64))
        )

    @classmethod
    def build(
        cls,
        dtype: DataType,
        values: Sequence[Any],
        sorted_dictionary: bool = True,
    ) -> "MainColumn":
        """Build a fragment from raw values (used by merge and bulk load)."""
        dictionary: Dictionary = (
            SortedDictionary(v for v in values if v is not None)
            if sorted_dictionary
            else AppendDictionary()
        )
        if not sorted_dictionary:
            dictionary.encode_many([v for v in values if v is not None])
        vids = np.fromiter(
            (dictionary.vid_of(value) for value in values),
            dtype=np.int64,
            count=len(values),
        )
        return cls(dtype, dictionary, choose_encoding(vids))

    def __len__(self) -> int:
        return len(self.encoded)

    def vids(self) -> np.ndarray:
        """The full decoded value-id vector."""
        return self.encoded.decode()

    def array(self) -> np.ndarray:
        """Decode the whole fragment to an analysis array."""
        return _materialise(self.dictionary, self.vids(), self.dtype)

    def values_at(self, positions: np.ndarray) -> list[Any]:
        """Exact Python values at the given positions."""
        return self.dictionary.decode_many(self.encoded.take(np.asarray(positions, dtype=np.int64)))

    def memory_bytes(self) -> int:
        """Approximate footprint: encoded vector + dictionary payload."""
        dict_bytes = sum(
            len(v) if isinstance(v, str) else 8 for v in self.dictionary.values
        )
        return self.encoded.memory_bytes() + dict_bytes


class DeltaColumn:
    """Append-only raw-value buffer for writes since the last merge."""

    def __init__(self, dtype: DataType) -> None:
        self.dtype = dtype
        self.values: list[Any] = []

    def __len__(self) -> int:
        return len(self.values)

    def append(self, value: Any) -> None:
        """Record one (already coerced) value."""
        self.values.append(value)

    def extend(self, values: Iterable[Any]) -> None:
        """Record many values."""
        self.values.extend(values)

    def array(self) -> np.ndarray:
        """Decode the buffer to an analysis array (same rules as main)."""
        has_null = any(value is None for value in self.values)
        code = self.dtype.code
        if code in _NUMERIC_INT and not has_null:
            return np.asarray(self.values, dtype=np.int64)
        if code in _NUMERIC_INT or code in _NUMERIC_FLOAT:
            return np.asarray(
                [np.nan if value is None else float(value) for value in self.values],
                dtype=np.float64,
            )
        if code is TypeCode.BOOLEAN and not has_null:
            return np.asarray(self.values, dtype=bool)
        out = np.empty(len(self.values), dtype=object)
        for index, value in enumerate(self.values):
            out[index] = value
        return out

    def values_at(self, positions: np.ndarray) -> list[Any]:
        """Exact Python values at the given delta-local positions."""
        return [self.values[int(position)] for position in positions]

    def memory_bytes(self) -> int:
        """Approximate footprint (uncompressed, as in a real delta)."""
        return sum(
            len(value) + 49 if isinstance(value, str) else 28 for value in self.values
        )
