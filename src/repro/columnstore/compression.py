"""Compressed representations for value-id vectors.

The main fragment of a column stores dictionary value ids. On delta merge
the engine picks a physical encoding per column based on the data's shape
(paper, Section II.A: "applying multiple compression techniques"):

* :class:`BitPackedVector` — plain array using the narrowest integer dtype
  that can hold the largest value id (the NumPy stand-in for n-bit packing).
* :class:`RunLengthVector` — run-length encoding for sorted or low-churn
  columns.
* :class:`SparseVector` — most-frequent-value encoding for very sparse
  columns (Section II.H: "internal compression methods can handle also very
  sparse columns").

All encodings answer the same read API so the scan layer is agnostic:
``decode()``, ``take(positions)``, ``scan_eq(vid)``, ``__len__``,
``memory_bytes()``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

#: Value id used for SQL NULL in encoded vectors.
NULL_VID = -1


def _narrowest_dtype(max_abs: int) -> np.dtype:
    """Smallest signed integer dtype that can hold ``max_abs`` and -1."""
    for dtype in (np.int8, np.int16, np.int32):
        if max_abs <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


class EncodedVector:
    """Common interface for the physical encodings (abstract base)."""

    def decode(self) -> np.ndarray:
        """Materialise the full value-id vector as ``int64``."""
        raise NotImplementedError

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Value ids at ``positions`` (int64)."""
        raise NotImplementedError

    def scan_eq(self, vid: int) -> np.ndarray:
        """Boolean mask of positions whose value id equals ``vid``."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Approximate compressed footprint in bytes."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class BitPackedVector(EncodedVector):
    """Dense vector stored with the narrowest integer dtype."""

    def __init__(self, vids: np.ndarray) -> None:
        vids = np.asarray(vids, dtype=np.int64)
        max_abs = int(vids.max(initial=0))
        self._data = vids.astype(_narrowest_dtype(max_abs))

    def decode(self) -> np.ndarray:
        return self._data.astype(np.int64)

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self._data[positions].astype(np.int64)

    def scan_eq(self, vid: int) -> np.ndarray:
        return self._data == vid

    def memory_bytes(self) -> int:
        return self._data.nbytes

    def __len__(self) -> int:
        return len(self._data)


class RunLengthVector(EncodedVector):
    """Run-length encoding: (start offset, value id) per run."""

    def __init__(self, vids: np.ndarray) -> None:
        vids = np.asarray(vids, dtype=np.int64)
        self._length = len(vids)
        if self._length == 0:
            self._starts = np.empty(0, dtype=np.int64)
            self._values = np.empty(0, dtype=np.int64)
            return
        change = np.empty(self._length, dtype=bool)
        change[0] = True
        np.not_equal(vids[1:], vids[:-1], out=change[1:])
        self._starts = np.flatnonzero(change).astype(np.int64)
        self._values = vids[self._starts]

    @property
    def run_count(self) -> int:
        """Number of runs (useful for compression-ratio reporting)."""
        return len(self._starts)

    def decode(self) -> np.ndarray:
        if self._length == 0:
            return np.empty(0, dtype=np.int64)
        lengths = np.diff(np.append(self._starts, self._length))
        return np.repeat(self._values, lengths)

    def take(self, positions: np.ndarray) -> np.ndarray:
        if self._length == 0:
            return np.empty(0, dtype=np.int64)
        run_index = np.searchsorted(self._starts, positions, side="right") - 1
        return self._values[run_index]

    def scan_eq(self, vid: int) -> np.ndarray:
        mask = np.zeros(self._length, dtype=bool)
        if self._length == 0:
            return mask
        lengths = np.diff(np.append(self._starts, self._length))
        for start, length, value in zip(self._starts, lengths, self._values):
            if value == vid:
                mask[start : start + length] = True
        return mask

    def memory_bytes(self) -> int:
        return self._starts.nbytes + self._values.nbytes

    def __len__(self) -> int:
        return self._length


class SparseVector(EncodedVector):
    """Most-frequent-value encoding: default vid + exception positions."""

    def __init__(self, vids: np.ndarray, default_vid: int) -> None:
        vids = np.asarray(vids, dtype=np.int64)
        self._length = len(vids)
        self._default = int(default_vid)
        exceptions = np.flatnonzero(vids != default_vid)
        self._positions = exceptions.astype(np.int64)
        packed = vids[exceptions]
        max_abs = int(packed.max(initial=0))
        self._values = packed.astype(_narrowest_dtype(max_abs))

    @property
    def default_vid(self) -> int:
        """The dominant value id elided from storage."""
        return self._default

    @property
    def exception_count(self) -> int:
        """How many positions deviate from the default."""
        return len(self._positions)

    def decode(self) -> np.ndarray:
        out = np.full(self._length, self._default, dtype=np.int64)
        out[self._positions] = self._values.astype(np.int64)
        return out

    def take(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        out = np.full(len(positions), self._default, dtype=np.int64)
        if len(self._positions):
            found = np.searchsorted(self._positions, positions)
            found = np.clip(found, 0, len(self._positions) - 1)
            hit = self._positions[found] == positions
            out[hit] = self._values[found[hit]].astype(np.int64)
        return out

    def scan_eq(self, vid: int) -> np.ndarray:
        if vid == self._default:
            mask = np.ones(self._length, dtype=bool)
            mask[self._positions] = self._values == vid
            return mask
        mask = np.zeros(self._length, dtype=bool)
        mask[self._positions[self._values == vid]] = True
        return mask

    def memory_bytes(self) -> int:
        return self._positions.nbytes + self._values.nbytes + 8

    def __len__(self) -> int:
        return self._length


def choose_encoding(vids: np.ndarray) -> EncodedVector:
    """Pick the cheapest encoding for ``vids`` by estimated footprint.

    The heuristic mirrors a real column store's merge-time decision: count
    runs and the dominant value's share, then compare estimated sizes.
    """
    vids = np.asarray(vids, dtype=np.int64)
    if len(vids) == 0:
        return BitPackedVector(vids)

    candidates: list[EncodedVector] = [BitPackedVector(vids)]

    runs = int(np.count_nonzero(vids[1:] != vids[:-1])) + 1
    if runs * 16 < candidates[0].memory_bytes():
        candidates.append(RunLengthVector(vids))

    values, counts = np.unique(vids, return_counts=True)
    top = int(counts.argmax())
    if counts[top] >= 0.6 * len(vids):
        candidates.append(SparseVector(vids, int(values[top])))

    return min(candidates, key=lambda enc: enc.memory_bytes())


def compression_report(encoded: EncodedVector) -> dict[str, float | str]:
    """Small stats dict for monitoring and the compression benchmarks."""
    raw_bytes = max(len(encoded) * 8, 1)
    return {
        "encoding": type(encoded).__name__,
        "rows": float(len(encoded)),
        "compressed_bytes": float(encoded.memory_bytes()),
        "ratio": raw_bytes / max(encoded.memory_bytes(), 1),
    }


def concat_decoded(parts: Iterable[EncodedVector]) -> np.ndarray:
    """Decode and concatenate multiple encoded vectors."""
    arrays = [part.decode() for part in parts]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(arrays)
