"""A classical row store, kept for OLTP point access and as a baseline.

Figure 2 of the paper shows "Column / Row" under the in-memory store: HANA
keeps a row engine beside the column engine. In this reproduction the row
store mainly serves benchmark E2 (column vs. row analytics) and internal
bookkeeping tables; it shares the MVCC machinery with the column store.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.schema import TableSchema
from repro.transaction.manager import Transaction
from repro.transaction.mvcc import INF_CID, visible_mask
from repro.util.arrays import GrowableInt64


class RowTable:
    """Row-oriented MVCC table: a list of tuples plus stamp vectors."""

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[list[Any]] = []
        self.created = GrowableInt64()
        self.deleted = GrowableInt64()

    def __len__(self) -> int:
        return len(self.rows)

    # -- writes ---------------------------------------------------------------

    def insert(self, row: Sequence[Any] | Mapping[str, Any], txn: Transaction) -> int:
        """Append one row; returns its position."""
        values = self.schema.coerce_row(row)
        self.rows.append(values)
        position = self.created.append(txn.stamp)
        self.deleted.append(INF_CID)
        txn.record_insert(self.created, position)
        return position

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]], txn: Transaction) -> int:
        count = 0
        for row in rows:
            self.insert(row, txn)
            count += 1
        return count

    def delete_at(self, position: int, txn: Transaction) -> None:
        """Delete a row version (same conflict rule as the column store)."""
        from repro.errors import WriteConflictError

        if self.deleted[position] != INF_CID:
            raise WriteConflictError(f"row {position} already deleted or locked")
        self.deleted[position] = txn.stamp
        txn.record_delete(self.deleted, position)

    # -- reads ----------------------------------------------------------------

    def visible_positions(self, snapshot_cid: int, own_tid: int = 0) -> np.ndarray:
        mask = visible_mask(self.created.view(), self.deleted.view(), snapshot_cid, own_tid)
        return np.flatnonzero(mask)

    def scan(self, snapshot_cid: int, own_tid: int = 0) -> list[list[Any]]:
        """All visible rows — a full row-at-a-time scan."""
        return [self.rows[int(p)] for p in self.visible_positions(snapshot_cid, own_tid)]

    def select(
        self,
        predicate: Callable[[list[Any]], bool],
        snapshot_cid: int,
        own_tid: int = 0,
    ) -> list[list[Any]]:
        """Filtered scan, row at a time (the row-store access pattern)."""
        return [
            row
            for row in self.scan(snapshot_cid, own_tid)
            if predicate(row)
        ]

    def aggregate_sum(self, column: str, snapshot_cid: int, own_tid: int = 0) -> float:
        """Row-at-a-time SUM over one column (benchmark E2 baseline)."""
        position = self.schema.position(column)
        total = 0.0
        for row in self.scan(snapshot_cid, own_tid):
            value = row[position]
            if value is not None:
                total += value
        return total

    def memory_bytes(self) -> int:
        """Approximate footprint: every row materialised, uncompressed."""
        total = len(self.created) * 16
        for row in self.rows:
            for value in row:
                total += len(value) + 49 if isinstance(value, str) else 28
        return total
