"""Deterministic synthetic workload generators."""

from repro.workloads.generators import (
    ErpConfig,
    SensorConfig,
    baskets,
    dispenser_events,
    erp_customers,
    erp_invoices,
    erp_orders,
    hurricane_tracks,
    pipeline_graph,
    sensor_readings,
    stock_ticks,
    text_corpus,
)

__all__ = [
    "ErpConfig", "SensorConfig", "baskets", "dispenser_events", "erp_customers",
    "erp_invoices", "erp_orders", "hurricane_tracks", "pipeline_graph",
    "sensor_readings", "stock_ticks", "text_corpus",
]
