"""Deterministic synthetic workload generators.

Substitution (DESIGN.md): the paper's evaluations run on SAP ERP customer
data, IoT sensor fleets, and web text — none of which is available. These
generators produce data with the same *shape* (cardinalities, skew,
temporal structure, sparsity) under a fixed seed, so every benchmark and
test is reproducible.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass
from typing import Any, Iterator

_CURRENCIES = ["EUR", "USD", "GBP", "JPY", "CHF"]
_COUNTRIES = ["DE", "US", "GB", "JP", "CH", "FR", "IT", "CN"]
_STATUSES = ["closed", "open", "cancelled"]
_PRODUCT_WORDS = [
    "pump", "valve", "sensor", "panel", "motor", "gear", "filter", "belt",
    "switch", "bearing", "nozzle", "frame", "rotor", "seal", "clamp",
]
_REVIEW_POSITIVE = [
    "great quality and fast delivery",
    "excellent product works as expected",
    "very happy reliable and efficient",
    "good value strong build quality",
]
_REVIEW_NEGATIVE = [
    "terrible quality broke after a week",
    "slow delivery and poor support",
    "bad fit unreliable and noisy",
    "worst purchase constant problems",
]


@dataclass(frozen=True)
class ErpConfig:
    """Order/invoice/customer generator parameters."""

    customers: int = 100
    orders: int = 1000
    start_year: int = 2012
    years: int = 3
    closed_fraction: float = 0.7
    seed: int = 42


def erp_customers(config: ErpConfig) -> list[list[Any]]:
    """(customer_id, name, country, city) rows."""
    rng = random.Random(config.seed)
    rows = []
    for index in range(config.customers):
        country = rng.choice(_COUNTRIES)
        rows.append(
            [index, f"customer_{index:05d}", country, f"city_{rng.randint(0, 30)}"]
        )
    return rows


def erp_orders(config: ErpConfig) -> list[list[Any]]:
    """(order_id, customer_id, status, order_date, amount, currency) rows.

    Keys are monotone (application-generated: context + counter), dates
    spread over the configured years, ~closed_fraction of orders closed
    (the aging-eligible population).
    """
    rng = random.Random(config.seed + 1)
    rows = []
    for index in range(config.orders):
        year = config.start_year + rng.randrange(config.years)
        order_date = _dt.date(year, rng.randint(1, 12), rng.randint(1, 28))
        closed = rng.random() < config.closed_fraction
        status = "closed" if closed else rng.choice(["open", "open", "cancelled"])
        rows.append(
            [
                index,
                rng.randrange(config.customers),
                status,
                order_date,
                round(rng.lognormvariate(4.5, 1.0), 2),
                rng.choice(_CURRENCIES),
            ]
        )
    return rows


def erp_invoices(config: ErpConfig, orders: list[list[Any]]) -> list[list[Any]]:
    """(invoice_id, order_id, paid, invoice_date, amount) — one per order,
    paid iff the order is closed (so the dependency rule can fire)."""
    rng = random.Random(config.seed + 2)
    rows = []
    for order in orders:
        order_id, _customer, status, order_date, amount, _currency = order
        paid = "paid" if status == "closed" else "due"
        invoice_date = order_date + _dt.timedelta(days=rng.randint(1, 30))
        rows.append([order_id, order_id, paid, invoice_date, amount])
    return rows


@dataclass(frozen=True)
class SensorConfig:
    """IoT sensor-fleet generator parameters."""

    sensors: int = 20
    readings_per_sensor: int = 500
    interval_seconds: int = 60
    irregular_fraction: float = 0.0
    noise: float = 0.5
    seed: int = 7


def sensor_readings(config: SensorConfig) -> Iterator[list[Any]]:
    """(sensor_id, timestamp, value) rows: daily-period signal + drift +
    noise; optional timestamp jitter for the compression sweep."""
    import math

    rng = random.Random(config.seed)
    for sensor in range(config.sensors):
        base = 20.0 + 5.0 * (sensor % 5)
        timestamp = 1_400_000_000 + sensor
        period = 24 * 3600
        for step in range(config.readings_per_sensor):
            if rng.random() < config.irregular_fraction:
                timestamp += config.interval_seconds + rng.randint(1, 30)
            else:
                timestamp += config.interval_seconds
            value = (
                base
                + 3.0 * math.sin(2 * math.pi * (timestamp % period) / period)
                + 0.0005 * step
                + rng.gauss(0.0, config.noise)
            )
            yield [sensor, timestamp, round(value, 3)]


def dispenser_events(
    dispensers: int = 30, steps: int = 200, seed: int = 11
) -> Iterator[dict[str, Any]]:
    """Scenario V.3 events: fill grade decaying at dispenser-specific rates."""
    rng = random.Random(seed)
    rates = [rng.uniform(0.1, 1.2) for _ in range(dispensers)]
    levels = [100.0] * dispensers
    timestamp = 1_400_000_000
    for _step in range(steps):
        timestamp += 3600
        for dispenser in range(dispensers):
            levels[dispenser] = max(
                0.0, levels[dispenser] - rates[dispenser] * rng.uniform(0.5, 1.5)
            )
            yield {
                "dispenser_id": dispenser,
                "ts": timestamp,
                "fill_grade": round(levels[dispenser], 2),
            }


def text_corpus(documents: int = 200, seed: int = 5) -> list[tuple[int, str, str]]:
    """(doc_id, text, label) — labelled product reviews for the text engine."""
    rng = random.Random(seed)
    corpus = []
    for index in range(documents):
        product = rng.choice(_PRODUCT_WORDS)
        if rng.random() < 0.5:
            body = f"{rng.choice(_REVIEW_POSITIVE)} for the {product}"
            label = "positive"
        else:
            body = f"{rng.choice(_REVIEW_NEGATIVE)} with the {product}"
            label = "negative"
        extra = " ".join(rng.sample(_PRODUCT_WORDS, 3))
        corpus.append((index, f"{body} {extra}", label))
    return corpus


def baskets(transactions: int = 500, seed: int = 3) -> list[list[str]]:
    """Market baskets with planted associations (beer→chips, bread→butter)."""
    rng = random.Random(seed)
    catalogue = _PRODUCT_WORDS
    out = []
    for _index in range(transactions):
        basket = set(rng.sample(catalogue, rng.randint(1, 4)))
        if rng.random() < 0.4:
            basket.update({"beer", "chips"})
        if rng.random() < 0.3:
            basket.update({"bread", "butter"})
        out.append(sorted(basket))
    return out


def stock_ticks(
    symbols: int = 8, days: int = 250, seed: int = 17
) -> dict[str, list[tuple[int, float]]]:
    """Scenario V.1 data: correlated random-walk closing prices.

    Symbols 0/1 share a common factor (strongly correlated); the rest are
    independent — so the in-database correlation analysis has structure to
    find.
    """
    rng = random.Random(seed)
    prices: dict[str, list[tuple[int, float]]] = {}
    common = [rng.gauss(0, 1) for _ in range(days)]
    for symbol_index in range(symbols):
        symbol = f"SYM{symbol_index}"
        level = 100.0 + 10.0 * symbol_index
        series = []
        for day in range(days):
            shock = rng.gauss(0, 1)
            if symbol_index in (0, 1):
                shock = 0.8 * common[day] + 0.2 * shock
            level = max(1.0, level * (1 + 0.01 * shock))
            series.append((1_388_534_400 + day * 86400, round(level, 2)))
        prices[symbol] = series
    return prices


def pipeline_graph(
    segments: int = 60, seed: int = 23
) -> tuple[list[list[Any]], list[list[Any]]]:
    """Scenario V.5: a gas pipeline as (junction rows, pipe rows).

    Junctions carry coordinates (for the geo combination); pipes carry
    lengths as weights. The topology is a backbone with branches.
    """
    rng = random.Random(seed)
    junctions = []
    pipes = []
    for index in range(segments):
        junctions.append([index, round(index * 1.7, 2), round(rng.uniform(0, 20), 2)])
    for index in range(1, segments):
        backbone_parent = index - 1 if rng.random() < 0.7 else rng.randrange(index)
        length = round(rng.uniform(0.5, 5.0), 2)
        pipes.append([backbone_parent, index, length])
        if rng.random() < 0.15:  # cross connection
            other = rng.randrange(index)
            if other != backbone_parent:
                pipes.append([other, index, round(rng.uniform(1.0, 8.0), 2)])
    return junctions, pipes


def hurricane_tracks(
    storms: int = 40, seed: int = 29
) -> list[list[Any]]:
    """Scenario V.4: (storm_id, step, lon, lat, wind) track points heading
    roughly north-west from the Atlantic."""
    rng = random.Random(seed)
    rows = []
    for storm in range(storms):
        lon = rng.uniform(-60.0, -40.0)
        lat = rng.uniform(10.0, 20.0)
        wind = rng.uniform(60.0, 120.0)
        for step in range(rng.randint(10, 25)):
            lon -= rng.uniform(0.2, 1.2)
            lat += rng.uniform(0.1, 0.9)
            wind = max(30.0, wind + rng.gauss(0, 6))
            rows.append([storm, step, round(lon, 2), round(lat, 2), round(wind, 1)])
    return rows
