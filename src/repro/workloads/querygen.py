"""Seeded SQL query-shape generator for plan-corpus verification.

``python -m tools.analyze --plan-corpus`` feeds every generated query
through the planner and the plan cache and runs
:mod:`repro.analysis.plancheck` over the resulting plans, entries, and
bindings — a breadth gate over query *shapes* that complements the
depth of the hand-written tests. The generator is deterministic under a
seed so a CI failure reproduces locally with the same corpus.

The schema is the synthetic ERP triple (customers/orders/invoices) the
rest of the suite uses; shapes cover filters (comparison, IN, BETWEEN,
LIKE, IS NULL), inner/left joins, grouped aggregation with HAVING,
DISTINCT, ORDER BY (columns, expressions, and ordinals), LIMIT/OFFSET,
UNION [ALL], and derived tables.
"""

from __future__ import annotations

import random
from typing import Iterator

#: table -> (columns, numeric columns, text columns)
SCHEMA: dict[str, dict[str, list[str]]] = {
    "customers": {
        "columns": ["customer_id", "name", "country", "city"],
        "numeric": ["customer_id"],
        "text": ["name", "country", "city"],
    },
    "orders": {
        "columns": ["order_id", "customer_id", "status", "amount", "currency"],
        "numeric": ["order_id", "customer_id", "amount"],
        "text": ["status", "currency"],
    },
    "invoices": {
        "columns": ["invoice_id", "order_id", "paid", "amount"],
        "numeric": ["invoice_id", "order_id", "amount"],
        "text": ["paid"],
    },
}

#: join equi-keys between tables that share one
JOINS: list[tuple[str, str, str]] = [
    ("customers", "orders", "customer_id"),
    ("orders", "invoices", "order_id"),
]

_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def ddl() -> list[str]:
    """CREATE TABLE statements matching :data:`SCHEMA` (all typed loosely —
    the generator only needs names to resolve)."""
    statements = []
    for table, info in SCHEMA.items():
        columns = ", ".join(
            f"{column} DOUBLE" if column in info["numeric"] else f"{column} VARCHAR"
            for column in info["columns"]
        )
        statements.append(f"CREATE TABLE {table} ({columns})")
    return statements


def _literal(rng: random.Random, numeric: bool) -> str:
    if numeric:
        if rng.random() < 0.5:
            return str(rng.randint(0, 500))
        return f"{rng.uniform(0, 500):.2f}"
    return f"'{rng.choice(_WORDS)}'"


def _predicate(rng: random.Random, table: str, alias: str | None = None) -> str:
    info = SCHEMA[table]
    prefix = f"{alias or table}."
    kind = rng.randrange(6)
    if kind == 0:
        column = rng.choice(info["numeric"])
        op = rng.choice([">", "<", ">=", "<=", "=", "<>"])
        return f"{prefix}{column} {op} {_literal(rng, True)}"
    if kind == 1:
        column = rng.choice(info["numeric"])
        low = rng.randint(0, 200)
        return f"{prefix}{column} BETWEEN {low} AND {low + rng.randint(1, 200)}"
    if kind == 2:
        column = rng.choice(info["columns"])
        numeric = column in info["numeric"]
        values = ", ".join(_literal(rng, numeric) for _ in range(rng.randint(1, 4)))
        return f"{prefix}{column} IN ({values})"
    if kind == 3:
        column = rng.choice(info["text"])
        return f"{prefix}{column} LIKE '%{rng.choice(_WORDS)[:2]}%'"
    if kind == 4:
        column = rng.choice(info["columns"])
        maybe_not = "NOT " if rng.random() < 0.5 else ""
        return f"{prefix}{column} IS {maybe_not}NULL"
    left = _predicate(rng, table, alias)
    right = _predicate(rng, table, alias)
    return f"({left} {rng.choice(['AND', 'OR'])} {right})"


def _simple_select(rng: random.Random) -> str:
    table = rng.choice(list(SCHEMA))
    info = SCHEMA[table]
    count = rng.randint(1, len(info["columns"]))
    columns = rng.sample(info["columns"], count)
    items = []
    for column in columns:
        if column in info["numeric"] and rng.random() < 0.3:
            items.append(f"{column} + {rng.randint(1, 9)} AS {column}_adj")
        else:
            items.append(column)
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if rng.random() < 0.8:
        sql += f" WHERE {_predicate(rng, table)}"
    return sql


def _join_select(rng: random.Random) -> str:
    left, right, key = rng.choice(JOINS)
    kind = rng.choice(["JOIN", "LEFT JOIN"])
    left_col = rng.choice(SCHEMA[left]["columns"])
    right_col = rng.choice(
        [column for column in SCHEMA[right]["columns"] if column != left_col]
    )
    sql = (
        f"SELECT {left}.{left_col}, {right}.{right_col} FROM {left} "
        f"{kind} {right} ON {left}.{key} = {right}.{key}"
    )
    if rng.random() < 0.7:
        table = rng.choice([left, right])
        sql += f" WHERE {_predicate(rng, table)}"
    return sql


def _aggregate_select(rng: random.Random) -> str:
    table = rng.choice(list(SCHEMA))
    info = SCHEMA[table]
    group = rng.choice(info["text"])
    metric = rng.choice(info["numeric"])
    func = rng.choice(["SUM", "AVG", "MIN", "MAX", "COUNT"])
    sql = (
        f"SELECT {group}, {func}({metric}) AS metric FROM {table} "
        f"GROUP BY {group}"
    )
    if rng.random() < 0.5:
        sql += f" HAVING {func}({metric}) > {rng.randint(1, 100)}"
    if rng.random() < 0.5:
        sql += f" ORDER BY metric {rng.choice(['ASC', 'DESC'])}"
    return sql


def _derived_select(rng: random.Random) -> str:
    inner = _simple_select(rng)
    # the derived table exposes the inner output names; project them all
    return f"SELECT * FROM ({inner}) d"


def _union_select(rng: random.Random) -> str:
    table = rng.choice(list(SCHEMA))
    column = rng.choice(SCHEMA[table]["numeric"])
    all_kw = " ALL" if rng.random() < 0.5 else ""
    return (
        f"SELECT {column} FROM {table} WHERE {column} > {rng.randint(0, 100)} "
        f"UNION{all_kw} "
        f"SELECT {column} FROM {table} WHERE {column} < {rng.randint(100, 300)}"
    )


def _decorate(rng: random.Random, sql: str, table_hint: str | None = None) -> str:
    """Append DISTINCT / ORDER BY / LIMIT decorations where legal."""
    if sql.startswith("SELECT ") and rng.random() < 0.2 and " UNION" not in sql:
        sql = "SELECT DISTINCT " + sql[len("SELECT ") :]
    if " ORDER BY " not in sql and rng.random() < 0.4:
        sql += f" ORDER BY 1{' DESC' if rng.random() < 0.5 else ''}"
    if rng.random() < 0.4:
        sql += f" LIMIT {rng.randint(1, 50)}"
        if rng.random() < 0.3:
            sql += f" OFFSET {rng.randint(0, 20)}"
    return sql


_SHAPES = [
    (_simple_select, 4),
    (_join_select, 3),
    (_aggregate_select, 2),
    (_derived_select, 1),
    (_union_select, 1),
]


def generate_queries(count: int, seed: int = 0) -> Iterator[str]:
    """Yield ``count`` deterministic SELECT statements for the ERP schema."""
    rng = random.Random(seed)
    population = [shape for shape, weight in _SHAPES for _ in range(weight)]
    for _ in range(count):
        shape = rng.choice(population)
        yield _decorate(rng, shape(rng))


def perturb_literals(sql: str, seed: int = 0) -> str:
    """Same query shape, different constants — exercises cache-hit binding.

    Rewrites every integer/float token (outside quoted strings) to a
    different number, except ORDER BY ordinals (those name columns).
    LIMIT/OFFSET changes shift the fingerprint — the corpus run then
    verifies the perturbed query as a fresh plan instead of a binding,
    which is still a valid target.
    """
    rng = random.Random(seed)
    out: list[str] = []
    index = 0
    in_string = False
    while index < len(sql):
        char = sql[index]
        if char == "'":
            in_string = not in_string
            out.append(char)
            index += 1
            continue
        if not in_string and char.isdigit():
            start = index
            while index < len(sql) and (sql[index].isdigit() or sql[index] == "."):
                index += 1
            token = sql[start:index]
            if "".join(out).rstrip().upper().endswith("ORDER BY"):
                out.append(token)  # an ordinal names a column, not a constant
                continue
            if "." in token:
                out.append(f"{float(token) + rng.randint(1, 9)}")
            else:
                out.append(str(int(token) + rng.randint(1, 9)))
            continue
        out.append(char)
        index += 1
    return "".join(out)
