"""Vectorised expression evaluation over column batches.

A :class:`Batch` is the unit flowing between physical operators: a mapping
from qualified column names (``alias.column``) to NumPy arrays of equal
length. Expressions evaluate to arrays; SQL NULL is NaN in float arrays and
``None`` in object arrays.

Three-valued logic is simplified: a comparison involving NULL yields False
(not UNKNOWN), which matches the filtering behaviour of WHERE clauses —
the only place the engine consumes booleans.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ColumnNotFoundError, ExpressionError
from repro.sql import ast
from repro.sql.context import ExecutionContext


class Batch:
    """Named columns of equal length — the vectorised data unit."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Mapping[str, np.ndarray], length: int | None = None) -> None:
        self.columns: dict[str, np.ndarray] = dict(columns)
        if length is None:
            first = next(iter(self.columns.values()), None)
            length = len(first) if first is not None else 0
        self.length = length

    def __len__(self) -> int:
        return self.length

    @property
    def names(self) -> list[str]:
        return list(self.columns)

    def resolve(self, name: str, table: str | None = None) -> str:
        """Resolve a (possibly unqualified) column reference to a key."""
        name = name.lower()
        if table is not None:
            key = f"{table.lower()}.{name}"
            if key in self.columns:
                return key
            raise ColumnNotFoundError(table, name)
        if name in self.columns:
            return name
        matches = [key for key in self.columns if key.endswith(f".{name}")]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ColumnNotFoundError("<batch>", name)
        raise ExpressionError(f"ambiguous column reference {name!r}: {matches}")

    def column(self, name: str, table: str | None = None) -> np.ndarray:
        return self.columns[self.resolve(name, table)]

    def take(self, positions: np.ndarray) -> "Batch":
        """Row subset by position."""
        return Batch(
            {key: array[positions] for key, array in self.columns.items()},
            length=len(positions),
        )

    def filter(self, mask: np.ndarray) -> "Batch":
        """Row subset by boolean mask."""
        return Batch(
            {key: array[mask] for key, array in self.columns.items()},
            length=int(mask.sum()),
        )

    def with_column(self, key: str, array: np.ndarray) -> "Batch":
        """New batch with one column added/replaced."""
        columns = dict(self.columns)
        columns[key.lower()] = array
        return Batch(columns, self.length)

    def rows(self) -> list[list[Any]]:
        """Materialise as Python rows (column order = insertion order)."""
        arrays = list(self.columns.values())
        return [
            [_to_python(array[index]) for array in arrays]
            for index in range(self.length)
        ]

    @staticmethod
    def concat(parts: "Iterable[Batch]") -> "Batch":
        """Concatenate batches with identical column sets."""
        parts = [part for part in parts if part is not None]
        if not parts:
            return Batch({}, 0)
        if len(parts) == 1:
            return parts[0]
        keys = parts[0].names
        columns = {}
        for key in keys:
            arrays = [part.columns[key] for part in parts]
            target = _common_dtype(arrays)
            columns[key] = np.concatenate([a.astype(target, copy=False) for a in arrays])
        return Batch(columns, sum(len(part) for part in parts))


def _common_dtype(arrays: list[np.ndarray]) -> np.dtype:
    dtypes = {array.dtype for array in arrays}
    if len(dtypes) == 1:
        return dtypes.pop()
    if any(d == object for d in dtypes):
        return np.dtype(object)
    return np.dtype(np.float64)


def _to_python(value: Any) -> Any:
    """Unbox NumPy scalars; map NaN to None for output rows."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and value != value:
        return None
    return value


def is_null_mask(array: np.ndarray) -> np.ndarray:
    """Boolean mask of SQL NULLs for either representation."""
    if array.dtype == object:
        return np.fromiter((v is None for v in array), dtype=bool, count=len(array))
    if array.dtype.kind == "f":
        return np.isnan(array)
    return np.zeros(len(array), dtype=bool)


def _broadcast(value: Any, length: int) -> np.ndarray:
    """Turn a literal into an array of the batch length."""
    if isinstance(value, bool):
        return np.full(length, value, dtype=bool)
    if isinstance(value, int):
        return np.full(length, value, dtype=np.int64)
    if isinstance(value, float):
        return np.full(length, value, dtype=np.float64)
    out = np.empty(length, dtype=object)
    out[:] = [value] * length if length else []
    return out


_ARITH: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "%": np.mod,
}

_COMPARE = {"=", "<>", "<", "<=", ">", ">="}


def _compare_object(left: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    """Element-wise comparison with None treated as 'never matches'."""
    out = np.zeros(len(left), dtype=bool)
    for index in range(len(left)):
        a = left[index] if left.dtype == object or True else left[index]
        b = right[index]
        a = _to_python(a)
        b = _to_python(b)
        if a is None or b is None:
            continue
        try:
            if op == "=":
                out[index] = a == b
            elif op == "<>":
                out[index] = a != b
            elif op == "<":
                out[index] = a < b
            elif op == "<=":
                out[index] = a <= b
            elif op == ">":
                out[index] = a > b
            else:
                out[index] = a >= b
        except TypeError:
            out[index] = False
    return out


def compare(left: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    """NULL-safe comparison of two arrays."""
    if left.dtype != object and right.dtype != object:
        with np.errstate(invalid="ignore"):
            if op == "=":
                result = left == right
            elif op == "<>":
                result = left != right
                nulls = is_null_mask(left) | is_null_mask(right)
                result = result & ~nulls
                return result
            elif op == "<":
                result = left < right
            elif op == "<=":
                result = left <= right
            elif op == ">":
                result = left > right
            else:
                result = left >= right
        return np.asarray(result, dtype=bool)
    return _compare_object(np.asarray(left, dtype=object), np.asarray(right, dtype=object), op)


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    # re.escape escapes % and _ as themselves (no-op) so the replacements
    # above operate on the escaped text directly.
    return re.compile(f"^{regex}$", re.DOTALL)


def evaluate(expr: ast.Expr, batch: Batch, context: ExecutionContext) -> np.ndarray:
    """Evaluate ``expr`` over ``batch`` to an array of ``len(batch)``."""
    if isinstance(expr, ast.Literal):
        return _broadcast(expr.value, len(batch))
    if isinstance(expr, ast.ColumnRef):
        return batch.column(expr.name, expr.table)
    if isinstance(expr, ast.UnaryOp):
        operand = evaluate(expr.operand, batch, context)
        if expr.op == "NOT":
            return ~np.asarray(operand, dtype=bool)
        if operand.dtype == object:
            return np.array(
                [None if v is None else -v for v in operand], dtype=object
            )
        return -operand
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, batch, context)
    if isinstance(expr, ast.IsNull):
        mask = is_null_mask(evaluate(expr.operand, batch, context))
        return ~mask if expr.negated else mask
    if isinstance(expr, ast.InList):
        operand = evaluate(expr.operand, batch, context)
        result = np.zeros(len(batch), dtype=bool)
        for item in expr.items:
            result |= compare(operand, evaluate(item, batch, context), "=")
        return ~result & ~is_null_mask(operand) if expr.negated else result
    if isinstance(expr, ast.Between):
        operand = evaluate(expr.operand, batch, context)
        low = evaluate(expr.low, batch, context)
        high = evaluate(expr.high, batch, context)
        inside = compare(operand, low, ">=") & compare(operand, high, "<=")
        if expr.negated:
            return ~inside & ~is_null_mask(operand)
        return inside
    if isinstance(expr, ast.CaseWhen):
        return _evaluate_case(expr, batch, context)
    if isinstance(expr, ast.FunctionCall):
        if context.functions is None:
            raise ExpressionError(f"no function registry for {expr.name}")
        args = [evaluate(arg, batch, context) for arg in expr.args]
        return context.functions.call(expr.name, args, len(batch), context)
    if isinstance(expr, ast.Star):
        raise ExpressionError("'*' is only valid in a select list or COUNT(*)")
    raise ExpressionError(f"cannot evaluate expression node {type(expr).__name__}")


def _evaluate_binary(expr: ast.BinaryOp, batch: Batch, context: ExecutionContext) -> np.ndarray:
    op = expr.op
    if op == "AND":
        left = np.asarray(evaluate(expr.left, batch, context), dtype=bool)
        if not left.any():
            return left
        right = np.asarray(evaluate(expr.right, batch, context), dtype=bool)
        return left & right
    if op == "OR":
        left = np.asarray(evaluate(expr.left, batch, context), dtype=bool)
        right = np.asarray(evaluate(expr.right, batch, context), dtype=bool)
        return left | right

    left = evaluate(expr.left, batch, context)
    right = evaluate(expr.right, batch, context)
    if op in _COMPARE:
        return compare(left, right, op)
    if op == "LIKE":
        pattern_values = right
        out = np.zeros(len(batch), dtype=bool)
        compiled: dict[str, re.Pattern[str]] = {}
        for index in range(len(batch)):
            value = _to_python(left[index])
            pattern = _to_python(pattern_values[index])
            if value is None or pattern is None:
                continue
            regex = compiled.get(pattern)
            if regex is None:
                regex = _like_to_regex(pattern)
                compiled[pattern] = regex
            out[index] = regex.match(str(value)) is not None
        return out
    if op == "||":
        out = np.empty(len(batch), dtype=object)
        for index in range(len(batch)):
            a = _to_python(left[index])
            b = _to_python(right[index])
            out[index] = None if a is None or b is None else f"{a}{b}"
        return out
    if op == "/":
        left_f = _as_float(left)
        right_f = _as_float(right)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = left_f / right_f
        result[np.isinf(result)] = np.nan
        return result
    if op in _ARITH:
        if left.dtype == object or right.dtype == object:
            return _object_arith(left, right, op)
        with np.errstate(invalid="ignore"):
            return _ARITH[op](left, right)
    raise ExpressionError(f"unknown binary operator {op!r}")


def _object_arith(left: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    """Arithmetic over object arrays (dates + intervals, None-safe)."""
    func = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "%": lambda a, b: a % b,
    }[op]
    out = np.empty(len(left), dtype=object)
    for index in range(len(left)):
        a = _to_python(left[index])
        b = _to_python(right[index])
        out[index] = None if a is None or b is None else func(a, b)
    return out


def _as_float(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array(
            [np.nan if v is None else float(v) for v in array], dtype=np.float64
        )
    return array.astype(np.float64, copy=False)


def _evaluate_case(expr: ast.CaseWhen, batch: Batch, context: ExecutionContext) -> np.ndarray:
    length = len(batch)
    result = (
        evaluate(expr.otherwise, batch, context)
        if expr.otherwise is not None
        else _broadcast(None, length)
    )
    result = np.asarray(result, dtype=object).copy()
    decided = np.zeros(length, dtype=bool)
    for condition, branch in expr.branches:
        mask = np.asarray(evaluate(condition, batch, context), dtype=bool) & ~decided
        if mask.any():
            values = evaluate(branch, batch, context)
            result[mask] = values[mask]
            decided |= mask
    # try to narrow back to a numeric dtype when possible
    if all(value is None or isinstance(value, (int, float, np.number)) for value in result):
        return np.array(
            [np.nan if v is None else float(v) for v in result], dtype=np.float64
        )
    return result
