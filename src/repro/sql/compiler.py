"""Query compilation: plans become generated Python source.

The paper's SOE "compiles the SQL statement into C code and translates it
into an executable binary format" (Section IV.A, following Dees & Sanders
[11]; Neumann [12] compiles to LLVM). The Python substitute performs the
same structural transformation: the whole operator pipeline is fused into
one generated function — column values land in local variables, predicates
and arithmetic become inline Python expressions, joins become hash-table
probes inside the fused loop, and aggregation accumulates into plain dicts.
No per-tuple AST walking, no operator dispatch.

Compared with the Volcano interpreter (:mod:`repro.sql.volcano`) this is
what "compiled" means here; benchmark E6 measures the gap.

Unsupported plan shapes raise :class:`CompileError`; callers fall back to
the vectorised engine.

**Relation to the adaptive optimizer** (``docs/OPTIMIZER.md``): the
compiler consumes the same feedback-annotated
:class:`~repro.sql.planner.QueryPlan` as the other engines, so a plan
re-ordered from observed cardinalities compiles to a correspondingly
better fused loop. Two deliberate differences: literal values are baked
into the generated source by ``repr``, so compiled functions are *not*
literal-patchable and the plan cache (:mod:`repro.sql.plancache`) caches
logical plans rather than compiled code; and the fused loop has no
per-operator boundary to measure, so compiled execution neither records
cardinality feedback nor triggers mid-query re-optimization — it is the
beneficiary of feedback gathered by the interpreted engines, not a
source of it.
"""

from __future__ import annotations

import re
from typing import Any, Callable

import numpy as np

from repro.columnstore.table import ColumnTable
from repro.errors import SqlError
from repro.sql import ast
from repro.sql.context import ExecutionContext
from repro.sql.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SortNode,
)


class CompileError(SqlError):
    """The plan shape is outside the compiler's supported subset."""


def _sanitise(name: str) -> str:
    return re.sub(r"[^0-9A-Za-z_]", "_", name)


def _is_non_null_literal(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Literal) and expr.value is not None


class _Emitter:
    """Indented source-line collector."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines)


class _ExprCompiler:
    """Translate expression ASTs to Python source fragments."""

    def __init__(self, env: dict[str, str], constants: dict[str, Any]) -> None:
        self.env = env  # qualified column name -> local variable
        self.constants = constants

    def _const(self, value: Any) -> str:
        name = f"_k{len(self.constants)}"
        self.constants[name] = value
        return name

    def compile(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Literal):
            if expr.value is None or isinstance(expr.value, (bool, int, float)):
                return repr(expr.value)
            if isinstance(expr.value, str):
                return repr(expr.value)
            return self._const(expr.value)
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr)
        if isinstance(expr, ast.UnaryOp):
            inner = self.compile(expr.operand)
            if expr.op == "NOT":
                return f"(not ({inner}))"
            return f"_neg({inner})"
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.IsNull):
            inner = self.compile(expr.operand)
            return f"(({inner}) is not None)" if expr.negated else f"(({inner}) is None)"
        if isinstance(expr, ast.InList):
            operand = self.compile(expr.operand)
            items = ", ".join(self.compile(item) for item in expr.items)
            test = f"_in({operand}, ({items},))"
            return f"(not {test})" if expr.negated else test
        if isinstance(expr, ast.Between):
            operand = self.compile(expr.operand)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            test = f"_between({operand}, {low}, {high})"
            return f"(not {test})" if expr.negated else test
        if isinstance(expr, ast.CaseWhen):
            result = (
                self.compile(expr.otherwise) if expr.otherwise is not None else "None"
            )
            for condition, branch in reversed(expr.branches):
                result = f"({self.compile(branch)} if ({self.compile(condition)}) else {result})"
            return result
        if isinstance(expr, ast.FunctionCall):
            if expr.name in ast.AGGREGATE_FUNCTIONS:
                raise CompileError("aggregate call outside aggregation stage")
            args = ", ".join(self.compile(arg) for arg in expr.args)
            return f"_call({expr.name!r}, ({args},))" if expr.args else f"_call({expr.name!r}, ())"
        raise CompileError(f"cannot compile expression {type(expr).__name__}")

    def _resolve(self, ref: ast.ColumnRef) -> str:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            if key in self.env:
                return self.env[key]
            raise CompileError(f"unknown column {key}")
        if ref.name in self.env:
            return self.env[ref.name]
        matches = [key for key in self.env if key.endswith(f".{ref.name}")]
        if len(matches) == 1:
            return self.env[matches[0]]
        raise CompileError(f"cannot resolve column {ref.name!r}")

    def _binary(self, expr: ast.BinaryOp) -> str:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op
        if op == "AND":
            return f"(({left}) and ({right}))"
        if op == "OR":
            return f"(({left}) or ({right}))"
        if op in ("=", "<>", "<", "<=", ">", ">="):
            python_op = {"=": "==", "<>": "!="}.get(op, op)
            guards = []
            if not _is_non_null_literal(expr.left):
                guards.append(f"({left}) is not None")
            if not _is_non_null_literal(expr.right):
                guards.append(f"({right}) is not None")
            guards.append(f"({left}) {python_op} ({right})")
            return f"({' and '.join(guards)})"
        if op == "LIKE":
            if isinstance(expr.right, ast.Literal) and isinstance(expr.right.value, str):
                pattern = re.escape(expr.right.value).replace("%", ".*").replace("_", ".")
                regex = self._const(re.compile(f"^{pattern}$", re.DOTALL))
                return f"(({left}) is not None and {regex}.match(str({left})) is not None)"
            raise CompileError("LIKE requires a literal pattern")
        if op == "||":
            return f"_concat({left}, {right})"
        helper = {"+": "_add", "-": "_sub", "*": "_mul", "/": "_div", "%": "_mod"}.get(op)
        if helper is None:
            raise CompileError(f"unknown operator {op!r}")
        return f"{helper}({left}, {right})"


_RUNTIME_HELPERS = """
def _add(a, b):
    return None if a is None or b is None else a + b
def _sub(a, b):
    return None if a is None or b is None else a - b
def _mul(a, b):
    return None if a is None or b is None else a * b
def _div(a, b):
    return None if a is None or b is None or b == 0 else a / b
def _mod(a, b):
    return None if a is None or b is None or b == 0 else a % b
def _neg(a):
    return None if a is None else -a
def _concat(a, b):
    return None if a is None or b is None else str(a) + str(b)
def _in(value, items):
    return value is not None and value in items
def _between(value, low, high):
    return value is not None and low is not None and high is not None and low <= value <= high
"""


class CompiledQuery:
    """A compiled plan: generated source plus a ready-to-call function."""

    def __init__(self, source: str, function: Callable[[ExecutionContext], list[list[Any]]], output_names: list[str]) -> None:
        self.source = source
        self._function = function
        self.output_names = output_names

    def run(self, context: ExecutionContext) -> list[list[Any]]:
        """Execute the compiled query."""
        return self._function(context)


def compile_plan(plan: QueryPlan, context: ExecutionContext) -> CompiledQuery:
    """Generate and compile Python code for ``plan``."""
    compiler = _PlanCompiler(plan, context)
    return compiler.build()


class _PlanCompiler:
    def __init__(self, plan: QueryPlan, context: ExecutionContext) -> None:
        self.plan = plan
        self.context = context
        self.emitter = _Emitter()
        self.constants: dict[str, Any] = {}
        self._var_counter = 0

    def _fresh(self, prefix: str) -> str:
        self._var_counter += 1
        return f"_{prefix}{self._var_counter}"

    # -- plan-shape analysis -------------------------------------------------

    def build(self) -> CompiledQuery:
        node = self.plan.root
        limit: LimitNode | None = None
        sort: SortNode | None = None
        distinct = False
        if isinstance(node, LimitNode):
            limit = node
            node = node.child
        if isinstance(node, SortNode):
            sort = node
            node = node.child
        if isinstance(node, DistinctNode):
            distinct = True
            node = node.child
        if not isinstance(node, ProjectNode):
            raise CompileError("expected a projection at the top of the plan")
        project = node
        node = project.child

        having: FilterNode | None = None
        aggregate: AggregateNode | None = None
        if isinstance(node, FilterNode) and isinstance(node.child, AggregateNode):
            having = node
            node = node.child
        if isinstance(node, AggregateNode):
            aggregate = node
            node = node.child

        residual_filters: list[ast.Expr] = []
        while isinstance(node, FilterNode):
            residual_filters.append(node.predicate)
            node = node.child

        driver, joins = self._flatten_joins(node)

        emitter = self.emitter
        emitter.emit("def _compiled(context):")
        emitter.depth += 1
        emitter.emit("db = context.database")

# build hash tables for join right sides
        join_tables: list[tuple[JoinNode, str, list[str]]] = []
        for join in joins:
            table_var, right_env = self._emit_build_side(join)
            join_tables.append((join, table_var, list(right_env)))

        # aggregation state / output list
        if aggregate is not None:
            emitter.emit("_groups = {}")
        else:
            emitter.emit("_out = []")

        # the fused driver loop
        driver_env = self._emit_scan_loop(driver)
        env = dict(driver_env)

        depth_after_probes = emitter.depth
        for join, table_var, right_keys in join_tables:
            env = self._emit_probe(join, table_var, right_keys, env)
            depth_after_probes = emitter.depth

        expr_compiler = _ExprCompiler(env, self.constants)
        for predicate in residual_filters:
            emitter.emit(f"if not ({expr_compiler.compile(predicate)}):")
            emitter.depth += 1
            emitter.emit("continue")
            emitter.depth -= 1

        if aggregate is not None:
            self._emit_accumulate(aggregate, expr_compiler)
        else:
            self._emit_projection_row(project, expr_compiler)

        # close all loop bodies
        emitter.depth = 1

        if aggregate is not None:
            self._emit_group_epilogue(aggregate, having, project)

        self._emit_epilogue(project, distinct, sort, limit)
        emitter.emit("return _out")
        emitter.depth -= 1

        source = _RUNTIME_HELPERS + "\n" + emitter.source()
        namespace: dict[str, Any] = {"np": np}
        namespace.update(self.constants)
        namespace["_call"] = self._make_call_helper()
        exec(compile(source, "<compiled-query>", "exec"), namespace)  # noqa: S102
        return CompiledQuery(source, namespace["_compiled"], self.plan.output_names)

    def _make_call_helper(self) -> Callable[[str, tuple], Any]:
        registry = self.context.functions
        context = self.context

        def _call(name: str, args: tuple) -> Any:
            arrays = [np.asarray([value], dtype=object) for value in args]
            result = registry.call(name, arrays, 1, context)
            value = result[0]
            if isinstance(value, np.generic):
                value = value.item()
            if isinstance(value, float) and value != value:
                return None
            return value

        return _call

    def _flatten_joins(self, node: PlanNode) -> tuple[ScanNode, list[JoinNode]]:
        joins: list[JoinNode] = []
        while isinstance(node, JoinNode):
            if node.kind not in ("inner", "left"):
                raise CompileError(f"cannot compile {node.kind} join")
            if not node.equi:
                raise CompileError("cannot compile non-equi join")
            if not isinstance(node.right, ScanNode):
                raise CompileError("join build side must be a base-table scan")
            joins.append(node)
            node = node.left
        if not isinstance(node, ScanNode):
            raise CompileError(f"driver must be a base-table scan, got {type(node).__name__}")
        if not node.table:
            raise CompileError("cannot compile FROM-less select")
        joins.reverse()
        return node, joins

    # -- code emission ------------------------------------------------------------

    def _scan_columns(self, scan: ScanNode) -> tuple[str, dict[str, str]]:
        """Emit column materialisation for a scan; returns (rowvar, env)."""
        table = self.context.database.catalog.table(scan.table)
        if not isinstance(table, ColumnTable):
            raise CompileError("compiler supports column tables only")
        const = f"_tbl_{_sanitise(scan.alias)}"
        self.constants[const] = table
        env = {
            f"{scan.alias}.{name.lower()}": f"v_{_sanitise(scan.alias)}_{_sanitise(name.lower())}"
            for name in scan.columns
        }
        return const, env

    def _emit_partition_loop(self, scan: ScanNode, table_const: str, env: dict[str, str]) -> None:
        emitter = self.emitter
        alias = _sanitise(scan.alias)
        emitter.emit(f"for _part_{alias} in {table_const}.partitions:")
        emitter.depth += 1
        emitter.emit(
            f"_pos_{alias} = _part_{alias}.visible_positions(context.snapshot_cid, context.own_tid)"
        )
        for name in scan.columns:
            variable = env[f"{scan.alias}.{name.lower()}"]
            emitter.emit(
                f"_col_{variable} = _part_{alias}.values_at({name.lower()!r}, _pos_{alias})"
            )
        emitter.emit(f"for _i_{alias} in range(len(_pos_{alias})):")
        emitter.depth += 1
        for name in scan.columns:
            variable = env[f"{scan.alias}.{name.lower()}"]
            emitter.emit(f"{variable} = _col_{variable}[_i_{alias}]")
        if scan.predicate is not None:
            expr_compiler = _ExprCompiler(env, self.constants)
            emitter.emit(f"if not ({expr_compiler.compile(scan.predicate)}):")
            emitter.depth += 1
            emitter.emit("continue")
            emitter.depth -= 1

    def _emit_build_side(self, join: JoinNode) -> tuple[str, dict[str, str]]:
        """Materialise the join's right side into a hash table."""
        scan = join.right
        assert isinstance(scan, ScanNode)
        table_const, env = self._scan_columns(scan)
        hash_var = f"_ht_{_sanitise(scan.alias)}"
        emitter = self.emitter
        emitter.emit(f"{hash_var} = {{}}")
        self._emit_partition_loop(scan, table_const, env)
        expr_compiler = _ExprCompiler(env, self.constants)
        key_parts = ", ".join(expr_compiler.compile(right) for _l, right in join.equi)
        emitter.emit(f"_key = ({key_parts},)")
        emitter.emit("if not any(p is None for p in _key):")
        emitter.depth += 1
        values = ", ".join(env[key] for key in env)
        emitter.emit(f"{hash_var}.setdefault(_key, []).append(({values},))")
        emitter.depth -= 1
        emitter.depth -= 2  # close row loop and partition loop
        return hash_var, env

    def _emit_scan_loop(self, scan: ScanNode) -> dict[str, str]:
        table_const, env = self._scan_columns(scan)
        self._emit_partition_loop(scan, table_const, env)
        return env

    def _emit_probe(
        self,
        join: JoinNode,
        hash_var: str,
        right_keys: list[str],
        env: dict[str, str],
    ) -> dict[str, str]:
        emitter = self.emitter
        expr_compiler = _ExprCompiler(env, self.constants)
        key_parts = ", ".join(expr_compiler.compile(left) for left, _r in join.equi)
        scan = join.right
        assert isinstance(scan, ScanNode)
        right_env = {
            key: f"v_{_sanitise(scan.alias)}_{_sanitise(key.split('.', 1)[1])}"
            for key in right_keys
        }
        probe = self._fresh("match")
        emitter.emit(f"_key = ({key_parts},)")
        if join.kind == "inner":
            emitter.emit(f"for {probe} in {hash_var}.get(_key, ()):")
        else:
            none_tuple = ", ".join("None" for _ in right_keys)
            emitter.emit(
                f"for {probe} in ({hash_var}.get(_key) or [({none_tuple},)]):"
            )
        emitter.depth += 1
        for index, key in enumerate(right_keys):
            emitter.emit(f"{right_env[key]} = {probe}[{index}]")
        merged = dict(env)
        merged.update(right_env)
        return merged

    def _agg_states(self, aggregate: AggregateNode) -> list[tuple[ast.FunctionCall, str]]:
        return list(aggregate.aggregates)

    def _emit_accumulate(self, aggregate: AggregateNode, expr_compiler: _ExprCompiler) -> None:
        emitter = self.emitter
        key_parts = ", ".join(expr_compiler.compile(expr) for expr, _n in aggregate.group)
        emitter.emit(f"_k = ({key_parts},)" if aggregate.group else "_k = ()")
        emitter.emit("_st = _groups.get(_k)")
        emitter.emit("if _st is None:")
        emitter.depth += 1
        inits = []
        for call, _name in aggregate.aggregates:
            if call.name == "COUNT" and call.distinct:
                inits.append("set()")
            elif call.name == "COUNT":
                inits.append("0")
            elif call.name == "AVG":
                inits.append("[0.0, 0]")
            else:
                inits.append("None")
        emitter.emit(f"_st = [{', '.join(inits)}]")
        emitter.emit("_groups[_k] = _st")
        emitter.depth -= 1
        for index, (call, _name) in enumerate(aggregate.aggregates):
            name = call.name
            if name == "COUNT" and (not call.args or isinstance(call.args[0], ast.Star)):
                emitter.emit(f"_st[{index}] += 1")
                continue
            value = expr_compiler.compile(call.args[0])
            emitter.emit(f"_v = {value}")
            emitter.emit("if _v is not None:")
            emitter.depth += 1
            if name == "COUNT" and call.distinct:
                emitter.emit(f"_st[{index}].add(_v)")
            elif name == "COUNT":
                emitter.emit(f"_st[{index}] += 1")
            elif name == "SUM":
                emitter.emit(f"_st[{index}] = _v if _st[{index}] is None else _st[{index}] + _v")
            elif name == "AVG":
                emitter.emit(f"_st[{index}][0] += _v")
                emitter.emit(f"_st[{index}][1] += 1")
            elif name == "MIN":
                emitter.emit(
                    f"if _st[{index}] is None or _v < _st[{index}]: _st[{index}] = _v"
                )
            elif name == "MAX":
                emitter.emit(
                    f"if _st[{index}] is None or _v > _st[{index}]: _st[{index}] = _v"
                )
            else:
                raise CompileError(f"unsupported aggregate {name}")
            emitter.depth -= 1

    def _emit_group_epilogue(
        self,
        aggregate: AggregateNode,
        having: FilterNode | None,
        project: ProjectNode,
    ) -> None:
        emitter = self.emitter
        emitter.emit("_out = []")
        emitter.emit("if not _groups and not " + repr(bool(aggregate.group)) + ":")
        emitter.depth += 1
        inits = []
        for call, _name in aggregate.aggregates:
            if call.name == "COUNT" and call.distinct:
                inits.append("set()")
            elif call.name == "COUNT":
                inits.append("0")
            elif call.name == "AVG":
                inits.append("[0.0, 0]")
            else:
                inits.append("None")
        emitter.emit(f"_groups[()] = [{', '.join(inits)}]")
        emitter.depth -= 1
        emitter.emit("for _k, _st in _groups.items():")
        emitter.depth += 1
        env: dict[str, str] = {}
        for index, (_expr, name) in enumerate(aggregate.group):
            variable = f"g_{_sanitise(name)}"
            emitter.emit(f"{variable} = _k[{index}]")
            env[name] = variable
        for index, (call, name) in enumerate(aggregate.aggregates):
            variable = f"a_{_sanitise(name)}"
            if call.name == "AVG":
                emitter.emit(
                    f"{variable} = (_st[{index}][0] / _st[{index}][1]) if _st[{index}][1] else None"
                )
            elif call.name == "COUNT" and call.distinct:
                emitter.emit(f"{variable} = len(_st[{index}])")
            else:
                emitter.emit(f"{variable} = _st[{index}]")
            env[name] = variable
        expr_compiler = _ExprCompiler(env, self.constants)
        if having is not None:
            emitter.emit(f"if not ({expr_compiler.compile(having.predicate)}):")
            emitter.depth += 1
            emitter.emit("continue")
            emitter.depth -= 1
        self._emit_projection_row(project, expr_compiler)
        emitter.depth -= 1

    def _emit_projection_row(self, project: ProjectNode, expr_compiler: _ExprCompiler) -> None:
        parts = ", ".join(
            expr_compiler.compile(expr) for expr, _name in list(project.items) + list(project.hidden)
        )
        self.emitter.emit(f"_out.append([{parts}])")

    def _emit_epilogue(
        self,
        project: ProjectNode,
        distinct: bool,
        sort: SortNode | None,
        limit: LimitNode | None,
    ) -> None:
        emitter = self.emitter
        names = [name for _e, name in list(project.items) + list(project.hidden)]
        if distinct:
            emitter.emit("_seen = set()")
            emitter.emit("_dedup = []")
            emitter.emit("for _row in _out:")
            emitter.depth += 1
            emitter.emit("_key = tuple(_row)")
            emitter.emit("if _key not in _seen:")
            emitter.depth += 1
            emitter.emit("_seen.add(_key)")
            emitter.emit("_dedup.append(_row)")
            emitter.depth -= 2
            emitter.emit("_out = _dedup")
        if sort is not None:
            for name, ascending in reversed(sort.keys):
                index = names.index(name)
                emitter.emit(
                    f"_out.sort(key=lambda r: (r[{index}] is None, r[{index}]), "
                    f"reverse={not ascending})"
                )
        visible = len(project.items)
        if len(names) > visible:
            emitter.emit(f"_out = [r[:{visible}] for r in _out]")
        if limit is not None:
            start = limit.offset or 0
            stop = start + limit.limit if limit.limit is not None else None
            emitter.emit(f"_out = _out[{start}:{stop if stop is not None else ''}]")


def execute_compiled(plan: QueryPlan, context: ExecutionContext) -> list[list[Any]]:
    """Compile and run in one step."""
    return compile_plan(plan, context).run(context)
