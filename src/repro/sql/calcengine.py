"""The Calc Engine: data-flow graphs over relational and external operators.

Figure 2 places a *CalcEngine* beside the OLAP and Join engines; §II.B
explains why it exists: "Access to R is implemented as a special operator
into the internal data flow graph of the database engine allowing the
optimizer to embrace the call to the external system."

A :class:`CalcScenario` is a DAG of named nodes. Sources read tables or
SQL; inner nodes filter, project, join, union, aggregate, run custom
Python row functions, or invoke an external provider
(:mod:`repro.engines.ml.rops`). :meth:`CalcScenario.optimize` performs the
paper's "embrace": filters sitting on top of table sources are folded into
the source's SQL, so *fewer rows ever reach the external operator* — the
optimisation the quoted sentence is about.

All nodes exchange ``(columns, rows)`` pairs; execution is topological and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PlanError

Relation = tuple[list[str], list[list[Any]]]
RowFunction = Callable[[dict[str, Any]], dict[str, Any] | None]

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class CalcNode:
    """One operator in the scenario graph."""

    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)


class CalcScenario:
    """A named data-flow graph executed against one database."""

    def __init__(self, name: str, database: Any) -> None:
        self.name = name
        self.database = database
        self._nodes: dict[str, CalcNode] = {}
        #: filled by execute(): rows flowing out of each node
        self.node_output_rows: dict[str, int] = {}

    # -- graph construction -------------------------------------------------

    def _add(self, node: CalcNode) -> str:
        if node.name in self._nodes:
            raise PlanError(f"calc node {node.name!r} already exists")
        for input_name in node.inputs:
            if input_name not in self._nodes:
                raise PlanError(f"calc node {node.name!r} references unknown input {input_name!r}")
        self._nodes[node.name] = node
        return node.name

    def table_source(self, name: str, table: str, columns: list[str] | None = None) -> str:
        """Read a catalog table (optionally a column subset)."""
        return self._add(CalcNode(name, "table", {"table": table.lower(), "columns": columns}))

    def sql_source(self, name: str, sql: str) -> str:
        """Read the result of an arbitrary SQL query."""
        return self._add(CalcNode(name, "sql", {"sql": sql}))

    def filter(self, name: str, input_name: str, column: str, op: str, value: Any) -> str:
        """Simple predicate: column <op> literal (optimisable into sources)."""
        if op not in _OPS:
            raise PlanError(f"unsupported calc filter operator {op!r}")
        return self._add(
            CalcNode(name, "filter", {"column": column.lower(), "op": op, "value": value}, [input_name])
        )

    def project(self, name: str, input_name: str, columns: list[str]) -> str:
        """Keep (and order) a column subset."""
        return self._add(
            CalcNode(name, "project", {"columns": [c.lower() for c in columns]}, [input_name])
        )

    def python_operator(self, name: str, input_name: str, function: RowFunction) -> str:
        """A custom row-wise operator (returning None drops the row)."""
        return self._add(CalcNode(name, "python", {"function": function}, [input_name]))

    def external_operator(
        self,
        name: str,
        input_name: str,
        provider: Any,
        function: str,
        **parameters: Any,
    ) -> str:
        """Invoke an external analytics provider (the 'R' operator)."""
        return self._add(
            CalcNode(
                name,
                "external",
                {"provider": provider, "function": function, "parameters": parameters},
                [input_name],
            )
        )

    def join(self, name: str, left: str, right: str, left_key: str, right_key: str) -> str:
        """Inner equi join of two nodes."""
        return self._add(
            CalcNode(
                name,
                "join",
                {"left_key": left_key.lower(), "right_key": right_key.lower()},
                [left, right],
            )
        )

    def union(self, name: str, inputs: list[str]) -> str:
        """Positional UNION ALL of several nodes."""
        if len(inputs) < 2:
            raise PlanError("union needs at least two inputs")
        return self._add(CalcNode(name, "union", {}, list(inputs)))

    def aggregate(
        self,
        name: str,
        input_name: str,
        group_by: list[str],
        aggregates: list[tuple[str, str | None]],
    ) -> str:
        """Group-by aggregation (count/sum/min/max/avg)."""
        return self._add(
            CalcNode(
                name,
                "aggregate",
                {
                    "group_by": [c.lower() for c in group_by],
                    "aggregates": [(op, col.lower() if col else None) for op, col in aggregates],
                },
                [input_name],
            )
        )

    # -- the optimiser's "embrace" ----------------------------------------------

    def optimize(self) -> int:
        """Fold filters over table sources into SQL sources.

        Returns the number of filters embraced. After optimisation the
        filtered rows never leave the relational engine — in particular
        they are not shipped to external operators downstream.
        """
        embraced = 0
        changed = True
        while changed:
            changed = False
            for node in list(self._nodes.values()):
                if node.kind != "filter":
                    continue
                source = self._nodes[node.inputs[0]]
                consumers = [
                    other
                    for other in self._nodes.values()
                    if node.inputs[0] in other.inputs and other is not node
                ]
                if consumers:
                    continue  # the source feeds others unfiltered; keep as is
                if source.kind == "table":
                    columns = source.params["columns"]
                    select_list = ", ".join(columns) if columns else "*"
                    source.kind = "sql"
                    source.params = {
                        "sql": f"SELECT {select_list} FROM {source.params['table']}"
                    }
                if source.kind == "sql" and " where " not in source.params["sql"].lower():
                    source.params["sql"] += (
                        f" WHERE {node.params['column']} {node.params['op']} "
                        f"{_sql_literal(node.params['value'])}"
                    )
                else:
                    continue
                # splice the filter out of the graph
                for other in self._nodes.values():
                    other.inputs = [
                        source.name if input_name == node.name else input_name
                        for input_name in other.inputs
                    ]
                del self._nodes[node.name]
                embraced += 1
                changed = True
                break
        return embraced

    # -- execution -----------------------------------------------------------------

    def execute(self, output: str) -> Relation:
        """Run the scenario and return the named node's relation."""
        if output not in self._nodes:
            raise PlanError(f"unknown calc node {output!r}")
        order = self._topological_order()
        results: dict[str, Relation] = {}
        for node in order:
            results[node.name] = self._run_node(node, results)
            self.node_output_rows[node.name] = len(results[node.name][1])
        return results[output]

    def _topological_order(self) -> list[CalcNode]:
        order: list[CalcNode] = []
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise PlanError(f"calc scenario {self.name!r} has a cycle at {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for input_name in self._nodes[name].inputs:
                visit(input_name)
            state[name] = 2
            order.append(self._nodes[name])

        for name in self._nodes:
            visit(name)
        return order

    def _run_node(self, node: CalcNode, results: dict[str, Relation]) -> Relation:
        if node.kind == "table":
            columns = node.params["columns"]
            select_list = ", ".join(columns) if columns else "*"
            result = self.database.execute(f"SELECT {select_list} FROM {node.params['table']}")
            return list(result.columns), result.rows
        if node.kind == "sql":
            result = self.database.execute(node.params["sql"])
            return list(result.columns), result.rows
        if node.kind == "filter":
            columns, rows = results[node.inputs[0]]
            position = columns.index(node.params["column"])
            compare = _OPS[node.params["op"]]
            value = node.params["value"]
            kept = [
                row for row in rows if row[position] is not None and compare(row[position], value)
            ]
            return columns, kept
        if node.kind == "project":
            columns, rows = results[node.inputs[0]]
            positions = [columns.index(name) for name in node.params["columns"]]
            return list(node.params["columns"]), [
                [row[p] for p in positions] for row in rows
            ]
        if node.kind == "python":
            columns, rows = results[node.inputs[0]]
            function: RowFunction = node.params["function"]
            out_rows: list[list[Any]] = []
            out_columns: list[str] | None = None
            for row in rows:
                produced = function(dict(zip(columns, row)))
                if produced is None:
                    continue
                if out_columns is None:
                    out_columns = list(produced)
                out_rows.append([produced[name] for name in out_columns])
            return out_columns or columns, out_rows
        if node.kind == "external":
            columns, rows = results[node.inputs[0]]
            provider = node.params["provider"]
            operator = provider.operator(node.params["function"])
            out_columns, out_rows = operator(columns, rows, **node.params["parameters"])
            return out_columns, out_rows
        if node.kind == "join":
            left_columns, left_rows = results[node.inputs[0]]
            right_columns, right_rows = results[node.inputs[1]]
            left_pos = left_columns.index(node.params["left_key"])
            right_pos = right_columns.index(node.params["right_key"])
            build: dict[Any, list[list[Any]]] = {}
            for row in right_rows:
                if row[right_pos] is not None:
                    build.setdefault(row[right_pos], []).append(row)
            out = []
            for row in left_rows:
                for match in build.get(row[left_pos], ()):
                    out.append(list(row) + list(match))
            return left_columns + right_columns, out
        if node.kind == "union":
            first_columns, _ = results[node.inputs[0]]
            merged: list[list[Any]] = []
            for input_name in node.inputs:
                _cols, rows = results[input_name]
                merged.extend(rows)
            return first_columns, merged
        if node.kind == "aggregate":
            return _aggregate(results[node.inputs[0]], node.params)
        raise PlanError(f"unknown calc node kind {node.kind!r}")


def _aggregate(relation: Relation, params: dict[str, Any]) -> Relation:
    columns, rows = relation
    group_positions = [columns.index(name) for name in params["group_by"]]
    specs = params["aggregates"]
    value_positions = [columns.index(col) if col else None for _op, col in specs]
    groups: dict[tuple, list[Any]] = {}
    for row in rows:
        key = tuple(row[p] for p in group_positions)
        states = groups.get(key)
        if states is None:
            states = [
                0 if op == "count" else [0.0, 0] if op == "avg" else None
                for op, _col in specs
            ]
            groups[key] = states
        for index, (op, _col) in enumerate(specs):
            position = value_positions[index]
            if op == "count" and position is None:
                states[index] += 1
                continue
            value = row[position]
            if value is None:
                continue
            if op == "count":
                states[index] += 1
            elif op == "sum":
                states[index] = value if states[index] is None else states[index] + value
            elif op == "avg":
                states[index][0] += value
                states[index][1] += 1
            elif op == "min":
                states[index] = value if states[index] is None or value < states[index] else states[index]
            elif op == "max":
                states[index] = value if states[index] is None or value > states[index] else states[index]
            else:
                raise PlanError(f"unknown calc aggregate {op!r}")
    out_columns = list(params["group_by"]) + [
        f"{op}_{col}" if col else op for op, col in specs
    ]
    out_rows = []
    for key in sorted(groups, key=lambda k: tuple(map(repr, k))):
        row = list(key)
        for (op, _col), state in zip(specs, groups[key]):
            row.append(state[0] / state[1] if op == "avg" and state[1] else None if op == "avg" else state)
        out_rows.append(row)
    return out_columns, out_rows


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if hasattr(value, "isoformat"):
        return f"DATE '{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
