"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN", "INNER",
    "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "ASC", "DESC", "DISTINCT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
    "DROP", "TABLE", "ROW", "COLUMN", "FLEXIBLE", "PRIMARY", "KEY",
    "DEFAULT", "PARTITION", "PARTITIONS", "BY", "HASH", "RANGE",
    "BOUNDARIES", "TRUE", "FALSE", "DATE", "TIMESTAMP", "WITH",
    "EXISTS", "IF", "UNION", "ALL", "CONTAINS", "MERGE", "DELTA",
    "OF", "VIRTUAL", "AT", "BEGIN", "COMMIT", "ROLLBACK", "WORK",
}

_PUNCT = {
    "(", ")", ",", ".", "*", "+", "-", "/", "%", "=", "<", ">", ";",
    "<=", ">=", "<>", "!=", "||",
}


@dataclass(frozen=True)
class Token:
    """One lexical token. ``kind`` is KEYWORD, IDENT, NUMBER, STRING,
    PUNCT, or EOF; ``value`` is the normalised payload."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "-" and text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch == "/" and text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", index)
            index = end + 2
            continue
        if ch == "'":
            value, index = _read_string(text, index)
            tokens.append(Token("STRING", value, index))
            continue
        if ch == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier", index)
            tokens.append(Token("IDENT", text[index + 1 : end], index))
            index = end + 1
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            start = index
            seen_dot = False
            seen_exp = False
            while index < length:
                current = text[index]
                if current.isdigit():
                    index += 1
                elif current == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    index += 1
                elif current in "eE" and not seen_exp and index > start:
                    seen_exp = True
                    index += 1
                    if index < length and text[index] in "+-":
                        index += 1
                else:
                    break
            tokens.append(Token("NUMBER", text[start:index], start))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        two = text[index : index + 2]
        if two in _PUNCT:
            tokens.append(Token("PUNCT", two, index))
            index += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, index))
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens


def _read_string(text: str, index: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    chars: list[str] = []
    cursor = index + 1
    while cursor < len(text):
        ch = text[cursor]
        if ch == "'":
            if text.startswith("''", cursor):
                chars.append("'")
                cursor += 2
                continue
            return "".join(chars), cursor + 1
        chars.append(ch)
        cursor += 1
    raise SqlSyntaxError("unterminated string literal", index)
