"""Cardinality feedback: observed row counts close the optimizer loop.

**Paper mapping:** the web-scale ambition of the paper rests on the
engine choosing good plans under shifting, skewed workloads (§II.A's
planning layer); the HTAP-survey theme of *adaptive* HTAP engines
(PAPERS.md) is the modern form of the same requirement. **Role in the
query path:** the executors (:mod:`repro.sql.executor`,
:mod:`repro.sql.volcano`) report every scan's and join's *actual* output
row count here; the planner (:mod:`repro.sql.planner`) prefers these
observed cardinalities over its static estimates the next time the same
(table, normalized predicate signature) appears, and the plan cache
(:mod:`repro.sql.plancache`) treats a significant change of an observed
count as staleness, forcing a re-plan.

Three pieces live here:

* **Signatures** — :func:`scan_signature` / :func:`join_signature`
  normalize an operator to a workload-stable key: literals become ``?``,
  alias qualifiers are stripped, conjuncts are sorted. ``status = 'a'``
  and ``status = 'b'`` on the same table share one signature — feedback
  generalises across literal values, exactly like the plan cache's
  query-shape fingerprint.
* **The store** — :class:`CardinalityFeedback` keeps an exponentially
  weighted moving average of observed rows per signature, with a
  monotonically increasing *version* per table that only bumps on
  *significant* change (first observation, or drift beyond
  :data:`SIGNIFICANT_FACTOR`). Steady-state traffic therefore keeps
  cached plans hit-hot while real cardinality shifts invalidate them.
  ``save()``/``load()`` persist the store as JSON.
* **Mid-query re-optimization** — :func:`observe_actual` is the single
  check both engines call when an operator's actual row count is known.
  When the actual exceeds the planner's estimate by more than
  :data:`REPLAN_FACTOR` (and the execution context permits re-planning),
  it raises :class:`ReplanSignal` *after* recording the fresh count, so
  the catcher (``Database._execute_select``) can re-plan the statement
  with the corrected cardinalities and resume — completed scans are
  memoised on ``context.scan_cache`` and are not re-read or re-charged.
"""

from __future__ import annotations

import json
import os
import re
import threading
from typing import TYPE_CHECKING, Any, Iterable

from repro import obs
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.profiler import OperatorProfile
    from repro.sql.context import ExecutionContext

#: actual/estimate ratio beyond which mid-query re-optimization triggers
REPLAN_FACTOR = 10.0

#: observed/previous ratio beyond which a table's feedback version bumps
#: (and dependent plan-cache entries go stale)
SIGNIFICANT_FACTOR = 2.0

#: EWMA weight of the newest observation
SMOOTHING = 0.5

_SCAN_TABLE = re.compile(r"scan:([A-Za-z_0-9]+)")


class ReplanSignal(Exception):
    """Internal control flow: an operator blew past its estimate.

    Raised from the engines' measurement points (never surfaced to
    callers of ``Database.execute``); ``Database._execute_select``
    catches it, re-plans with the fresh feedback, and resumes.
    """

    def __init__(self, signature: str, estimated: float, actual: int) -> None:
        super().__init__(
            f"actual rows {actual} exceed estimate {estimated:.0f} "
            f"by more than {REPLAN_FACTOR:.0f}x for {signature}"
        )
        self.signature = signature
        self.estimated = estimated
        self.actual = actual


# --------------------------------------------------------------------------
# signatures
# --------------------------------------------------------------------------


def normalize_expr(expr: ast.Expr) -> str:
    """Literal-stripped, alias-stripped canonical form of an expression."""
    if isinstance(expr, ast.Literal):
        return "?"
    if isinstance(expr, ast.ColumnRef):
        return expr.name  # drop the alias qualifier: signatures are per table
    if isinstance(expr, ast.BinaryOp):
        return f"({normalize_expr(expr.left)} {expr.op} {normalize_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op} {normalize_expr(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({normalize_expr(expr.operand)} {suffix})"
    if isinstance(expr, ast.InList):
        items = ", ".join(normalize_expr(item) for item in expr.items)
        word = "NOT IN" if expr.negated else "IN"
        return f"({normalize_expr(expr.operand)} {word} ({items}))"
    if isinstance(expr, ast.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({normalize_expr(expr.operand)} {word} "
            f"{normalize_expr(expr.low)} AND {normalize_expr(expr.high)})"
        )
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(normalize_expr(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.CaseWhen):
        branches = " ".join(
            f"WHEN {normalize_expr(c)} THEN {normalize_expr(r)}"
            for c, r in expr.branches
        )
        otherwise = (
            f" ELSE {normalize_expr(expr.otherwise)}" if expr.otherwise is not None else ""
        )
        return f"CASE {branches}{otherwise} END"
    if isinstance(expr, ast.Star):
        return "*"
    return str(expr)


def predicate_signature(predicate: ast.Expr | None) -> str:
    """Order-insensitive signature of a conjunctive predicate."""
    conjuncts = ast.split_conjuncts(predicate)
    if not conjuncts:
        return ""
    return " AND ".join(sorted(normalize_expr(conjunct) for conjunct in conjuncts))


def scan_signature(table: str, predicate: ast.Expr | None) -> str:
    """The feedback key of a base-table scan: table + predicate shape."""
    return f"scan:{table}|{predicate_signature(predicate)}"


def join_signature(
    left_signature: str, right_signature: str, equi: Iterable[tuple[ast.Expr, ast.Expr]]
) -> str:
    """The feedback key of a hash join over two signed inputs."""
    keys = ",".join(
        sorted(f"{normalize_expr(l)}={normalize_expr(r)}" for l, r in equi)
    )
    return f"join:[{left_signature}]*[{right_signature}]|{keys}"


def tables_of_signature(signature: str) -> set[str]:
    """Every base table a (possibly nested join) signature touches."""
    return set(_SCAN_TABLE.findall(signature))


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------


class CardinalityFeedback:
    """Observed row counts per signature, with per-table staleness versions.

    Thread-safe; one instance per :class:`~repro.core.database.Database`.
    """

    def __init__(self, smoothing: float = SMOOTHING) -> None:
        self.smoothing = smoothing
        self._observed: dict[str, float] = {}
        self._samples: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._observed)

    # -- recording ----------------------------------------------------------

    def record(self, signature: str, rows: int | float) -> None:
        """Fold one observed row count into the EWMA for ``signature``.

        Bumps the involved tables' versions only when the observation is
        *significant* — the first sample for the signature, or a drift
        beyond :data:`SIGNIFICANT_FACTOR` — so steady-state traffic does
        not invalidate cached plans.
        """
        rows = float(max(rows, 0))
        with self._lock:
            old = self._observed.get(signature)
            new = rows if old is None else (
                (1.0 - self.smoothing) * old + self.smoothing * rows
            )
            self._observed[signature] = new
            self._samples[signature] = self._samples.get(signature, 0) + 1
            significant = old is None or not (
                1.0 / SIGNIFICANT_FACTOR <= (new + 1.0) / (old + 1.0) <= SIGNIFICANT_FACTOR
            )
            if significant:
                for table in tables_of_signature(signature):
                    self._versions[table] = self._versions.get(table, 0) + 1
        obs.count("sql.feedback.records")
        if significant:
            obs.count("sql.feedback.significant_changes")

    def harvest(self, root: "OperatorProfile") -> int:
        """Record every signed operator of a profile tree (the
        "profiler as feedback source" entry point — see
        ``session.profile``). Returns how many operators were recorded."""
        recorded = 0
        for node in root.walk():
            if node.signature is not None:
                self.record(node.signature, node.rows)
                recorded += 1
        return recorded

    # -- reading ------------------------------------------------------------

    def observed(self, signature: str) -> float | None:
        """The smoothed observed row count, or ``None`` when never seen."""
        with self._lock:
            return self._observed.get(signature)

    def samples(self, signature: str) -> int:
        with self._lock:
            return self._samples.get(signature, 0)

    def table_version(self, table: str) -> int:
        with self._lock:
            return self._versions.get(table, 0)

    def versions(self, tables: Iterable[str]) -> dict[str, int]:
        """Snapshot of the given tables' versions (plan-cache staleness key)."""
        with self._lock:
            return {table: self._versions.get(table, 0) for table in tables}

    # -- invalidation / persistence -----------------------------------------

    def forget_table(self, table: str) -> None:
        """Drop every signature touching ``table`` (DDL invalidation)."""
        with self._lock:
            stale = [
                signature
                for signature in self._observed
                if table in tables_of_signature(signature)
            ]
            for signature in stale:
                del self._observed[signature]
                self._samples.pop(signature, None)
            self._versions[table] = self._versions.get(table, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "observed": dict(self._observed),
                "samples": dict(self._samples),
                "versions": dict(self._versions),
            }

    def save(self, path: str | os.PathLike[str]) -> None:
        """Persist the store as JSON (survives process restarts)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, sort_keys=True, indent=1)

    def load(self, path: str | os.PathLike[str]) -> None:
        """Merge a previously saved store into this one."""
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        with self._lock:
            self._observed.update(payload.get("observed", {}))
            for signature, count in payload.get("samples", {}).items():
                self._samples[signature] = self._samples.get(signature, 0) + int(count)
            for table, version in payload.get("versions", {}).items():
                self._versions[table] = max(self._versions.get(table, 0), int(version))


# --------------------------------------------------------------------------
# the engines' measurement point
# --------------------------------------------------------------------------


def observe_actual(node: Any, rows: int, context: "ExecutionContext") -> None:
    """Record an operator's actual row count; maybe trigger re-optimization.

    Called by both engines wherever an operator's complete output count
    is known (vectorised node boundaries, volcano join-build points).
    Recording happens *before* the :class:`ReplanSignal` is raised so the
    re-plan sees the fresh count. Re-planning is suppressed when the
    context forbids it (``replans_remaining`` exhausted) or when a
    resource governor has already latched degraded — a truncated answer
    must not be thrown away for a better plan it can no longer use.
    """
    signature = getattr(node, "signature", None)
    if signature is None:
        return
    feedback = context.feedback
    if feedback is not None:
        feedback.record(signature, rows)
    estimate = getattr(node, "estimated_rows", None)
    if estimate is None or context.replans_remaining <= 0:
        return
    governor = context.governor
    if governor is not None and governor.should_stop:
        return
    if rows > REPLAN_FACTOR * max(float(estimate), 1.0):
        obs.count("sql.reopt.triggered")
        raise ReplanSignal(signature, float(estimate), rows)
