"""Scalar function registry and the built-in function library.

The registry is the extension point the paper's "business application
specific libraries/extensions in the DB layer" (Section III) plug into:
besides the classical string/math/date functions, it hosts

* ``CONVERT_CURRENCY`` / ``CONVERT_UNIT`` — business logic pushed down into
  the database (the paper's flagship pushdown examples),
* geo functions ``ST_*`` (Section II.F),
* document functions ``DOC_*`` (Section II.H),
* ``CONTAINS`` text matching (Section II.C; the planner swaps in the
  inverted index when one exists),
* hierarchy functions ``HIER_*`` registered by the graph engine at
  database start-up (Section II.E).

Engines register additional functions at runtime via
:meth:`FunctionRegistry.register`.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ExpressionError
from repro.sql.context import ExecutionContext

ScalarImpl = Callable[..., Any]


def narrow_to_array(values: Sequence[Any]) -> np.ndarray:
    """Pack Python values into the tightest supported array dtype."""
    if all(isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=bool)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=np.int64)
    if all(v is None or isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        return np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = value
    return out


def _unbox(value: Any) -> Any:
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and value != value:
        return None
    return value


class FunctionRegistry:
    """Named scalar functions callable from SQL expressions."""

    def __init__(self) -> None:
        self._functions: dict[str, dict[str, Any]] = {}
        register_builtins(self)

    def register(
        self,
        name: str,
        impl: ScalarImpl,
        vectorised: bool = False,
        needs_context: bool = False,
        null_propagates: bool = True,
    ) -> None:
        """Register a function.

        ``vectorised`` implementations receive NumPy arrays (plus the batch
        length and, when ``needs_context``, the :class:`ExecutionContext`)
        and return an array. Scalar implementations receive unboxed Python
        values per row; when ``null_propagates`` any NULL argument makes
        the result NULL without calling the implementation.
        """
        self._functions[name.upper()] = {
            "impl": impl,
            "vectorised": vectorised,
            "needs_context": needs_context,
            "null_propagates": null_propagates,
        }

    def is_registered(self, name: str) -> bool:
        return name.upper() in self._functions

    def call(
        self,
        name: str,
        args: list[np.ndarray],
        length: int,
        context: ExecutionContext,
    ) -> np.ndarray:
        """Apply a registered function over evaluated argument arrays."""
        entry = self._functions.get(name.upper())
        if entry is None:
            raise ExpressionError(f"unknown function {name.upper()}")
        impl = entry["impl"]
        if entry["vectorised"]:
            if entry["needs_context"]:
                return impl(args, length, context)
            return impl(args, length)
        results: list[Any] = []
        propagate = entry["null_propagates"]
        for index in range(length):
            row_args = [_unbox(array[index]) for array in args]
            if propagate and any(value is None for value in row_args):
                results.append(None)
                continue
            if entry["needs_context"]:
                results.append(impl(context, *row_args))
            else:
                results.append(impl(*row_args))
        return narrow_to_array(results)


# --------------------------------------------------------------------------
# built-ins
# --------------------------------------------------------------------------


def register_builtins(registry: FunctionRegistry) -> None:
    """Install the built-in function library into ``registry``."""
    # strings -------------------------------------------------------------
    registry.register("UPPER", lambda s: str(s).upper())
    registry.register("LOWER", lambda s: str(s).lower())
    registry.register("LENGTH", lambda s: len(str(s)))
    registry.register("TRIM", lambda s: str(s).strip())
    registry.register("SUBSTR", _substr)
    registry.register("REPLACE", lambda s, a, b: str(s).replace(str(a), str(b)))
    registry.register("CONCAT", lambda a, b: f"{a}{b}")
    registry.register("INSTR", lambda s, sub: str(s).find(str(sub)) + 1)

    # math ----------------------------------------------------------------
    registry.register("ABS", abs)
    registry.register("ROUND", lambda x, digits=0: round(float(x), int(digits)))
    registry.register("FLOOR", lambda x: math.floor(float(x)))
    registry.register("CEIL", lambda x: math.ceil(float(x)))
    registry.register("SQRT", lambda x: math.sqrt(float(x)))
    registry.register("POWER", lambda x, y: float(x) ** float(y))
    registry.register("MOD", lambda x, y: x % y)
    registry.register("LN", lambda x: math.log(float(x)))
    registry.register("EXP", lambda x: math.exp(float(x)))
    registry.register("SIGN", lambda x: (x > 0) - (x < 0))

    # conditional ------------------------------------------------------------
    registry.register("COALESCE", _coalesce, null_propagates=False)
    registry.register("IFNULL", lambda a, b: a if a is not None else b, null_propagates=False)
    registry.register("NULLIF", lambda a, b: None if a == b else a, null_propagates=False)
    registry.register("LEAST", lambda *xs: min(xs))
    registry.register("GREATEST", lambda *xs: max(xs))

    # conversion --------------------------------------------------------------
    registry.register("TO_DOUBLE", lambda x: float(x))
    registry.register("TO_INT", lambda x: int(float(x)))
    registry.register("TO_VARCHAR", lambda x: str(x))
    registry.register("TO_DATE", _to_date)

    # temporal ------------------------------------------------------------------
    registry.register("YEAR", lambda d: _as_date(d).year)
    registry.register("MONTH", lambda d: _as_date(d).month)
    registry.register("DAY", lambda d: _as_date(d).day)
    registry.register("ADD_DAYS", lambda d, n: _as_date(d) + _dt.timedelta(days=int(n)))
    registry.register("DAYS_BETWEEN", lambda a, b: (_as_date(b) - _as_date(a)).days)
    registry.register(
        "CURRENT_DATE",
        lambda context: context.parameters.get("current_date", _dt.date.today()),
        needs_context=True,
        null_propagates=False,
    )

    # business pushdown (Section III) ----------------------------------------------
    registry.register("CONVERT_CURRENCY", _convert_currency, needs_context=True)
    registry.register("CONVERT_UNIT", _convert_unit, needs_context=True)

    # documents (Section II.H) ---------------------------------------------------
    registry.register("DOC_EXTRACT", _doc_extract)
    registry.register("DOC_MATCH", _doc_match)

    # geo (Section II.F) — implemented by the geo engine, registered here so
    # every database has them without extra wiring.
    registry.register("ST_POINT", _st_point)
    registry.register("ST_DISTANCE", _st_distance)
    registry.register("ST_WITHIN_DISTANCE", _st_within_distance)
    registry.register("ST_CONTAINS", _st_contains)
    registry.register("ST_AREA", _st_area)

    # text (Section II.C) — fallback evaluation; the planner rewrites
    # CONTAINS over an indexed column into an index probe.
    registry.register("CONTAINS", _contains_fallback)


def _substr(s: Any, start: Any, length: Any = None) -> str:
    text = str(s)
    begin = int(start) - 1
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _to_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    return _dt.date.fromisoformat(str(value))


def _as_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    return _dt.date.fromisoformat(str(value))


def _convert_currency(
    context: ExecutionContext, amount: Any, from_currency: Any, to_currency: Any
) -> float:
    """In-database currency conversion (the Section III example).

    Rates come from ``context.parameters['currency_rates']`` — a mapping
    ``(from, to) -> rate`` — or from a catalog table ``currency_rates``
    with columns (from_currency, to_currency, rate).
    """
    if from_currency == to_currency:
        return float(amount)
    rates = context.parameters.get("currency_rates")
    if rates is None:
        rates = _load_rates_from_catalog(context)
        context.parameters["currency_rates"] = rates
    rate = rates.get((from_currency, to_currency))
    if rate is None:
        inverse = rates.get((to_currency, from_currency))
        if inverse:
            rate = 1.0 / inverse
    if rate is None:
        raise ExpressionError(
            f"no conversion rate {from_currency!r} -> {to_currency!r}"
        )
    return float(amount) * rate


def _load_rates_from_catalog(context: ExecutionContext) -> dict[tuple[str, str], float]:
    database = context.database
    if database is None or not database.catalog.has_table("currency_rates"):
        return {}
    table = database.catalog.table("currency_rates")
    rows = table.scan_rows(context.snapshot_cid, context.own_tid,
                           columns=["from_currency", "to_currency", "rate"])
    return {(row[0], row[1]): float(row[2]) for row in rows}


def _convert_unit(context: ExecutionContext, amount: Any, from_unit: Any, to_unit: Any) -> float:
    """Unit conversion via ``context.parameters['unit_factors']``."""
    if from_unit == to_unit:
        return float(amount)
    factors = context.parameters.get("unit_factors", {})
    factor = factors.get((from_unit, to_unit))
    if factor is None:
        inverse = factors.get((to_unit, from_unit))
        factor = 1.0 / inverse if inverse else None
    if factor is None:
        raise ExpressionError(f"no unit factor {from_unit!r} -> {to_unit!r}")
    return float(amount) * factor


def _doc_extract(document: Any, path: Any) -> Any:
    from repro.columnstore.document import doc_extract

    return doc_extract(document, str(path))


def _doc_match(document: Any, path: Any, expected: Any) -> bool:
    from repro.columnstore.document import doc_match

    return doc_match(document, str(path), expected)


def _st_point(x: Any, y: Any) -> str:
    return f"POINT ({float(x)} {float(y)})"


def _geo(value: Any) -> Any:
    from repro.engines.geo.geometry import parse_wkt

    return parse_wkt(value) if isinstance(value, str) else value


def _st_distance(a: Any, b: Any) -> float:
    from repro.engines.geo.operations import distance

    return distance(_geo(a), _geo(b))


def _st_within_distance(a: Any, b: Any, limit: Any) -> bool:
    from repro.engines.geo.operations import within_distance

    return within_distance(_geo(a), _geo(b), float(limit))


def _st_contains(container: Any, contained: Any) -> bool:
    from repro.engines.geo.operations import contains

    return contains(_geo(container), _geo(contained))


def _st_area(geometry: Any) -> float:
    from repro.engines.geo.operations import area

    return area(_geo(geometry))


def _contains_fallback(text: Any, query: Any) -> bool:
    """Token-based CONTAINS used when no inverted index is available."""
    from repro.engines.text.tokenizer import tokenize_terms

    document_tokens = set(tokenize_terms(str(text)))
    query_tokens = tokenize_terms(str(query))
    return bool(query_tokens) and all(token in document_tokens for token in query_tokens)
