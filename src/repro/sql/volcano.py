"""Tuple-at-a-time (Volcano-style) interpreted execution engine.

**Paper mapping:** Section IV.A — the baseline the paper's compilation
argument is made *against*; the SOE compiles queries to native code
precisely to eliminate this per-tuple interpretation overhead (citing
Dees & Sanders [11] and Neumann [12]). **Role in the query path:** an
alternative stage three — it executes the same
:class:`~repro.sql.planner.QueryPlan` as the default vectorised engine
(:mod:`repro.sql.executor`), one row at a time, and exists as the
benchmark E6 baseline rather than a production path.

This is the classical iterator model: every operator is a Python generator
pulling one row at a time from its child, and every expression is
interpreted by walking the AST per row.

Rows are dictionaries keyed by qualified column names (``alias.column``).

**Adaptivity:** streaming operators never know their final row count, so
the engine's one natural materialisation point — the build side of a
hash join in :func:`_iter_join` — doubles as its mid-query
re-optimization checkpoint: the materialised build cardinality is
reported to :func:`repro.sql.feedback.observe_actual`, which records it
in the feedback store and raises
:class:`~repro.sql.feedback.ReplanSignal` on a >10× estimate blow-out
(see ``docs/OPTIMIZER.md``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator

import numpy as np

from repro.columnstore.table import ColumnTable
from repro.errors import ExpressionError, PlanError
from repro.sql import ast
from repro.sql import feedback as fb
from repro.sql.context import ExecutionContext
from repro.sql.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SortNode,
    SubqueryScanNode,
    UnionNode,
)

Row = dict[str, Any]


# --------------------------------------------------------------------------
# per-row expression interpretation
# --------------------------------------------------------------------------


def eval_row(expr: ast.Expr, row: Row, context: ExecutionContext) -> Any:
    """Interpret one expression against one row (NULL-propagating)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return _resolve(row, expr)
    if isinstance(expr, ast.UnaryOp):
        value = eval_row(expr.operand, row, context)
        if expr.op == "NOT":
            return not bool(value)
        return None if value is None else -value
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, row, context)
    if isinstance(expr, ast.IsNull):
        value = eval_row(expr.operand, row, context)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.InList):
        value = eval_row(expr.operand, row, context)
        if value is None:
            return False
        hit = any(eval_row(item, row, context) == value for item in expr.items)
        return (not hit) if expr.negated else hit
    if isinstance(expr, ast.Between):
        value = eval_row(expr.operand, row, context)
        low = eval_row(expr.low, row, context)
        high = eval_row(expr.high, row, context)
        if value is None or low is None or high is None:
            return False
        inside = low <= value <= high
        return (not inside) if expr.negated else inside
    if isinstance(expr, ast.CaseWhen):
        for condition, result in expr.branches:
            if bool(eval_row(condition, row, context)):
                return eval_row(result, row, context)
        return eval_row(expr.otherwise, row, context) if expr.otherwise is not None else None
    if isinstance(expr, ast.FunctionCall):
        if context.functions is None:
            raise ExpressionError(f"no function registry for {expr.name}")
        args = [
            np.asarray([eval_row(arg, row, context)], dtype=object) for arg in expr.args
        ]
        result = context.functions.call(expr.name, args, 1, context)
        value = result[0]
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float) and value != value:
            return None
        return value
    raise ExpressionError(f"cannot interpret {type(expr).__name__}")


def _resolve(row: Row, ref: ast.ColumnRef) -> Any:
    if ref.table is not None:
        return row[f"{ref.table}.{ref.name}"]
    if ref.name in row:
        return row[ref.name]
    matches = [key for key in row if key.endswith(f".{ref.name}")]
    if len(matches) == 1:
        return row[matches[0]]
    raise ExpressionError(f"cannot resolve column {ref.name!r} in row")


def _eval_binary(expr: ast.BinaryOp, row: Row, context: ExecutionContext) -> Any:
    op = expr.op
    if op == "AND":
        return bool(eval_row(expr.left, row, context)) and bool(
            eval_row(expr.right, row, context)
        )
    if op == "OR":
        return bool(eval_row(expr.left, row, context)) or bool(
            eval_row(expr.right, row, context)
        )
    left = eval_row(expr.left, row, context)
    right = eval_row(expr.right, row, context)
    if op == "||":
        return None if left is None or right is None else f"{left}{right}"
    if op == "LIKE":
        if left is None or right is None:
            return False
        pattern = re.escape(str(right)).replace("%", ".*").replace("_", ".")
        return re.match(f"^{pattern}$", str(left), re.DOTALL) is not None
    if left is None or right is None:
        return False if op in ("=", "<>", "<", "<=", ">", ">=") else None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return None if right == 0 else left / right
    if op == "%":
        return None if right == 0 else left % right
    raise ExpressionError(f"unknown operator {op!r}")


# --------------------------------------------------------------------------
# iterator operators
# --------------------------------------------------------------------------


def _iter_node(node: PlanNode, context: ExecutionContext) -> Iterator[Row]:
    if isinstance(node, ScanNode):
        yield from _iter_scan(node, context)
    elif isinstance(node, SubqueryScanNode):
        for row in _iter_node(node.plan, context):
            yield {f"{node.alias}.{key}": value for key, value in row.items()}
    elif isinstance(node, FilterNode):
        for row in _iter_node(node.child, context):
            if bool(eval_row(node.predicate, row, context)):
                yield row
    elif isinstance(node, JoinNode):
        yield from _iter_join(node, context)
    elif isinstance(node, AggregateNode):
        yield from _iter_aggregate(node, context)
    elif isinstance(node, ProjectNode):
        for row in _iter_node(node.child, context):
            out: Row = {}
            for expr, name in list(node.items) + list(node.hidden):
                out[name] = eval_row(expr, row, context)
            yield out
    elif isinstance(node, SortNode):
        rows = list(_iter_node(node.child, context))
        for name, ascending in reversed(node.keys):
            rows.sort(
                key=lambda r, n=name: (r[n] is None, r[n]),
                reverse=not ascending,
            )
        yield from rows
    elif isinstance(node, DistinctNode):
        seen: set[tuple] = set()
        for row in _iter_node(node.child, context):
            key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                yield row
    elif isinstance(node, LimitNode):
        start = node.offset or 0
        stop = start + node.limit if node.limit is not None else None
        for index, row in enumerate(_iter_node(node.child, context)):
            if index < start:
                continue
            if stop is not None and index >= stop:
                break
            yield row
    elif isinstance(node, UnionNode):
        target_names = node.input_names[0]
        seen: set[tuple] = set()
        for input_node, names in zip(node.inputs, node.input_names):
            for row in _iter_node(input_node, context):
                out = {target: row[source] for target, source in zip(target_names, names)}
                if node.distinct:
                    key = tuple(out[name] for name in target_names)
                    if key in seen:
                        continue
                    seen.add(key)
                yield out
    else:
        raise PlanError(f"volcano engine cannot execute {type(node).__name__}")


def _iter_scan(node: ScanNode, context: ExecutionContext) -> Iterator[Row]:
    if not node.table:
        yield {}
        return
    governor = context.governor
    table = context.database.catalog.table(node.table)
    if isinstance(table, ColumnTable):
        for partition in table.partitions:
            if governor is not None and governor.should_stop:
                return
            positions = partition.visible_positions(context.snapshot_cid, context.own_tid)
            columns = {
                name.lower(): partition.values_at(name, positions)
                for name in node.columns
            }
            for index in range(len(positions)):
                if governor is not None and governor.should_stop:
                    return
                row = {
                    f"{node.alias}.{name}": values[index]
                    for name, values in columns.items()
                }
                if node.predicate is None or bool(eval_row(node.predicate, row, context)):
                    yield row
    else:
        names = [name.lower() for name in table.schema.column_names]
        for values in table.scan(context.snapshot_cid, context.own_tid):
            if governor is not None and governor.should_stop:
                return
            row = {f"{node.alias}.{name}": value for name, value in zip(names, values)}
            if node.predicate is None or bool(eval_row(node.predicate, row, context)):
                yield row


def _iter_join(node: JoinNode, context: ExecutionContext) -> Iterator[Row]:
    right_rows = list(_iter_node(node.right, context))
    # the build side is fully materialised here — the volcano engine's
    # checkpoint for feedback recording and mid-query re-optimization.
    # A latched governor means the build may be truncated: a degraded
    # count must not be recorded as a true observed cardinality.
    governor = context.governor
    if governor is None or not governor.should_stop:
        fb.observe_actual(node.right, len(right_rows), context)
    if node.kind == "cross" and not node.equi:
        for left_row in _iter_node(node.left, context):
            for right_row in right_rows:
                merged = dict(left_row)
                merged.update(right_row)
                if node.residual is None or bool(eval_row(node.residual, merged, context)):
                    yield merged
        return
    build: dict[tuple, list[Row]] = {}
    for right_row in right_rows:
        key = tuple(eval_row(expr, right_row, context) for _l, expr in node.equi)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(right_row)
    right_keys = (
        list(right_rows[0].keys()) if right_rows else []
    )
    for left_row in _iter_node(node.left, context):
        key = tuple(eval_row(expr, left_row, context) for expr, _r in node.equi)
        matches = build.get(key, []) if not any(part is None for part in key) else []
        emitted = False
        for right_row in matches:
            merged = dict(left_row)
            merged.update(right_row)
            if node.residual is None or bool(eval_row(node.residual, merged, context)):
                yield merged
                emitted = True
        if node.kind == "left" and not emitted:
            merged = dict(left_row)
            for key_name in right_keys:
                merged[key_name] = None
            yield merged


_AGG_INIT: dict[str, Callable[[], Any]] = {
    "COUNT": lambda: 0,
    "SUM": lambda: None,
    "AVG": lambda: [0.0, 0],
    "MIN": lambda: None,
    "MAX": lambda: None,
}


def _iter_aggregate(node: AggregateNode, context: ExecutionContext) -> Iterator[Row]:
    groups: dict[tuple, list[Any]] = {}
    group_rows: dict[tuple, Row] = {}
    distinct_seen: dict[tuple[tuple, int], set] = {}
    saw_input = False
    for row in _iter_node(node.child, context):
        saw_input = True
        key = tuple(eval_row(expr, row, context) for expr, _name in node.group)
        state = groups.get(key)
        if state is None:
            state = [_AGG_INIT.get(call.name, lambda: None)() for call, _n in node.aggregates]
            groups[key] = state
            group_rows[key] = row
        for index, (call, _name) in enumerate(node.aggregates):
            _accumulate(state, index, call, key, row, context, distinct_seen)

    if not node.group and not saw_input:
        groups[()] = [
            _AGG_INIT.get(call.name, lambda: None)() for call, _n in node.aggregates
        ]
        group_rows[()] = {}

    for key, state in groups.items():
        out: Row = {}
        for (expr, name), value in zip(node.group, key):
            out[name] = value
        for index, (call, name) in enumerate(node.aggregates):
            out[name] = _finalise(state[index], call)
        yield out


def _accumulate(
    state: list[Any],
    index: int,
    call: ast.FunctionCall,
    key: tuple,
    row: Row,
    context: ExecutionContext,
    distinct_seen: dict[tuple[tuple, int], set],
) -> None:
    name = call.name
    if name == "COUNT" and (not call.args or isinstance(call.args[0], ast.Star)):
        state[index] += 1
        return
    value = eval_row(call.args[0], row, context)
    if value is None:
        return
    if name == "COUNT":
        if call.distinct:
            seen = distinct_seen.setdefault((key, index), set())
            if value in seen:
                return
            seen.add(value)
        state[index] += 1
    elif name == "SUM":
        state[index] = value if state[index] is None else state[index] + value
    elif name == "AVG":
        state[index][0] += value
        state[index][1] += 1
    elif name == "MIN":
        if state[index] is None or value < state[index]:
            state[index] = value
    elif name == "MAX":
        if state[index] is None or value > state[index]:
            state[index] = value
    else:
        raise PlanError(f"volcano engine: unsupported aggregate {name}")


def _finalise(state: Any, call: ast.FunctionCall) -> Any:
    if call.name == "AVG":
        total, count = state
        return total / count if count else None
    return state


def execute_volcano(plan: QueryPlan, context: ExecutionContext) -> list[list[Any]]:
    """Run a plan tuple-at-a-time; returns output rows.

    When the context carries a :class:`~repro.qos.governor.ResourceGovernor`,
    each yielded row is charged against the query budget — a latched soft
    limit stops the iteration (partial, ``degraded`` answer); a hard limit
    raises :class:`~repro.errors.BudgetExceededError` from ``charge()``.
    """
    governor = context.governor
    rows = []
    for row in _iter_node(plan.root, context):
        out = [row[name] for name in plan.output_names]
        if governor is not None:
            governor.charge(rows=1, bytes_=sum(_row_bytes(value) for value in out))
            if governor.should_stop:
                rows.append(out)
                break
        rows.append(out)
    return rows


def _row_bytes(value: Any) -> int:
    """Cheap per-value size estimate for byte budgets (not sys.getsizeof —
    deterministic across interpreter builds)."""
    if value is None:
        return 1
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    return 8
