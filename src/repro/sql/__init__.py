"""The SQL stack: parser, planner, and three execution engines."""

from repro.sql.parser import parse, parse_expression
from repro.sql.planner import plan_select

__all__ = ["parse", "parse_expression", "plan_select"]
