"""Plan cache: skip planning entirely for repeated query *shapes*.

**Paper mapping:** HANA's front door compiles a statement once and
reuses the plan for every later execution with different parameter
values; caching repeated traffic is the in-memory reuse argument of
*SAP HANA and its performance benefits* (PAPERS.md) and the stated
prerequisite for the front-door session layer (ROADMAP item 3).

**Key idea — shape, not text.** :func:`fingerprint` renders a parsed
statement with every expression literal replaced by ``?`` so that
``... WHERE amount > 100`` and ``... WHERE amount > 250`` share one
cache entry. Two things deliberately stay *verbatim* because the planner
consumes them at plan time (they are part of the plan, not runtime
inputs): ``ORDER BY 2`` positional ordinals, and ``LIMIT``/``OFFSET``
counts.

**Binding.** A cached plan references the cached statement's frozen
:class:`~repro.sql.ast.Literal` leaves by identity (the planner rebuilds
interior expression nodes but never literal leaves). On a hit,
:func:`instantiate` walks the *new* statement in the same deterministic
order as :func:`collect_literals` and builds a *substitution copy* of
the cached plan: only the spine above each literal whose value actually
changed is rebuilt, and every untouched subtree — the entire plan, when
the constants happen to match — is shared with the cached entry. Sharing
is safe because plans are read-only during execution; nothing is ever
mutated, so any number of executions of one shape may run concurrently,
each on its own bound copy. :class:`PlanCache` itself is likewise
thread-safe — lookups, inserts, invalidation, and the counters are
guarded by one lock.

**Invalidation** is two-tier:

* *explicit* — ``invalidate_table()`` on DDL (CREATE/DROP) and on delta
  merge, since a merge changes partition layout and the cost picture;
* *feedback staleness* — each entry snapshots the per-table versions of
  the :class:`~repro.sql.feedback.CardinalityFeedback` store; when a
  table's observed cardinalities change significantly the version moves
  and the entry is re-planned on next lookup.

Hits, misses, evictions, staleness drops, and invalidations are all
counted through :mod:`repro.obs` (``sql.plancache.*``).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sql.feedback import CardinalityFeedback

#: default number of cached plans before LRU eviction
DEFAULT_CAPACITY = 128


# --------------------------------------------------------------------------
# fingerprinting
# --------------------------------------------------------------------------


def _fp_expr(expr: ast.Expr) -> str:
    """Render an expression with literals as ``?`` (shape only)."""
    if isinstance(expr, ast.Literal):
        return "?"
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Star):
        return str(expr)
    if isinstance(expr, ast.BinaryOp):
        return f"({_fp_expr(expr.left)} {expr.op} {_fp_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op} {_fp_expr(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        return f"({_fp_expr(expr.operand)} IS {'NOT ' if expr.negated else ''}NULL)"
    if isinstance(expr, ast.InList):
        items = ", ".join(_fp_expr(item) for item in expr.items)
        return f"({_fp_expr(expr.operand)} {'NOT ' if expr.negated else ''}IN ({items}))"
    if isinstance(expr, ast.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({_fp_expr(expr.operand)} {word} "
            f"{_fp_expr(expr.low)} AND {_fp_expr(expr.high)})"
        )
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(_fp_expr(arg) for arg in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        for condition, result in expr.branches:
            parts.append(f"WHEN {_fp_expr(condition)} THEN {_fp_expr(result)}")
        if expr.otherwise is not None:
            parts.append(f"ELSE {_fp_expr(expr.otherwise)}")
        parts.append("END")
        return " ".join(parts)
    return str(expr)


def _is_ordinal(expr: ast.Expr) -> bool:
    """ORDER BY position ordinals are consumed at plan time, so they are
    part of the query *shape* and are neither wildcarded nor patched.
    ``bool`` is a subclass of ``int`` but TRUE/FALSE are ordinary value
    literals, not positions — they stay patchable like any other."""
    return (
        isinstance(expr, ast.Literal)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
    )


def _fp_order(order_by: list[tuple[ast.Expr, bool]]) -> str:
    keys = ", ".join(
        (str(expr.value) if _is_ordinal(expr) else _fp_expr(expr))
        + (" ASC" if ascending else " DESC")
        for expr, ascending in order_by
    )
    return f" ORDER BY {keys}" if keys else ""


def _fp_table_ref(ref: ast.TableRef) -> str:
    if ref.subquery is not None:
        return f"({fingerprint(ref.subquery)}) AS {ref.alias}"
    return f"{ref.name} AS {ref.alias}"


def _fp_select(statement: ast.SelectStatement) -> str:
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(
        ", ".join(
            _fp_expr(item.expr) + (f" AS {item.alias}" if item.alias else "")
            for item in statement.items
        )
    )
    if statement.from_table is not None:
        parts.append(f"FROM {_fp_table_ref(statement.from_table)}")
    for clause in statement.joins:
        parts.append(f"{clause.kind.upper()} JOIN {_fp_table_ref(clause.table)}")
        if clause.condition is not None:
            parts.append(f"ON {_fp_expr(clause.condition)}")
    if statement.where is not None:
        parts.append(f"WHERE {_fp_expr(statement.where)}")
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(_fp_expr(expr) for expr in statement.group_by)
        )
    if statement.having is not None:
        parts.append(f"HAVING {_fp_expr(statement.having)}")
    text = " ".join(parts) + _fp_order(statement.order_by)
    if statement.limit is not None:
        text += f" LIMIT {statement.limit}"
    if statement.offset is not None:
        text += f" OFFSET {statement.offset}"
    return text


def fingerprint(statement: ast.SelectStatement | ast.UnionStatement) -> str:
    """The normalized query-shape key: literals stripped, structure kept."""
    if isinstance(statement, ast.UnionStatement):
        pieces = [_fp_select(statement.selects[0])]
        for connector_all, select in zip(statement.alls, statement.selects[1:]):
            pieces.append("UNION ALL" if connector_all else "UNION")
            pieces.append(_fp_select(select))
        text = " ".join(pieces) + _fp_order(statement.order_by)
        if statement.limit is not None:
            text += f" LIMIT {statement.limit}"
        if statement.offset is not None:
            text += f" OFFSET {statement.offset}"
        return text
    return _fp_select(statement)


# --------------------------------------------------------------------------
# literal slots
# --------------------------------------------------------------------------


def collect_literals(
    statement: ast.SelectStatement | ast.UnionStatement,
) -> list[ast.Literal]:
    """Every patchable literal leaf, in the deterministic traversal order
    that :func:`fingerprint` renders them (ORDER BY ordinals excluded)."""
    slots: list[ast.Literal] = []

    def expr(node: ast.Expr) -> None:
        if isinstance(node, ast.Literal):
            slots.append(node)
            return
        for child in node.children():
            expr(child)

    def order(order_by: list[tuple[ast.Expr, bool]]) -> None:
        for key, _ascending in order_by:
            if not _is_ordinal(key):
                expr(key)

    def select(stmt: ast.SelectStatement) -> None:
        for item in stmt.items:
            expr(item.expr)
        if stmt.from_table is not None and stmt.from_table.subquery is not None:
            select(stmt.from_table.subquery)
        for clause in stmt.joins:
            if clause.table.subquery is not None:
                select(clause.table.subquery)
            if clause.condition is not None:
                expr(clause.condition)
        if stmt.where is not None:
            expr(stmt.where)
        for key in stmt.group_by:
            expr(key)
        if stmt.having is not None:
            expr(stmt.having)
        order(stmt.order_by)

    if isinstance(statement, ast.UnionStatement):
        for stmt in statement.selects:
            select(stmt)
        order(statement.order_by)
    else:
        select(statement)
    return slots


def plan_tables(root: Any) -> frozenset[str]:
    """Every base table a plan tree scans (duck-typed over plan nodes)."""
    tables: set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        table = getattr(node, "table", None)
        if isinstance(table, str) and table:
            tables.add(table)
        stack.extend(node.children())
    return frozenset(tables)


@dataclass
class PlanEntry:
    """One cached plan plus everything needed to reuse and invalidate it."""

    plan: Any  # a planner PlanNode tree
    slots: list[ast.Literal]  # literal leaves the plan references, in order
    tables: frozenset[str]  # base tables the plan reads
    versions: dict[str, int] = field(default_factory=dict)  # feedback snapshot
    #: ids of the containers between the plan root and each slot literal;
    #: precomputed so :func:`instantiate` rebuilds only this spine
    spine: frozenset[int] | None = None
    #: slot-value fingerprint recorded by ``plancheck.entry_seal`` at
    #: insert; a later mismatch proves the frozen entry was mutated
    seal: tuple | None = None

    def __post_init__(self) -> None:
        if self.spine is None:
            self.spine = slot_spine(self.plan, self.slots)


#: per-dataclass field-name cache for the substitution walk
#: (``None`` marks a non-dataclass type: an opaque leaf)
_FIELDS: dict[type, tuple[str, ...] | None] = {}


def _field_names(cls: type) -> tuple[str, ...] | None:
    names = _FIELDS.get(cls, False)
    if names is False:
        names = (
            tuple(f.name for f in dataclasses.fields(cls))
            if dataclasses.is_dataclass(cls)
            else None
        )
        _FIELDS[cls] = names
    return names


def slot_spine(root: Any, slots: list[ast.Literal]) -> frozenset[int]:
    """ids of every container on a path from ``root`` down to a slot
    literal — the only objects :func:`_substitute` may need to rebuild.
    Computed once when a plan is cached; the ids stay valid because the
    cache entry keeps the whole object graph alive."""
    slot_ids = {id(slot) for slot in slots}
    spine: set[int] = set()

    def walk(value: Any) -> bool:
        if isinstance(value, ast.Literal):
            return id(value) in slot_ids
        if value is None or isinstance(value, (str, int, float)):
            return False
        if isinstance(value, (list, tuple)):
            hit = False
            for item in value:
                hit = walk(item) or hit
        else:
            names = _field_names(type(value))
            if names is None:
                return False
            hit = False
            for name in names:
                hit = walk(getattr(value, name)) or hit
        if hit:
            spine.add(id(value))
        return hit

    walk(root)
    return frozenset(spine)


def _substitute(value: Any, mapping: dict[int, ast.Literal], spine: frozenset[int]) -> Any:
    """Structure-sharing substitution over a plan (or expression) tree.

    Rebuilds only the spine above each literal in ``mapping`` (keyed by
    the *cached* literal's ``id``); every subtree off the precomputed
    ``spine`` is returned as-is and shared with the cached plan — safe
    because plans are read-only during execution.
    """
    if isinstance(value, ast.Literal):
        return mapping.get(id(value), value)
    if id(value) not in spine:
        return value
    if isinstance(value, list):
        rebuilt_list = [_substitute(item, mapping, spine) for item in value]
        if all(new is old for new, old in zip(rebuilt_list, value)):
            return value
        return rebuilt_list
    if isinstance(value, tuple):
        rebuilt_tuple = tuple(_substitute(item, mapping, spine) for item in value)
        if all(new is old for new, old in zip(rebuilt_tuple, value)):
            return value
        return rebuilt_tuple
    names = _field_names(type(value))
    if names is None:  # unreachable for spine members, but stay safe
        return value
    changes: dict[str, Any] = {}
    for name in names:
        old = getattr(value, name)
        new = _substitute(old, mapping, spine)
        if new is not old:
            changes[name] = new
    if not changes:
        return value
    # shallow clone without __init__/dataclasses.replace overhead — also
    # sidesteps frozen-dataclass __setattr__ for the AST expression nodes
    clone = object.__new__(type(value))
    clone.__dict__.update(value.__dict__)
    clone.__dict__.update(changes)
    return clone


def instantiate(
    entry: PlanEntry, statement: ast.SelectStatement | ast.UnionStatement
) -> Any | None:
    """A per-execution view of the cached plan, bound to ``statement``.

    Literal slots whose values differ from the cached ones are replaced
    by the new statement's literal leaves via :func:`_substitute`; when
    every constant matches, the cached plan is returned directly (it is
    read-only during execution, so sharing is safe — the cached entry is
    never mutated either way, and concurrent executions of the same
    shape never see each other's values). Returns ``None`` (treat as a
    miss) when the slot layouts disagree, which would mean two different
    shapes collided on one fingerprint.
    """
    fresh = collect_literals(statement)
    if len(fresh) != len(entry.slots):
        return None
    mapping = {
        id(slot): source
        for slot, source in zip(entry.slots, fresh)
        if type(slot.value) is not type(source.value) or slot.value != source.value
    }
    if not mapping:
        return entry.plan
    return _substitute(entry.plan, mapping, entry.spine or frozenset())


# --------------------------------------------------------------------------
# the cache
# --------------------------------------------------------------------------


class PlanCache:
    """A bounded LRU of compiled plans keyed by query-shape fingerprint.

    Thread-safe: the entry map and the counters are guarded by one lock,
    so concurrent sessions on one database may look up, insert, and
    invalidate freely. Entries themselves are immutable after ``put`` —
    executions bind literals into private copies via :func:`instantiate`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, PlanEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str, feedback: "CardinalityFeedback | None" = None) -> PlanEntry | None:
        """Look up a plan; drops and misses entries whose feedback snapshot
        no longer matches (the table's observed cardinalities moved)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and feedback is not None:
                if feedback.versions(entry.tables) != entry.versions:
                    del self._entries[key]
                    self.stale += 1
                    obs.count("sql.plancache.stale")
                    entry = None
            if entry is None:
                self.misses += 1
                obs.count("sql.plancache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            obs.count("sql.plancache.hits")
            return entry

    def put(self, key: str, entry: PlanEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs.count("sql.plancache.evictions")

    def invalidate_table(self, table: str) -> int:
        """Drop every entry reading ``table`` (DDL / delta-merge hook)."""
        with self._lock:
            victims = [
                key for key, entry in self._entries.items() if table in entry.tables
            ]
            for key in victims:
                del self._entries[key]
            if victims:
                self.invalidations += len(victims)
                obs.count("sql.plancache.invalidations", len(victims))
            return len(victims)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "stale": self.stale,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }
