"""Logical planning: SELECT statements become operator trees.

**Paper mapping:** Section II.A / Figure 2 — the planning layer between
the common SQL frontend and the specialised execution engines; the
"exploit application knowledge" rewrites of Section III surface here as
scan annotations. **Role in the query path:** stage two of parse → plan
→ execute; :func:`plan_select` consumes the AST from
:mod:`repro.sql.parser` and hands a :class:`QueryPlan` to one of the
three engines (:mod:`repro.sql.executor`, :mod:`repro.sql.volcano`,
:mod:`repro.sql.compiler`). The same plan-node tree is what
``session.profile(sql)`` annotates with measured rows and wall time
(see :mod:`repro.obs.profiler`).

The planner performs the classical rule-based rewrites the paper's
execution engines rely on:

* conjunct splitting and **predicate pushdown** to the owning source,
* turning cross joins plus equality predicates into **equi hash joins**,
* aggregate extraction (group keys and aggregate calls become named
  columns; HAVING and post-aggregate arithmetic are rewritten over them),
* hidden sort columns so ORDER BY may reference non-projected expressions.

Partition pruning (range bounds plus the semantic aging rules of
Section III) and CONTAINS-index probes are *annotated* on scan nodes here
and resolved by the executors, which have access to live table state.

Since PR 6 the planner is also **cost- and feedback-aware** (see
``docs/OPTIMIZER.md`` for the full pipeline):

* every :class:`ScanNode` and :class:`JoinNode` carries an
  ``estimated_rows`` cardinality (catalog row counts × per-conjunct
  selectivity heuristics) and a workload-stable ``signature`` from
  :mod:`repro.sql.feedback`;
* when :func:`plan_select` is given a
  :class:`~repro.sql.feedback.CardinalityFeedback` store, *observed*
  row counts override the static estimates, and inner/cross join chains
  are **greedily reordered** smallest-estimate-first (connected
  relations preferred so equi joins stay hash joins);
* the executors compare ``estimated_rows`` with actuals at run time and
  trigger mid-query re-optimization on a >10× blow-out
  (:func:`repro.sql.feedback.observe_actual`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Any

from repro import obs
from repro.errors import PlanError, TableNotFoundError
from repro.sql import ast
from repro.sql import feedback as fb


# --------------------------------------------------------------------------
# plan nodes
# --------------------------------------------------------------------------


class PlanNode:
    """Base class of logical/physical plan nodes."""

    def children(self) -> list["PlanNode"]:
        return []


@dataclass
class ScanNode(PlanNode):
    """Scan of a base table with pushed-down conjuncts.

    ``estimated_rows``/``signature`` feed the adaptive loop: the engines
    compare actual output counts against the estimate (mid-query
    re-optimization) and record them in the feedback store under the
    signature.
    """

    table: str
    alias: str
    columns: list[str]
    predicate: ast.Expr | None = None
    estimated_rows: float | None = None
    signature: str | None = None

    def children(self) -> list[PlanNode]:
        return []


@dataclass
class SubqueryScanNode(PlanNode):
    """A derived table: the inner plan's outputs re-qualified as alias.*."""

    plan: PlanNode
    alias: str
    columns: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.plan]


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: ast.Expr

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class JoinNode(PlanNode):
    """Hash join; ``equi`` pairs (left expr, right expr), plus residual."""

    left: PlanNode
    right: PlanNode
    kind: str  # "inner" | "left" | "cross"
    equi: list[tuple[ast.Expr, ast.Expr]] = field(default_factory=list)
    residual: ast.Expr | None = None
    estimated_rows: float | None = None
    signature: str | None = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


@dataclass
class AggregateNode(PlanNode):
    """Group-by aggregation producing named group and aggregate columns."""

    child: PlanNode
    group: list[tuple[ast.Expr, str]]
    aggregates: list[tuple[ast.FunctionCall, str]]

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class ProjectNode(PlanNode):
    """Computes output columns; hidden items carry sort keys."""

    child: PlanNode
    items: list[tuple[ast.Expr, str]]
    hidden: list[tuple[ast.Expr, str]] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class SortNode(PlanNode):
    """Sort by already-materialised output columns."""

    child: PlanNode
    keys: list[tuple[str, bool]]  # (column name, ascending)

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int | None
    offset: int | None

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class UnionNode(PlanNode):
    """Concatenate child plans positionally; optional duplicate removal."""

    inputs: list[PlanNode]
    input_names: list[list[str]]
    distinct: bool

    def children(self) -> list[PlanNode]:
        return list(self.inputs)


@dataclass
class QueryPlan:
    """Root of a planned SELECT: the tree plus visible output names."""

    root: PlanNode
    output_names: list[str]


# --------------------------------------------------------------------------
# planner
# --------------------------------------------------------------------------


#: fallback cardinality when the catalog cannot answer (e.g. derived tables)
DEFAULT_ROW_ESTIMATE = 1000.0

#: rough textbook selectivities per conjunct shape
_RANGE_OPS = {"<", "<=", ">", ">="}


def _selectivity(conjunct: ast.Expr) -> float:
    """Static selectivity heuristic for one pushed-down conjunct."""
    if isinstance(conjunct, ast.BinaryOp):
        if conjunct.op == "=":
            return 0.15
        if conjunct.op in _RANGE_OPS:
            return 0.40
        if conjunct.op in ("!=", "<>"):
            return 0.85
        if conjunct.op == "LIKE":
            return 0.25
    if isinstance(conjunct, ast.Between):
        return 0.30
    if isinstance(conjunct, ast.InList):
        return min(0.15 * max(len(conjunct.items), 1), 0.5)
    if isinstance(conjunct, ast.IsNull):
        return 0.9 if conjunct.negated else 0.1
    return 0.5


class CatalogView:
    """The planner's minimal view of the catalog: columns and row counts."""

    def __init__(self, catalog: Any) -> None:
        self._catalog = catalog

    def columns_of(self, table: str) -> list[str]:
        if self._catalog is None or not self._catalog.has_table(table):
            raise TableNotFoundError(table)
        return [name.lower() for name in self._catalog.table(table).schema.column_names]

    def row_count_of(self, table: str) -> float:
        """Catalog cardinality for the static estimate; safe fallback."""
        if self._catalog is None or not self._catalog.has_table(table):
            return DEFAULT_ROW_ESTIMATE
        obj = self._catalog.table(table)
        partitions = getattr(obj, "partitions", None)
        if partitions is not None:
            # physical main+delta rows; dead versions inflate this a
            # little, which is acceptable for a planning estimate
            return float(sum(len(partition) for partition in partitions))
        try:
            return float(len(obj))
        except TypeError:  # a table object without __len__ (e.g. virtual)
            obs.count("sql.planner.rowcount_fallbacks")
            return DEFAULT_ROW_ESTIMATE


def plan_select(
    statement: "ast.SelectStatement | ast.UnionStatement",
    catalog: Any,
    feedback: "fb.CardinalityFeedback | None" = None,
) -> QueryPlan:
    """Plan a SELECT or UNION statement against the given catalog.

    With a ``feedback`` store the planner prefers observed cardinalities
    over its static estimates and may reorder inner-join chains.
    """
    if isinstance(statement, ast.UnionStatement):
        return _plan_union(statement, catalog, feedback)
    return _Planner(CatalogView(catalog), feedback).plan(statement)


def _plan_union(
    statement: ast.UnionStatement,
    catalog: Any,
    feedback: "fb.CardinalityFeedback | None" = None,
) -> QueryPlan:
    plans = [plan_select(select, catalog, feedback) for select in statement.selects]
    arity = len(plans[0].output_names)
    for plan in plans[1:]:
        if len(plan.output_names) != arity:
            raise PlanError(
                f"UNION branches have different column counts: "
                f"{arity} vs {len(plan.output_names)}"
            )
    # SQL semantics: plain UNION anywhere in the chain de-duplicates the
    # whole result; UNION ALL everywhere keeps duplicates.
    distinct = not all(statement.alls)
    output_names = plans[0].output_names
    tree: PlanNode = UnionNode(
        inputs=[plan.root for plan in plans],
        input_names=[plan.output_names for plan in plans],
        distinct=distinct,
    )
    sort_keys: list[tuple[str, bool]] = []
    for expr, ascending in statement.order_by:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= arity:
                raise PlanError(f"ORDER BY ordinal {ordinal} out of range")
            sort_keys.append((output_names[ordinal - 1], ascending))
        elif isinstance(expr, ast.ColumnRef) and expr.name in output_names:
            sort_keys.append((expr.name, ascending))
        else:
            raise PlanError(
                "ORDER BY on a UNION must reference an output column or ordinal"
            )
    if sort_keys:
        tree = SortNode(tree, sort_keys)
    if statement.limit is not None or statement.offset is not None:
        tree = LimitNode(tree, statement.limit, statement.offset)
    return QueryPlan(tree, output_names)


class _Planner:
    def __init__(
        self, catalog: CatalogView, feedback: "fb.CardinalityFeedback | None" = None
    ) -> None:
        self._catalog = catalog
        self._feedback = feedback
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"__{prefix}{self._counter}"

    # -- source tree ---------------------------------------------------------

    def plan(self, statement: ast.SelectStatement) -> QueryPlan:
        if statement.from_table is None:
            return self._plan_projection_only(statement)

        statement = self._maybe_reorder_joins(statement)

        sources: dict[str, PlanNode] = {}
        source_order: list[str] = []
        root = self._plan_source(statement.from_table)
        sources[statement.from_table.alias] = root
        source_order.append(statement.from_table.alias)

        pending_joins: list[ast.JoinClause] = list(statement.joins)
        conjuncts = ast.split_conjuncts(statement.where)

        # 1. push single-source conjuncts down to their source
        remaining: list[ast.Expr] = []
        pushed: dict[str, list[ast.Expr]] = {alias: [] for alias in source_order}
        for clause in pending_joins:
            pushed[clause.table.alias] = []
        for conjunct in conjuncts:
            aliases = self._aliases_of(conjunct, statement)
            if len(aliases) == 1:
                pushed.setdefault(next(iter(aliases)), []).append(conjunct)
            else:
                remaining.append(conjunct)

        def finish_source(alias: str, node: PlanNode) -> PlanNode:
            predicate = ast.and_together(pushed.get(alias, []))
            if predicate is None:
                if isinstance(node, ScanNode):
                    self._annotate_scan(node)
                return node
            if isinstance(node, ScanNode):
                node.predicate = (
                    predicate
                    if node.predicate is None
                    else ast.BinaryOp("AND", node.predicate, predicate)
                )
                self._annotate_scan(node)
                return node
            return FilterNode(node, predicate)

        tree: PlanNode = finish_source(statement.from_table.alias, root)
        joined_aliases = {statement.from_table.alias}

        # 2. fold joins left-deep, harvesting equi conditions
        for clause in pending_joins:
            right = finish_source(clause.table.alias, self._plan_source(clause.table))
            equi: list[tuple[ast.Expr, ast.Expr]] = []
            residuals: list[ast.Expr] = []
            join_conjuncts = ast.split_conjuncts(clause.condition)
            kind = clause.kind
            if kind == "cross":
                # try to upgrade using WHERE conjuncts spanning both sides
                upgraded: list[ast.Expr] = []
                for conjunct in remaining:
                    aliases = self._aliases_of(conjunct, statement)
                    if aliases and aliases <= joined_aliases | {clause.table.alias} and clause.table.alias in aliases:
                        upgraded.append(conjunct)
                if upgraded:
                    kind = "inner"
                    join_conjuncts = upgraded
                    remaining = [c for c in remaining if c not in upgraded]
            for conjunct in join_conjuncts:
                pair = self._equi_pair(conjunct, joined_aliases, clause.table.alias, statement)
                if pair is not None:
                    equi.append(pair)
                else:
                    residuals.append(conjunct)
            tree = JoinNode(
                left=tree,
                right=right,
                kind=kind,
                equi=equi,
                residual=ast.and_together(residuals),
            )
            self._annotate_join(tree)
            joined_aliases.add(clause.table.alias)

        # 3. leftover WHERE conjuncts apply above the join tree
        leftover = ast.and_together(remaining)
        if leftover is not None:
            tree = FilterNode(tree, leftover)

        # 4. expand stars now that sources are known
        items = self._expand_items(statement)

        # 5. aggregation
        has_aggregates = bool(statement.group_by) or any(
            ast.contains_aggregate(item.expr) for item in items
        )
        if statement.having is not None and not has_aggregates:
            raise PlanError("HAVING without GROUP BY or aggregates")

        if has_aggregates:
            tree, rewrite = self._plan_aggregate(tree, statement, items)
            items = [
                ast.SelectItem(_rewrite(item.expr, rewrite), item.alias) for item in items
            ]
            having = _rewrite(statement.having, rewrite) if statement.having is not None else None
            if having is not None:
                tree = FilterNode(tree, having)
            order_exprs = [(_rewrite(e, rewrite), asc) for e, asc in statement.order_by]
        else:
            order_exprs = list(statement.order_by)

        # 6. projection with output naming
        named_items = self._name_items(items)
        project = ProjectNode(tree, named_items)
        output_names = [name for _, name in named_items]
        tree = project

        # 7. order by — resolve to output columns, adding hidden ones if needed
        sort_keys: list[tuple[str, bool]] = []
        for expr, ascending in order_exprs:
            name = self._resolve_order_key(expr, named_items)
            if name is None:
                name = self._fresh("sort")
                project.hidden.append((expr, name))
            sort_keys.append((name, ascending))

        if statement.distinct:
            tree = DistinctNode(tree)
        if sort_keys:
            tree = SortNode(tree, sort_keys)
        if statement.limit is not None or statement.offset is not None:
            tree = LimitNode(tree, statement.limit, statement.offset)
        return QueryPlan(tree, output_names)

    # -- cardinality estimates & feedback-driven join order ------------------

    def _static_scan_estimate(self, table: str, conjuncts: list[ast.Expr]) -> float:
        estimate = self._catalog.row_count_of(table)
        for conjunct in conjuncts:
            estimate *= _selectivity(conjunct)
        return max(estimate, 1.0)

    def _annotate_scan(self, node: ScanNode) -> None:
        """Attach signature + cardinality estimate, preferring feedback."""
        if not node.table:
            return
        node.signature = fb.scan_signature(node.table, node.predicate)
        observed = (
            self._feedback.observed(node.signature) if self._feedback is not None else None
        )
        if observed is not None:
            node.estimated_rows = max(observed, 1.0)
        else:
            node.estimated_rows = self._static_scan_estimate(
                node.table, ast.split_conjuncts(node.predicate)
            )

    def _annotate_join(self, node: JoinNode) -> None:
        """Attach signature + estimate; the static rule is ``max(l, r)``
        for equi joins and ``l × r`` for pure cross products."""
        left_rows = getattr(node.left, "estimated_rows", None)
        right_rows = getattr(node.right, "estimated_rows", None)
        left_sig = getattr(node.left, "signature", None)
        right_sig = getattr(node.right, "signature", None)
        if left_sig is not None and right_sig is not None:
            node.signature = fb.join_signature(left_sig, right_sig, node.equi)
        left_rows = left_rows if left_rows is not None else DEFAULT_ROW_ESTIMATE
        right_rows = right_rows if right_rows is not None else DEFAULT_ROW_ESTIMATE
        if node.kind == "cross" and not node.equi:
            estimate = left_rows * right_rows
        else:
            estimate = max(left_rows, right_rows)
        if node.kind == "left":
            estimate = max(estimate, left_rows)
        for conjunct in ast.split_conjuncts(node.residual):
            estimate *= _selectivity(conjunct)
        estimate = max(estimate, 1.0)
        observed = (
            self._feedback.observed(node.signature)
            if self._feedback is not None and node.signature is not None
            else None
        )
        node.estimated_rows = max(observed, 1.0) if observed is not None else estimate

    def _maybe_reorder_joins(self, statement: ast.SelectStatement) -> ast.SelectStatement:
        """Feedback-driven greedy join reordering.

        Only fires when a feedback store is present, at least one base
        relation has an observed cardinality, and every join is inner or
        cross (outer joins are order-sensitive and never reordered).
        Relations are placed smallest-estimate-first, preferring ones
        connected to the already-placed set so equi predicates keep
        turning into hash joins. The reordered statement expresses every
        join as a cross clause with all conjuncts pooled in WHERE — the
        regular pushdown + cross→inner upgrade machinery then re-derives
        the equi joins for the new order.
        """
        feedback = self._feedback
        if feedback is None or statement.from_table is None or not statement.joins:
            return statement
        if any(clause.kind not in ("inner", "cross") for clause in statement.joins):
            return statement
        refs = [statement.from_table] + [clause.table for clause in statement.joins]
        if any(ref.subquery is not None for ref in refs):
            return statement
        if len({ref.alias for ref in refs}) != len(refs):
            return statement

        pool: list[ast.Expr] = list(ast.split_conjuncts(statement.where))
        for clause in statement.joins:
            pool.extend(ast.split_conjuncts(clause.condition))
        try:
            alias_sets = [
                (conjunct, self._aliases_of(conjunct, statement)) for conjunct in pool
            ]
        except PlanError:
            return statement  # regular planning will surface the error

        local: dict[str, list[ast.Expr]] = {ref.alias: [] for ref in refs}
        edges: dict[str, set[str]] = {ref.alias: set() for ref in refs}
        for conjunct, aliases in alias_sets:
            if len(aliases) == 1:
                alias = next(iter(aliases))
                if alias in local:
                    local[alias].append(conjunct)
            else:
                for a in aliases:
                    for b in aliases:
                        if a != b and a in edges and b in edges:
                            edges[a].add(b)

        estimates: dict[str, float] = {}
        informed = False
        for ref in refs:
            assert ref.name is not None
            signature = fb.scan_signature(ref.name, ast.and_together(local[ref.alias]))
            observed = feedback.observed(signature)
            if observed is not None:
                informed = True
                estimates[ref.alias] = max(observed, 1.0)
            else:
                estimates[ref.alias] = self._static_scan_estimate(
                    ref.name, local[ref.alias]
                )
        if not informed:
            return statement  # nothing observed yet: keep the written order

        position = {ref.alias: index for index, ref in enumerate(refs)}

        def rank(ref: ast.TableRef) -> tuple[float, int]:
            return (estimates[ref.alias], position[ref.alias])

        ordered = [min(refs, key=rank)]
        placed = {ordered[0].alias}
        rest = [ref for ref in refs if ref.alias not in placed]
        while rest:
            connected = [ref for ref in rest if edges[ref.alias] & placed]
            nxt = min(connected or rest, key=rank)
            ordered.append(nxt)
            placed.add(nxt.alias)
            rest = [ref for ref in rest if ref.alias != nxt.alias]

        if [ref.alias for ref in ordered] == [ref.alias for ref in refs]:
            return statement
        # hysteresis: only deviate from the written order when the new
        # driver is substantially smaller — near-ties would make repeated
        # executions flip-flop between orders for marginal gain
        if estimates[ordered[0].alias] * 2.0 > estimates[refs[0].alias]:
            return statement
        obs.count("sql.planner.reorders")
        return dataclass_replace(
            statement,
            from_table=ordered[0],
            joins=[
                ast.JoinClause(kind="cross", table=ref, condition=None)
                for ref in ordered[1:]
            ],
            where=ast.and_together(pool),
        )

    def _plan_projection_only(self, statement: ast.SelectStatement) -> QueryPlan:
        """SELECT without FROM: evaluate expressions over one virtual row."""
        items = [item for item in statement.items]
        if any(isinstance(item.expr, ast.Star) for item in items):
            raise PlanError("'*' requires a FROM clause")
        named = self._name_items(items)
        project = ProjectNode(ScanNode(table="", alias="", columns=[]), named)
        return QueryPlan(project, [name for _, name in named])

    def _plan_source(self, ref: ast.TableRef) -> PlanNode:
        if ref.subquery is not None:
            inner = self.plan(ref.subquery)
            return SubqueryScanNode(inner.root, ref.alias, inner.output_names)
        assert ref.name is not None
        columns = self._catalog.columns_of(ref.name)
        return ScanNode(table=ref.name, alias=ref.alias, columns=columns)

    # -- helpers --------------------------------------------------------------

    def _alias_columns(self, statement: ast.SelectStatement) -> dict[str, list[str]]:
        mapping: dict[str, list[str]] = {}
        refs = []
        if statement.from_table is not None:
            refs.append(statement.from_table)
        refs.extend(clause.table for clause in statement.joins)
        for ref in refs:
            if ref.subquery is not None:
                inner_names = self._subquery_output_names(ref.subquery)
                mapping[ref.alias] = inner_names
            else:
                mapping[ref.alias] = self._catalog.columns_of(ref.name or "")
        return mapping

    def _subquery_output_names(self, statement: ast.SelectStatement) -> list[str]:
        items = self._expand_items(statement)
        return [name for _, name in self._name_items(items)]

    def _aliases_of(self, expr: ast.Expr, statement: ast.SelectStatement) -> set[str]:
        """Which sources an expression references."""
        alias_columns = self._alias_columns(statement)
        aliases: set[str] = set()
        for ref in ast.collect_column_refs(expr):
            if ref.table is not None:
                aliases.add(ref.table)
            else:
                owners = [
                    alias for alias, cols in alias_columns.items() if ref.name in cols
                ]
                if len(owners) == 1:
                    aliases.add(owners[0])
                elif len(owners) > 1:
                    raise PlanError(f"ambiguous column {ref.name!r}: {owners}")
        return aliases

    def _equi_pair(
        self,
        conjunct: ast.Expr,
        left_aliases: set[str],
        right_alias: str,
        statement: ast.SelectStatement,
    ) -> tuple[ast.Expr, ast.Expr] | None:
        """Extract (left side, right side) of an equality across the join."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        a_aliases = self._aliases_of(conjunct.left, statement)
        b_aliases = self._aliases_of(conjunct.right, statement)
        if a_aliases and a_aliases <= left_aliases and b_aliases == {right_alias}:
            return conjunct.left, conjunct.right
        if b_aliases and b_aliases <= left_aliases and a_aliases == {right_alias}:
            return conjunct.right, conjunct.left
        return None

    def _expand_items(self, statement: ast.SelectStatement) -> list[ast.SelectItem]:
        alias_columns = self._alias_columns(statement)
        items: list[ast.SelectItem] = []
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                targets = (
                    [item.expr.table]
                    if item.expr.table is not None
                    else list(alias_columns)
                )
                for alias in targets:
                    if alias not in alias_columns:
                        raise PlanError(f"unknown alias {alias!r} in star expansion")
                    for column in alias_columns[alias]:
                        items.append(
                            ast.SelectItem(ast.ColumnRef(column, table=alias), column)
                        )
            else:
                items.append(item)
        return items

    def _name_items(self, items: list[ast.SelectItem]) -> list[tuple[ast.Expr, str]]:
        named: list[tuple[ast.Expr, str]] = []
        used: set[str] = set()
        for index, item in enumerate(items):
            if item.alias:
                name = item.alias.lower()
            elif isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name
            elif isinstance(item.expr, ast.FunctionCall):
                name = item.expr.name.lower()
            else:
                name = f"c{index}"
            base = name
            suffix = 1
            while name in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name)
            named.append((item.expr, name))
        return named

    def _plan_aggregate(
        self,
        tree: PlanNode,
        statement: ast.SelectStatement,
        items: list[ast.SelectItem],
    ) -> tuple[PlanNode, dict[str, ast.Expr]]:
        """Build the AggregateNode and the rewrite map for outer expressions."""
        rewrite: dict[str, ast.Expr] = {}
        group: list[tuple[ast.Expr, str]] = []
        for index, expr in enumerate(statement.group_by):
            name = None
            for item in items:
                if item.alias and str(item.expr) == str(expr):
                    name = item.alias.lower()
                    break
            if name is None:
                name = (
                    expr.name if isinstance(expr, ast.ColumnRef) else f"__g{index}"
                )
            group.append((expr, name))
            rewrite[str(expr)] = ast.ColumnRef(name)

        aggregates: list[tuple[ast.FunctionCall, str]] = []

        def harvest(expr: ast.Expr) -> None:
            if isinstance(expr, ast.FunctionCall) and expr.name in ast.AGGREGATE_FUNCTIONS:
                key = str(expr)
                if key not in rewrite:
                    name = f"__a{len(aggregates)}"
                    aggregates.append((expr, name))
                    rewrite[key] = ast.ColumnRef(name)
                return
            for child in expr.children():
                harvest(child)

        for item in items:
            harvest(item.expr)
        if statement.having is not None:
            harvest(statement.having)
        for expr, _asc in statement.order_by:
            harvest(expr)
        return AggregateNode(tree, group, aggregates), rewrite

    def _resolve_order_key(
        self, expr: ast.Expr, named_items: list[tuple[ast.Expr, str]]
    ) -> str | None:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= len(named_items):
                raise PlanError(f"ORDER BY ordinal {ordinal} out of range")
            return named_items[ordinal - 1][1]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for _item_expr, name in named_items:
                if name == expr.name:
                    return name
        key = str(expr)
        for item_expr, name in named_items:
            if str(item_expr) == key:
                return name
        return None


def _rewrite(expr: ast.Expr | None, mapping: dict[str, ast.Expr]) -> ast.Expr | None:
    """Replace sub-expressions (matched by their string form) per mapping."""
    if expr is None:
        return None
    replacement = mapping.get(str(expr))
    if replacement is not None:
        return replacement
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, mapping), _rewrite(expr.right, mapping))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, mapping))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite(expr.operand, mapping),
            tuple(_rewrite(item, mapping) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _rewrite(expr.operand, mapping),
            _rewrite(expr.low, mapping),
            _rewrite(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(_rewrite(arg, mapping) for arg in expr.args),
            expr.distinct,
        )
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple(
                (_rewrite(cond, mapping), _rewrite(result, mapping))
                for cond, result in expr.branches
            ),
            _rewrite(expr.otherwise, mapping),
        )
    return expr


def explain(plan: QueryPlan) -> str:
    """Readable plan tree for debugging and tests."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        if isinstance(node, ScanNode):
            extra = f" filter={node.predicate}" if node.predicate is not None else ""
            lines.append(f"{indent}Scan {node.table} as {node.alias}{extra}")
        elif isinstance(node, SubqueryScanNode):
            lines.append(f"{indent}SubqueryScan as {node.alias}")
        elif isinstance(node, FilterNode):
            lines.append(f"{indent}Filter {node.predicate}")
        elif isinstance(node, JoinNode):
            keys = ", ".join(f"{l}={r}" for l, r in node.equi)
            lines.append(f"{indent}Join[{node.kind}] {keys}")
        elif isinstance(node, AggregateNode):
            groups = ", ".join(name for _, name in node.group)
            aggs = ", ".join(str(call) for call, _ in node.aggregates)
            lines.append(f"{indent}Aggregate group=[{groups}] aggs=[{aggs}]")
        elif isinstance(node, ProjectNode):
            names = ", ".join(name for _, name in node.items)
            lines.append(f"{indent}Project [{names}]")
        elif isinstance(node, SortNode):
            keys = ", ".join(f"{name} {'ASC' if asc else 'DESC'}" for name, asc in node.keys)
            lines.append(f"{indent}Sort [{keys}]")
        elif isinstance(node, DistinctNode):
            lines.append(f"{indent}Distinct")
        elif isinstance(node, LimitNode):
            lines.append(f"{indent}Limit {node.limit} offset {node.offset}")
        else:
            lines.append(f"{indent}{type(node).__name__}")
        for child in node.children():
            visit(child, depth + 1)

    visit(plan.root, 0)
    return "\n".join(lines)
