"""The vectorised (column-at-a-time) execution engine.

**Paper mapping:** Section II.A / Figure 2 — the "vectorized engine for
OLAP and mixed workloads" at the heart of the HANA core. **Role in the
query path:** last stage of parse → plan → execute; it receives the
:class:`~repro.sql.planner.QueryPlan` produced by
:mod:`repro.sql.planner` and materialises the result batch the
:class:`~repro.core.database.Database` facade turns into a
:class:`~repro.core.result.QueryResult`.

Operators consume and produce whole :class:`Batch` objects; expression
evaluation is NumPy-vectorised. At the leaves, scans

* prune partitions with range-boundary analysis and the database's
  registered *semantic pruning hooks* (the aging mechanism of Section III),
* rewrite ``CONTAINS(column, 'terms')`` conjuncts into inverted-index
  probes when a text index exists (Section II.C),
* apply MVCC visibility and any pushed-down predicate per partition.

**Observability:** every plan-node dispatch passes through
:func:`_execute_node`, which hands the node to ``context.profiler`` when
one is installed (``session.profile(sql)`` — see
:mod:`repro.obs.profiler`); row counters additionally feed
:mod:`repro.obs` when collectors are enabled. Both hooks are per-node
(never per-row) and no-ops by default.

**Adaptivity:** the same per-node boundary feeds
:func:`repro.sql.feedback.observe_actual` — actual row counts of signed
scans and joins go to the database's cardinality feedback store, and a
>10× estimate blow-out raises
:class:`~repro.sql.feedback.ReplanSignal` for mid-query
re-optimization. Completed scans are memoised on
``context.scan_cache`` — keyed by signature *plus* bound literal
values and column subset, so same-shape scans with different
constants never share a batch — and a re-planned attempt resumes
from them instead of re-reading (and re-charging) the data. See
``docs/OPTIMIZER.md``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import obs
from repro.columnstore.partition import CompositePartitioning, RangePartitioning
from repro.columnstore.table import ColumnTable
from repro.errors import PlanError
from repro.sql import ast
from repro.sql import feedback as fb
from repro.sql.context import ExecutionContext
from repro.sql.expressions import Batch, evaluate, is_null_mask
from repro.sql.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SortNode,
    SubqueryScanNode,
    UnionNode,
)


def execute(plan: QueryPlan, context: ExecutionContext) -> Batch:
    """Run a planned query; the result batch's keys are the output names."""
    batch = _execute_node(plan.root, context)
    # drop hidden sort columns
    visible = {name: batch.columns[name] for name in plan.output_names}
    return Batch(visible, len(batch))


def _execute_node(node: PlanNode, context: ExecutionContext) -> Batch:
    """Dispatch one plan node, recording it when a profiler is installed.

    This boundary is also the adaptive loop's measurement point: signed
    nodes report their actual row count to the feedback store and may
    raise :class:`~repro.sql.feedback.ReplanSignal` on a >10× estimate
    blow-out (see :func:`repro.sql.feedback.observe_actual`).
    """
    profiler = context.profiler
    if profiler is None:
        batch = _dispatch_node(node, context)
        _observe(node, batch, context)
        return batch
    with profiler.operator(node) as operator:
        batch = _dispatch_node(node, context)
        operator.rows = len(batch)
        _observe(node, batch, context)
        return batch


def _observe(node: PlanNode, batch: Batch, context: ExecutionContext) -> None:
    """Feed the node's actual row count to the adaptive loop — unless the
    scan flagged the batch as exempt: a memo-served scan would
    double-record the count it already reported when first materialised
    (and could re-raise the very blow-out that triggered the re-plan),
    and a governor-truncated scan would record a degraded count as a true
    cardinality, biasing future estimates low."""
    if context.feedback_exempt:
        context.feedback_exempt = False
        return
    fb.observe_actual(node, len(batch), context)


def _dispatch_node(node: PlanNode, context: ExecutionContext) -> Batch:
    if isinstance(node, ScanNode):
        return _execute_scan(node, context)
    if isinstance(node, SubqueryScanNode):
        inner = _execute_node(node.plan, context)
        renamed = {
            f"{node.alias}.{name}": inner.columns[name] for name in node.columns
        }
        return Batch(renamed, len(inner))
    if isinstance(node, FilterNode):
        child = _execute_node(node.child, context)
        mask = np.asarray(evaluate(node.predicate, child, context), dtype=bool)
        return child.filter(mask)
    if isinstance(node, JoinNode):
        return _execute_join(node, context)
    if isinstance(node, AggregateNode):
        return _execute_aggregate(node, context)
    if isinstance(node, ProjectNode):
        child = _execute_node(node.child, context)
        columns: dict[str, np.ndarray] = {}
        for expr, name in list(node.items) + list(node.hidden):
            columns[name] = np.asarray(evaluate(expr, child, context))
        return Batch(columns, len(child))
    if isinstance(node, SortNode):
        child = _execute_node(node.child, context)
        order = _sort_order(child, node.keys)
        return child.take(order)
    if isinstance(node, DistinctNode):
        child = _execute_node(node.child, context)
        codes = _row_codes(child, child.names)
        _uniques, first_positions = np.unique(codes, return_index=True)
        return child.take(np.sort(first_positions))
    if isinstance(node, LimitNode):
        child = _execute_node(node.child, context)
        start = node.offset or 0
        stop = start + node.limit if node.limit is not None else len(child)
        return child.take(np.arange(start, min(stop, len(child))))
    if isinstance(node, UnionNode):
        target_names = node.input_names[0]
        parts = []
        for input_node, names in zip(node.inputs, node.input_names):
            batch = _execute_node(input_node, context)
            parts.append(
                Batch(
                    {
                        target: batch.columns[source]
                        for target, source in zip(target_names, names)
                    },
                    len(batch),
                )
            )
        merged = Batch.concat(parts)
        if node.distinct:
            codes = _row_codes(merged, merged.names)
            _uniques, first_positions = np.unique(codes, return_index=True)
            merged = merged.take(np.sort(first_positions))
        return merged
    raise PlanError(f"vectorised engine cannot execute {type(node).__name__}")


# --------------------------------------------------------------------------
# scan
# --------------------------------------------------------------------------


def _execute_scan(node: ScanNode, context: ExecutionContext) -> Batch:
    """Scan with per-query memoisation keyed by signature + bound values.

    The memo exists for mid-query re-optimization: when a
    :class:`~repro.sql.feedback.ReplanSignal` aborts an attempt, the
    re-planned attempt finds identical scans (same table, predicate,
    constants, and columns — possibly under a different alias) already
    materialised and resumes from them — no re-read, no double governor
    charge. The key must be *value*-inclusive: the literal-stripped
    signature alone would collide same-shape scans with different
    constants (a self-join's two sides) or different column needs, which
    is a wrong-results bug, not a cache miss. Truncated (governor-
    degraded) scans are never memoised.
    """
    if not node.table:  # FROM-less SELECT: one virtual row
        return Batch({}, 1)
    cache = context.scan_cache
    key = _scan_memo_key(node)
    if cache is None or key is None:
        return _execute_scan_uncached(node, context)
    cached = cache.get(key)
    if cached is not None:
        columns, length = cached
        context.bump("scans_reused")
        obs.count("sql.executor.scans_reused")
        context.feedback_exempt = True  # count was recorded when materialised
        return Batch(
            {f"{node.alias}.{name}": array for name, array in columns.items()}, length
        )
    batch = _execute_scan_uncached(node, context)
    if not context.feedback_exempt:  # a truncated batch is not the scan's output
        cache[key] = (
            {key_.split(".", 1)[1]: array for key_, array in batch.columns.items()},
            len(batch),
        )
    return batch


def _scan_memo_key(node: ScanNode) -> str | None:
    """Value-inclusive memo key: signature + bound literals + columns."""
    if node.signature is None:
        return None
    values = ";".join(
        repr(literal.value) for literal in _predicate_literals(node.predicate)
    )
    return f"{node.signature}|vals={values}|cols={','.join(sorted(node.columns))}"


def _predicate_literals(expr: ast.Expr | None) -> list[ast.Literal]:
    """Literal leaves of a predicate, in deterministic traversal order."""
    if expr is None:
        return []
    out: list[ast.Literal] = []

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.Literal):
            out.append(node)
            return
        for child in node.children():
            walk(child)

    walk(expr)
    return out


def _execute_scan_uncached(node: ScanNode, context: ExecutionContext) -> Batch:
    database = context.database
    if database is None:
        raise PlanError("scan requires a database in the execution context")
    table = database.catalog.table(node.table)
    if not isinstance(table, ColumnTable):
        return _scan_rowstore(node, table, context)

    conjuncts = ast.split_conjuncts(node.predicate)
    ordinals = _prune_partitions(table, conjuncts, context)
    index_positions = _contains_probe(node, table, conjuncts, database)

    governor = context.governor
    parts: list[Batch] = []
    for ordinal in ordinals:
        if governor is not None and governor.should_stop:
            context.feedback_exempt = True  # remaining partitions dropped
            break
        partition = table.partitions[ordinal]
        positions = partition.visible_positions(context.snapshot_cid, context.own_tid)
        if index_positions is not None:
            allowed = index_positions.get(partition.name, set())
            if not allowed:
                continue
            keep = np.fromiter(
                (int(p) in allowed for p in positions), dtype=bool, count=len(positions)
            )
            positions = positions[keep]
        if governor is not None:
            # batch-granular yield point: truncate instead of overshooting
            # the soft row budget, then charge what survives
            remaining = governor.remaining_rows()
            if remaining is not None and len(positions) > remaining:
                positions = positions[:remaining]
                context.feedback_exempt = True  # degraded, not a true count
            governor.charge(
                rows=len(positions),
                bytes_=len(positions) * 8 * max(len(node.columns), 1),
            )
        if len(positions) == 0:
            continue
        columns = {
            f"{node.alias}.{name.lower()}": partition.column_array(name)[positions]
            for name in node.columns
        }
        batch = Batch(columns, len(positions))
        context.bump("rows_scanned", len(positions))
        obs.count("sql.executor.rows_scanned", len(positions))
        if node.predicate is not None:
            mask = np.asarray(evaluate(node.predicate, batch, context), dtype=bool)
            batch = batch.filter(mask)
        parts.append(batch)
    if not parts:
        empty = {
            f"{node.alias}.{name.lower()}": np.empty(0, dtype=object)
            for name in node.columns
        }
        return Batch(empty, 0)
    return Batch.concat(parts)


def _simple_filter_triples(
    conjuncts: list[ast.Expr],
) -> list[tuple[str, str, Any]]:
    """Conjuncts of the form column <op> literal, as pushdown triples."""
    triples = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        if conjunct.op not in ("=", "<>", "<", "<=", ">", ">="):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            triples.append((left.name, conjunct.op, right.value))
        elif isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                conjunct.op, conjunct.op
            )
            triples.append((right.name, flipped, left.value))
    return triples


def _scan_rowstore(node: ScanNode, table: Any, context: ExecutionContext) -> Batch:
    """Scan a row table (or a federated virtual table) into one batch."""
    if getattr(table, "is_virtual", False) and node.predicate is not None:
        triples = _simple_filter_triples(ast.split_conjuncts(node.predicate))
        rows = table.scan_with_filters(triples)
    else:
        rows = table.scan(context.snapshot_cid, context.own_tid)
    governor = context.governor
    if governor is not None:
        remaining = governor.remaining_rows()
        if remaining is not None and len(rows) > remaining:
            rows = rows[:remaining]
            context.feedback_exempt = True  # degraded, not a true count
        governor.charge(
            rows=len(rows),
            bytes_=len(rows) * 8 * max(len(table.schema.column_names), 1),
        )
    names = [name.lower() for name in table.schema.column_names]
    columns: dict[str, np.ndarray] = {}
    for index, name in enumerate(names):
        values = [row[index] for row in rows]
        from repro.sql.functions import narrow_to_array

        columns[f"{node.alias}.{name}"] = narrow_to_array(values)
    batch = Batch(columns, len(rows))
    context.bump("rows_scanned", len(rows))
    obs.count("sql.executor.rows_scanned", len(rows))
    if node.predicate is not None:
        mask = np.asarray(evaluate(node.predicate, batch, context), dtype=bool)
        batch = batch.filter(mask)
    return batch


def _prune_partitions(
    table: ColumnTable, conjuncts: list[ast.Expr], context: ExecutionContext
) -> list[int]:
    """Range pruning plus the database's semantic (aging) pruning hooks."""
    ordinals = list(range(len(table.partitions)))
    spec = table.partitioning
    if isinstance(spec, (RangePartitioning, CompositePartitioning)):
        low, high = _column_bounds(conjuncts, spec.column)
        if low is not None or high is not None:
            survivors = set(spec.prune(low, high))
            pruned = [o for o in ordinals if o in survivors]
            context.bump("partitions_pruned", len(ordinals) - len(pruned))
            obs.count("sql.executor.partitions_pruned", len(ordinals) - len(pruned), kind="range")
            ordinals = pruned
    database = context.database
    for hook in getattr(database, "pruning_hooks", []):
        kept = hook(table, conjuncts, context)
        if kept is not None:
            pruned = [o for o in ordinals if o in kept]
            context.bump("partitions_pruned", len(ordinals) - len(pruned))
            obs.count("sql.executor.partitions_pruned", len(ordinals) - len(pruned), kind="semantic")
            ordinals = pruned
    return ordinals


def _column_bounds(
    conjuncts: list[ast.Expr], column: str
) -> tuple[Any, Any]:
    """Derive [low, high] bounds on ``column`` from simple conjuncts."""
    low: Any = None
    high: Any = None

    def tighten(new_low: Any = None, new_high: Any = None) -> None:
        nonlocal low, high
        if new_low is not None and (low is None or new_low > low):
            low = new_low
        if new_high is not None and (high is None or new_high < high):
            high = new_high

    for conjunct in conjuncts:
        if isinstance(conjunct, ast.Between):
            if _is_column(conjunct.operand, column) and isinstance(conjunct.low, ast.Literal) and isinstance(conjunct.high, ast.Literal) and not conjunct.negated:
                tighten(conjunct.low.value, conjunct.high.value)
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        left, op, right = conjunct.left, conjunct.op, conjunct.right
        if isinstance(right, ast.Literal) and _is_column(left, column):
            value = right.value
        elif isinstance(left, ast.Literal) and _is_column(right, column):
            value = left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        else:
            continue
        if op == "=":
            tighten(value, value)
        elif op in ("<", "<="):
            tighten(new_high=value)
        elif op in (">", ">="):
            tighten(new_low=value)
    return low, high


def _is_column(expr: ast.Expr, column: str) -> bool:
    return isinstance(expr, ast.ColumnRef) and expr.name == column.lower()


def _contains_probe(
    node: ScanNode,
    table: ColumnTable,
    conjuncts: list[ast.Expr],
    database: Any,
) -> dict[str, set[int]] | None:
    """Resolve CONTAINS conjuncts against a registered inverted index.

    Returns allowed positions per partition name, or ``None`` when no
    indexed CONTAINS conjunct exists (the expression evaluator's fallback
    handles the predicate instead).
    """
    indexes = getattr(database, "text_indexes", {})
    result: dict[str, set[int]] | None = None
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, ast.FunctionCall)
            and conjunct.name == "CONTAINS"
            and len(conjunct.args) == 2
            and isinstance(conjunct.args[0], ast.ColumnRef)
            and isinstance(conjunct.args[1], ast.Literal)
        ):
            continue
        column = conjunct.args[0].name
        index = indexes.get((table.name, column))
        if index is None:
            continue
        hits = index.lookup_positions(str(conjunct.args[1].value))
        if result is None:
            result = hits
        else:
            result = {
                name: result.get(name, set()) & hits.get(name, set())
                for name in set(result) | set(hits)
            }
    return result


# --------------------------------------------------------------------------
# join
# --------------------------------------------------------------------------


def _execute_join(node: JoinNode, context: ExecutionContext) -> Batch:
    left = _execute_node(node.left, context)
    right = _execute_node(node.right, context)

    if node.kind == "cross" and not node.equi:
        joined = _cross_join(left, right)
    else:
        joined = _hash_join(left, right, node, context)
    if node.residual is not None:
        mask = np.asarray(evaluate(node.residual, joined, context), dtype=bool)
        joined = joined.filter(mask)
    return joined


def _cross_join(left: Batch, right: Batch) -> Batch:
    n_left, n_right = len(left), len(right)
    left_index = np.repeat(np.arange(n_left), n_right)
    right_index = np.tile(np.arange(n_right), n_left)
    columns: dict[str, np.ndarray] = {}
    for key, array in left.columns.items():
        columns[key] = array[left_index]
    for key, array in right.columns.items():
        columns[key] = array[right_index]
    return Batch(columns, n_left * n_right)


def _key_tuples(batch: Batch, exprs: list[ast.Expr], context: ExecutionContext) -> list[tuple]:
    arrays = [np.asarray(evaluate(expr, batch, context)) for expr in exprs]
    normalised = []
    for array in arrays:
        if array.dtype.kind == "f":
            normalised.append([None if v != v else float(v) for v in array])
        elif array.dtype == object:
            normalised.append([None if v is None else v for v in array])
        else:
            normalised.append([v.item() if isinstance(v, np.generic) else v for v in array])
    return list(zip(*normalised)) if normalised else [()] * len(batch)


def _hash_join(
    left: Batch, right: Batch, node: JoinNode, context: ExecutionContext
) -> Batch:
    left_keys = _key_tuples(left, [pair[0] for pair in node.equi], context)
    right_keys = _key_tuples(right, [pair[1] for pair in node.equi], context)

    build: dict[tuple, list[int]] = {}
    for position, key in enumerate(right_keys):
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(position)

    left_positions: list[int] = []
    right_positions: list[int] = []
    unmatched_left: list[int] = []
    for position, key in enumerate(left_keys):
        matches = build.get(key) if not any(part is None for part in key) else None
        if matches:
            left_positions.extend([position] * len(matches))
            right_positions.extend(matches)
        elif node.kind == "left":
            unmatched_left.append(position)

    left_index = np.asarray(left_positions, dtype=np.int64)
    right_index = np.asarray(right_positions, dtype=np.int64)
    columns: dict[str, np.ndarray] = {}
    for key, array in left.columns.items():
        columns[key] = array[left_index]
    for key, array in right.columns.items():
        columns[key] = array[right_index]
    matched = Batch(columns, len(left_index))
    context.bump("join_rows", len(left_index))
    obs.count("sql.executor.join_rows", len(left_index))

    if node.kind != "left" or not unmatched_left:
        return matched

    pad_index = np.asarray(unmatched_left, dtype=np.int64)
    pad_columns: dict[str, np.ndarray] = {}
    for key, array in left.columns.items():
        pad_columns[key] = array[pad_index]
    for key, array in right.columns.items():
        if array.dtype.kind == "f":
            pad_columns[key] = np.full(len(pad_index), np.nan)
        elif array.dtype == object:
            pad = np.empty(len(pad_index), dtype=object)
            pad[:] = None
            pad_columns[key] = pad
        else:
            pad_columns[key] = np.full(len(pad_index), np.nan)
    return Batch.concat([matched, Batch(pad_columns, len(pad_index))])


# --------------------------------------------------------------------------
# aggregation
# --------------------------------------------------------------------------


def _factorize(array: np.ndarray) -> tuple[np.ndarray, list[Any]]:
    """Map values to dense codes; NaN/None become their own group."""
    codes = np.empty(len(array), dtype=np.int64)
    uniques: list[Any] = []
    seen: dict[Any, int] = {}
    if array.dtype.kind == "f":
        values: list[Any] = [None if v != v else float(v) for v in array]
    elif array.dtype == object:
        values = list(array)
    else:
        values = [v.item() if isinstance(v, np.generic) else v for v in array]
    for index, value in enumerate(values):
        code = seen.get(value)
        if code is None:
            code = len(uniques)
            seen[value] = code
            uniques.append(value)
        codes[index] = code
    return codes, uniques


def _row_codes(batch: Batch, names: list[str]) -> np.ndarray:
    """Dense row codes over several columns (for DISTINCT and grouping)."""
    if not names:
        return np.zeros(len(batch), dtype=np.int64)
    combined = np.zeros(len(batch), dtype=np.int64)
    for name in names:
        codes, uniques = _factorize(batch.columns[name])
        combined = combined * max(len(uniques), 1) + codes
    # re-densify
    _unique_values, dense = np.unique(combined, return_inverse=True)
    return dense


def _execute_aggregate(node: AggregateNode, context: ExecutionContext) -> Batch:
    child = _execute_node(node.child, context)
    length = len(child)

    group_arrays = [
        np.asarray(evaluate(expr, child, context)) for expr, _name in node.group
    ]
    if node.group:
        per_column = [_factorize(array) for array in group_arrays]
        combined = np.zeros(length, dtype=np.int64)
        for codes, uniques in per_column:
            combined = combined * max(len(uniques), 1) + codes
        unique_codes, first_positions, group_ids = np.unique(
            combined, return_index=True, return_inverse=True
        )
        group_count = len(unique_codes)
    else:
        group_ids = np.zeros(length, dtype=np.int64)
        first_positions = np.array([0], dtype=np.int64) if length else np.empty(0, dtype=np.int64)
        group_count = 1  # global aggregate always yields one row

    columns: dict[str, np.ndarray] = {}
    for array, (_expr, name) in zip(group_arrays, node.group):
        if length:
            columns[name] = array[first_positions]
        else:
            columns[name] = array[:0]
    if node.group and length == 0:
        group_count = 0

    for call, name in node.aggregates:
        columns[name] = _compute_aggregate(call, child, group_ids, group_count, context)

    out_length = group_count if (not node.group or length) else 0
    return Batch(columns, out_length)


def _compute_aggregate(
    call: ast.FunctionCall,
    child: Batch,
    group_ids: np.ndarray,
    group_count: int,
    context: ExecutionContext,
) -> np.ndarray:
    name = call.name.upper()
    if name == "COUNT" and (not call.args or isinstance(call.args[0], ast.Star)):
        return np.bincount(group_ids, minlength=group_count).astype(np.int64)

    values = np.asarray(evaluate(call.args[0], child, context))
    null_mask = is_null_mask(values)
    valid = ~null_mask

    if name == "COUNT":
        if call.distinct:
            out = np.zeros(group_count, dtype=np.int64)
            seen: set[tuple[int, Any]] = set()
            for index in np.flatnonzero(valid):
                key = (int(group_ids[index]), values[index] if values.dtype == object else values[index].item())
                if key not in seen:
                    seen.add(key)
                    out[group_ids[index]] += 1
            return out
        return np.bincount(group_ids[valid], minlength=group_count).astype(np.int64)

    numeric = values.astype(np.float64) if values.dtype != object else np.array(
        [np.nan if v is None else float(v) for v in values], dtype=np.float64
    ) if name in ("SUM", "AVG", "STDDEV", "VAR", "MEDIAN") else values

    if name in ("SUM", "AVG", "STDDEV", "VAR", "MEDIAN"):
        clean = np.where(valid, numeric, 0.0)
        sums = np.bincount(group_ids, weights=clean, minlength=group_count)
        counts = np.bincount(group_ids[valid], minlength=group_count).astype(np.float64)
        if name == "SUM":
            result = np.asarray(sums, dtype=np.float64)
            result[counts == 0] = np.nan
            return result
        if name == "AVG":
            with np.errstate(invalid="ignore", divide="ignore"):
                return sums / counts
        if name in ("STDDEV", "VAR"):
            squares = np.bincount(group_ids, weights=clean * clean, minlength=group_count)
            with np.errstate(invalid="ignore", divide="ignore"):
                variance = squares / counts - (sums / counts) ** 2
                variance = np.maximum(variance, 0.0)
            return np.sqrt(variance) if name == "STDDEV" else variance
        # MEDIAN: gather per group
        out = np.full(group_count, np.nan)
        for group in range(group_count):
            members = numeric[(group_ids == group) & valid]
            if len(members):
                out[group] = float(np.median(members))
        return out

    if name in ("MIN", "MAX"):
        if values.dtype != object:
            fill = np.inf if name == "MIN" else -np.inf
            clean = np.where(valid, values.astype(np.float64), fill)
            out = np.full(group_count, fill)
            if name == "MIN":
                np.minimum.at(out, group_ids, clean)
            else:
                np.maximum.at(out, group_ids, clean)
            out[np.isinf(out)] = np.nan
            if values.dtype.kind in "iu" and not np.isnan(out).any():
                return out.astype(np.int64)
            return out
        out_obj = np.empty(group_count, dtype=object)
        out_obj[:] = None
        for index in np.flatnonzero(valid):
            group = group_ids[index]
            current = out_obj[group]
            value = values[index]
            if current is None or (value < current if name == "MIN" else value > current):
                out_obj[group] = value
        return out_obj

    raise PlanError(f"unknown aggregate function {name}")


# --------------------------------------------------------------------------
# sort
# --------------------------------------------------------------------------


def _sort_order(batch: Batch, keys: list[tuple[str, bool]]) -> np.ndarray:
    """Stable multi-key argsort honouring per-key direction; NULLs last."""
    order = np.arange(len(batch))
    for name, ascending in reversed(keys):
        array = batch.columns[name][order]
        if array.dtype == object:
            def sort_key(i: int, a: np.ndarray = array) -> tuple:
                value = a[i]
                return (value is None, value)

            local = sorted(range(len(array)), key=sort_key)
            if not ascending:
                non_null = [i for i in local if array[i] is not None]
                nulls = [i for i in local if array[i] is None]
                local = non_null[::-1] + nulls
            order = order[np.asarray(local, dtype=np.int64)]
        else:
            values = array.astype(np.float64, copy=False) if array.dtype.kind == "f" else array
            if array.dtype.kind == "f":
                nan_mask = np.isnan(values)
                filler = np.inf if ascending else -np.inf
                values = np.where(nan_mask, filler, values)
            local = np.argsort(values if ascending else -values.astype(np.float64), kind="stable")
            order = order[local]
    return order
