"""Recursive-descent parser for the SQL dialect.

Supports the classical DML/DDL core plus the paper's extensions: flexible
tables (``CREATE FLEXIBLE TABLE``), explicit delta merge (``MERGE DELTA OF
t``), hash/range partition clauses, ``CONTAINS`` text predicates, and the
engine functions (geo/document/hierarchy/planning) which parse as ordinary
function calls and resolve in the function registry.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """One-shot parser over a token list; use :func:`parse`."""

    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._current
        return token.kind == "KEYWORD" and token.value in keywords

    def _accept_keyword(self, *keywords: str) -> str | None:
        if self._check_keyword(*keywords):
            return self._advance().value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, found {self._current.value or 'end of input'}",
                self._current.position,
            )

    def _check_punct(self, value: str) -> bool:
        token = self._current
        return token.kind == "PUNCT" and token.value == value

    def _accept_punct(self, value: str) -> bool:
        if self._check_punct(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise SqlSyntaxError(
                f"expected {value!r}, found {self._current.value or 'end of input'}",
                self._current.position,
            )

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind == "IDENT":
            return self._advance().value
        # allow non-reserved keywords as identifiers in name position
        if token.kind == "KEYWORD" and token.value in ("DATE", "TIMESTAMP", "KEY", "ROW", "COLUMN"):
            return self._advance().value.lower()
        raise SqlSyntaxError(
            f"expected identifier, found {token.value or 'end of input'}",
            token.position,
        )

    def _expect_number(self) -> float | int:
        token = self._current
        if token.kind != "NUMBER":
            raise SqlSyntaxError(f"expected number, found {token.value!r}", token.position)
        self._advance()
        return _to_number(token.value)

    # -- entry points -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._check_keyword("SELECT"):
            statement: ast.Statement = self._parse_select_or_union()
        elif self._check_keyword("INSERT"):
            statement = self._parse_insert()
        elif self._check_keyword("UPDATE"):
            statement = self._parse_update()
        elif self._check_keyword("DELETE"):
            statement = self._parse_delete()
        elif self._check_keyword("CREATE"):
            statement = self._parse_create()
        elif self._check_keyword("DROP"):
            statement = self._parse_drop()
        elif self._check_keyword("MERGE"):
            statement = self._parse_merge_delta()
        elif self._check_keyword("BEGIN"):
            self._advance()
            self._accept_keyword("WORK")
            statement = ast.TransactionStatement("begin")
        elif self._check_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("WORK")
            statement = ast.TransactionStatement("commit")
        elif self._check_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("WORK")
            statement = ast.TransactionStatement("rollback")
        else:
            raise SqlSyntaxError(
                f"unexpected start of statement: {self._current.value!r}",
                self._current.position,
            )
        self._accept_punct(";")
        if self._current.kind != "EOF":
            raise SqlSyntaxError(
                f"trailing input after statement: {self._current.value!r}",
                self._current.position,
            )
        return statement

    # -- SELECT --------------------------------------------------------------

    def _parse_select_or_union(self) -> "ast.SelectStatement | ast.UnionStatement":
        first = self.parse_select()
        if not self._check_keyword("UNION"):
            return first
        selects = [first]
        alls: list[bool] = []
        while self._accept_keyword("UNION"):
            alls.append(bool(self._accept_keyword("ALL")))
            selects.append(self.parse_select())
        # ORDER BY / LIMIT parsed into the last branch bind to the compound
        last = selects[-1]
        union = ast.UnionStatement(
            selects=selects,
            alls=alls,
            order_by=last.order_by,
            limit=last.limit,
            offset=last.offset,
        )
        last.order_by = []
        last.limit = None
        last.offset = None
        return union

    def parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_table: ast.TableRef | None = None
        joins: list[ast.JoinClause] = []
        if self._accept_keyword("FROM"):
            from_table = self._parse_table_ref()
            while True:
                if self._accept_punct(","):
                    joins.append(ast.JoinClause("cross", self._parse_table_ref(), None))
                    continue
                kind = self._parse_join_kind()
                if kind is None:
                    break
                table = self._parse_table_ref()
                condition: ast.Expr | None = None
                if kind != "cross":
                    self._expect_keyword("ON")
                    condition = self.parse_expression()
                joins.append(ast.JoinClause(kind, table, condition))

        where = self.parse_expression() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept_punct(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self._accept_keyword("HAVING") else None

        order_by: list[tuple[ast.Expr, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect_number())
        if self._accept_keyword("OFFSET"):
            offset = int(self._expect_number())

        return ast.SelectStatement(
            items=items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self._check_punct("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind == "IDENT":
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> tuple[ast.Expr, bool]:
        expr = self.parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return expr, ascending

    def _parse_join_kind(self) -> str | None:
        if self._accept_keyword("JOIN"):
            return "inner"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "inner"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "left"
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "cross"
        return None

    def _parse_table_ref(self) -> ast.TableRef:
        if self._accept_punct("("):
            subquery = self.parse_select()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_ident()
            return ast.TableRef(name=None, alias=alias.lower(), subquery=subquery)
        name = self._expect_ident()
        alias = name
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind == "IDENT":
            alias = self._advance().value
        return ast.TableRef(name=name.lower(), alias=alias.lower())

    # -- DML -------------------------------------------------------------------

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident().lower()
        columns: list[str] | None = None
        if self._accept_punct("("):
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        if self._check_keyword("SELECT"):
            return ast.InsertStatement(table, columns, rows=[], select=self.parse_select())
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.InsertStatement(table, columns, rows)

    def _parse_value_row(self) -> list[ast.Expr]:
        self._expect_punct("(")
        row = [self.parse_expression()]
        while self._accept_punct(","):
            row.append(self.parse_expression())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_ident().lower()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expression() if self._accept_keyword("WHERE") else None
        return ast.UpdateStatement(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_ident()
        self._expect_punct("=")
        return column, self.parse_expression()

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident().lower()
        where = self.parse_expression() if self._accept_keyword("WHERE") else None
        return ast.DeleteStatement(table, where)

    # -- DDL --------------------------------------------------------------------

    def _parse_create(self) -> ast.CreateTableStatement:
        self._expect_keyword("CREATE")
        store = "column"
        flexible = False
        if self._accept_keyword("ROW"):
            store = "row"
        elif self._accept_keyword("COLUMN"):
            store = "column"
        elif self._accept_keyword("FLEXIBLE"):
            flexible = True
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table = self._expect_ident().lower()
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: list[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                primary_key.append(self._expect_ident())
                while self._accept_punct(","):
                    primary_key.append(self._expect_ident())
                self._expect_punct(")")
            else:
                column = self._parse_column_def()
                columns.append(column)
                if column.primary_key:
                    primary_key.append(column.name)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

        partition_kind = None
        partition_columns: list[str] = []
        partition_count: int | None = None
        partition_boundaries: list[Any] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            if self._accept_keyword("HASH"):
                partition_kind = "hash"
                self._expect_punct("(")
                partition_columns.append(self._expect_ident())
                while self._accept_punct(","):
                    partition_columns.append(self._expect_ident())
                self._expect_punct(")")
                self._expect_keyword("PARTITIONS")
                partition_count = int(self._expect_number())
            elif self._accept_keyword("RANGE"):
                partition_kind = "range"
                self._expect_punct("(")
                partition_columns.append(self._expect_ident())
                self._expect_punct(")")
                self._expect_keyword("BOUNDARIES")
                self._expect_punct("(")
                partition_boundaries.append(self._parse_literal_value())
                while self._accept_punct(","):
                    partition_boundaries.append(self._parse_literal_value())
                self._expect_punct(")")
            else:
                raise SqlSyntaxError("expected HASH or RANGE", self._current.position)

        return ast.CreateTableStatement(
            table=table,
            columns=columns,
            primary_key=primary_key,
            store=store,
            flexible=flexible,
            if_not_exists=if_not_exists,
            partition_kind=partition_kind,
            partition_columns=partition_columns,
            partition_count=partition_count,
            partition_boundaries=partition_boundaries,
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        token = self._current
        if token.kind == "IDENT" or (token.kind == "KEYWORD" and token.value in ("DATE", "TIMESTAMP")):
            type_name = self._advance().value
        else:
            raise SqlSyntaxError(f"expected type name, found {token.value!r}", token.position)
        length = precision = scale = None
        if self._accept_punct("("):
            first = int(self._expect_number())
            if self._accept_punct(","):
                precision = first
                scale = int(self._expect_number())
            else:
                length = first
                precision = first
            self._expect_punct(")")
        nullable = True
        primary_key = False
        default: Any = None
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif self._accept_keyword("DEFAULT"):
                default = self._parse_literal_value()
            else:
                break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            length=length,
            precision=precision,
            scale=scale,
            nullable=nullable,
            primary_key=primary_key,
            default=default,
        )

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTableStatement(self._expect_ident().lower(), if_exists)

    def _parse_merge_delta(self) -> ast.MergeDeltaStatement:
        self._expect_keyword("MERGE")
        self._expect_keyword("DELTA")
        self._expect_keyword("OF")
        return ast.MergeDeltaStatement(self._expect_ident().lower())

    # -- expressions (precedence climbing) -----------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._current
        if token.kind == "PUNCT" and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = bool(self._accept_keyword("NOT"))
        if self._accept_keyword("IS"):
            if negated:
                raise SqlSyntaxError("unexpected NOT before IS", token.position)
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self.parse_expression()]
            while self._accept_punct(","):
                items.append(self.parse_expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated=negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self._accept_keyword("LIKE"):
            expr: ast.Expr = ast.BinaryOp("LIKE", left, self._parse_additive())
            return ast.UnaryOp("NOT", expr) if negated else expr
        if negated:
            raise SqlSyntaxError(
                "expected IN, BETWEEN, or LIKE after NOT", self._current.position
            )
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self._check_punct("+") or self._check_punct("-") or self._check_punct("||"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self._check_punct("*") or self._check_punct("/") or self._check_punct("%"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept_punct("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        self._accept_punct("+")
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            return ast.Literal(_to_number(token.value))
        if token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if self._accept_keyword("NULL"):
            return ast.Literal(None)
        if self._accept_keyword("TRUE"):
            return ast.Literal(True)
        if self._accept_keyword("FALSE"):
            return ast.Literal(False)
        if self._check_keyword("DATE") and self._tokens[self._index + 1].kind == "STRING":
            self._advance()
            literal = self._advance().value
            return ast.Literal(_dt.date.fromisoformat(literal))
        if self._check_keyword("TIMESTAMP") and self._tokens[self._index + 1].kind == "STRING":
            self._advance()
            literal = self._advance().value
            return ast.Literal(_dt.datetime.fromisoformat(literal))
        if self._accept_keyword("CASE"):
            return self._parse_case()
        if self._accept_keyword("CONTAINS"):
            # CONTAINS(column, 'search terms') — text-search predicate
            self._expect_punct("(")
            args = [self.parse_expression()]
            while self._accept_punct(","):
                args.append(self.parse_expression())
            self._expect_punct(")")
            return ast.FunctionCall("CONTAINS", tuple(args))
        if self._accept_punct("("):
            if self._check_keyword("SELECT"):
                raise SqlSyntaxError(
                    "scalar subqueries are not supported; use a join", token.position
                )
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind in ("IDENT", "KEYWORD"):
            name = self._expect_ident()
            if self._accept_punct("("):
                return self._parse_call(name)
            if self._accept_punct("."):
                if self._check_punct("*"):
                    self._advance()
                    return ast.Star(table=name.lower())
                column = self._expect_ident()
                return ast.ColumnRef(column.lower(), table=name.lower())
            return ast.ColumnRef(name.lower())
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def _parse_call(self, name: str) -> ast.Expr:
        upper = name.upper()
        distinct = False
        args: list[ast.Expr] = []
        if self._check_punct(")"):
            self._advance()
            return ast.FunctionCall(upper, ())
        if self._check_punct("*"):
            self._advance()
            self._expect_punct(")")
            return ast.FunctionCall(upper, (ast.Star(),))
        if self._accept_keyword("DISTINCT"):
            distinct = True
        args.append(self.parse_expression())
        while self._accept_punct(","):
            args.append(self.parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(upper, tuple(args), distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        otherwise: ast.Expr | None = None
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            branches.append((condition, self.parse_expression()))
        if self._accept_keyword("ELSE"):
            otherwise = self.parse_expression()
        self._expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        return ast.CaseWhen(tuple(branches), otherwise)

    def _parse_literal_value(self) -> Any:
        expr = self._parse_unary()
        if not isinstance(expr, ast.Literal):
            raise SqlSyntaxError("expected a literal value", self._current.position)
        return expr.value


def _to_number(text: str) -> int | float:
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(tokenize(sql), sql).parse_statement()


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by aging rules and tests)."""
    parser = Parser(tokenize(text), text)
    expr = parser.parse_expression()
    if parser._current.kind != "EOF":
        raise SqlSyntaxError(
            f"trailing input after expression: {parser._current.value!r}",
            parser._current.position,
        )
    return expr
