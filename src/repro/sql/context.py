"""Execution context threaded through planning and execution.

Carries the snapshot, the owning transaction, the function registry, and a
handle to the database — which is how context-dependent functions (currency
conversion against the rates table, hierarchy functions against registered
hierarchy views, text search against the index) reach their state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sql.functions import FunctionRegistry


@dataclass
class ExecutionContext:
    """Everything an operator needs besides its input batches."""

    database: Any = None
    snapshot_cid: int = 2**62 - 1
    own_tid: int = 0
    functions: "FunctionRegistry | None" = None
    #: free-form session parameters (e.g. target currency)
    parameters: dict[str, Any] = field(default_factory=dict)
    #: counters filled during execution (rows scanned, partitions pruned, ...)
    metrics: dict[str, float] = field(default_factory=dict)
    #: per-operator profiler installed by ``database.profile()``; the
    #: executor records node timings/row counts on it when not ``None``
    profiler: Any = None
    #: per-query ResourceGovernor installed by ``database.execute(budget=...)``;
    #: both engines charge row production against it at their yield points
    governor: Any = None
    #: the database's CardinalityFeedback store; when present the engines
    #: record every signed operator's actual row count on it
    feedback: Any = None
    #: per-query scan memoisation keyed by scan signature *plus* bound
    #: literal values and column subset — lets a mid-query
    #: re-optimization resume without re-reading (or re-charging) scans
    #: the aborted attempt already completed
    scan_cache: dict[str, Any] | None = None
    #: transient flag a scan operator sets when its batch must not be
    #: recorded as a true observed cardinality — served from the scan
    #: memo (already recorded once) or truncated by the governor (a
    #: degraded count would bias future estimates low). Consumed — read
    #: and reset — by the executor's measurement point right after the
    #: scan dispatch returns.
    feedback_exempt: bool = False
    #: how many mid-query re-optimizations this execution may still
    #: trigger; 0 disables the blow-out check entirely
    replans_remaining: int = 0

    def bump(self, metric: str, amount: float = 1.0) -> None:
        """Increment an execution metric."""
        self.metrics[metric] = self.metrics.get(metric, 0.0) + amount
