"""Abstract syntax tree for the SQL dialect.

Expression nodes are shared by the parser, the planner, all three execution
engines (vectorised, tuple-at-a-time, compiled), and the federation layer's
pushdown serialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


class Expr:
    """Base expression node."""

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (already coerced to its Python form)."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison, logical, LIKE, or ``||`` concatenation."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """NOT or unary minus."""

    op: str
    operand: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand, *self.items)

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {'NOT ' if self.negated else ''}IN ({inner}))"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        return f"({self.operand} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar or aggregate function call."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """Searched CASE expression."""

    branches: tuple[tuple[Expr, Expr], ...]
    otherwise: Expr | None = None

    def children(self) -> Sequence[Expr]:
        nodes: list[Expr] = []
        for condition, result in self.branches:
            nodes.append(condition)
            nodes.append(result)
        if self.otherwise is not None:
            nodes.append(self.otherwise)
        return nodes

    def __str__(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition} THEN {result}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise}")
        parts.append("END")
        return " ".join(parts)


AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VAR", "MEDIAN"}


def contains_aggregate(expr: Expr) -> bool:
    """True when the expression tree contains an aggregate call."""
    if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
        return True
    return any(contains_aggregate(child) for child in expr.children())


def collect_column_refs(expr: Expr) -> list[ColumnRef]:
    """All :class:`ColumnRef` nodes in the tree, in visit order."""
    refs: list[ColumnRef] = []

    def visit(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        for child in node.children():
            visit(child)

    visit(expr)
    return refs


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: Sequence[Expr]) -> Expr | None:
    """Rebuild one predicate from conjuncts (inverse of split)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry with its optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass
class TableRef:
    """FROM-clause source: a base table or a derived table (sub-select)."""

    name: str | None
    alias: str
    subquery: "SelectStatement | None" = None


@dataclass
class JoinClause:
    """One JOIN against the accumulated left side."""

    kind: str  # "inner" | "left" | "cross"
    table: TableRef
    condition: Expr | None


@dataclass
class SelectStatement:
    """A full SELECT query."""

    items: list[SelectItem]
    from_table: TableRef | None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)  # (expr, ascending)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class InsertStatement:
    table: str
    columns: list[str] | None
    rows: list[list[Expr]]
    select: SelectStatement | None = None


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Expr | None


@dataclass
class DeleteStatement:
    table: str
    where: Expr | None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    length: int | None = None
    precision: int | None = None
    scale: int | None = None
    nullable: bool = True
    primary_key: bool = False
    default: Any = None


@dataclass
class CreateTableStatement:
    table: str
    columns: list[ColumnDef]
    primary_key: list[str] = field(default_factory=list)
    store: str = "column"  # "column" | "row"
    flexible: bool = False
    if_not_exists: bool = False
    partition_kind: str | None = None  # "hash" | "range"
    partition_columns: list[str] = field(default_factory=list)
    partition_count: int | None = None
    partition_boundaries: list[Any] = field(default_factory=list)


@dataclass
class DropTableStatement:
    table: str
    if_exists: bool = False


@dataclass
class MergeDeltaStatement:
    """``MERGE DELTA OF t`` — explicit delta merge trigger."""

    table: str


@dataclass
class UnionStatement:
    """A chain of SELECTs combined with UNION [ALL].

    ``alls[i]`` is True when the connector between ``selects[i]`` and
    ``selects[i+1]`` was UNION ALL. ORDER BY / LIMIT bind to the whole
    compound and reference output names or ordinals.
    """

    selects: list[SelectStatement]
    alls: list[bool]
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None


@dataclass
class TransactionStatement:
    """BEGIN / COMMIT / ROLLBACK."""

    action: str  # "begin" | "commit" | "rollback"


Statement = (
    SelectStatement
    | UnionStatement
    | InsertStatement
    | UpdateStatement
    | DeleteStatement
    | CreateTableStatement
    | DropTableStatement
    | MergeDeltaStatement
    | TransactionStatement
)
